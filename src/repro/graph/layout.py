"""DRAM memory layout of a partitioned graph (paper Fig. 4).

The image contains, in order: the vertex arrays (V_in, optional
V_const, and a separate V_out when execution is synchronous), the
compressed edges organized by shard, and the 64-bit edge-pointer array.
Every section and every shard is 64-byte aligned so burst transfers
stay line-aligned; the per-shard terminating edge covers the tail of
the last DRAM word.

Edges are stored grouped by destination interval (all shards of one
job are adjacent); the pointer for shard E[s->d] lives at
``edge_ptrs_addr + (d * Qs + s) * 8`` so a PE can stream one job's
pointers with a single burst.
"""

import numpy as np

from repro.graph.encoding import (
    EdgeCodec,
    pack_edge_pointer,
    unpack_edge_pointer,
)

LINE = 64


def _align(addr, alignment=LINE):
    return (addr + alignment - 1) // alignment * alignment


class GraphLayout:
    """Address map + materialization of one partitioned graph."""

    def __init__(self, partitioning, node_bytes=4, use_const=False,
                 synchronous=True, base_addr=0):
        if node_bytes not in (4, 8):
            raise ValueError("node values are 32 or 64 bits")
        self.partitioning = partitioning
        self.node_bytes = node_bytes
        self.use_const = use_const
        self.synchronous = synchronous
        graph = partitioning.graph
        self.weighted = graph.weighted
        self.codec = EdgeCodec(partitioning.n_src, partitioning.n_dst,
                               weighted=self.weighted)

        n = graph.n_nodes
        cursor = _align(base_addr)
        self.v_in_addr = cursor
        cursor = _align(cursor + n * node_bytes)
        self.v_const_addr = None
        if use_const:
            self.v_const_addr = cursor
            cursor = _align(cursor + n * 4)
        self.v_out_addr = self.v_in_addr
        if synchronous:
            self.v_out_addr = cursor
            cursor = _align(cursor + n * node_bytes)

        self.edges_addr = cursor
        self._shard_addrs = {}
        self._shard_counts = {}
        for d in range(partitioning.q_dst):
            for s in range(partitioning.q_src):
                count = partitioning.shard_size(s, d)
                self._shard_addrs[(s, d)] = cursor
                self._shard_counts[(s, d)] = count
                cursor = _align(cursor + self.codec.shard_bytes(count))

        self.edge_ptrs_addr = cursor
        cursor = _align(
            cursor + 8 * partitioning.q_src * partitioning.q_dst
        )
        self.end_addr = cursor

    @property
    def required_bytes(self):
        return self.end_addr

    # -- address helpers ----------------------------------------------------

    def shard_addr(self, s, d):
        return self._shard_addrs[(s, d)]

    def shard_count(self, s, d):
        return self._shard_counts[(s, d)]

    def edge_ptr_addr(self, d, s):
        q_src = self.partitioning.q_src
        return self.edge_ptrs_addr + (d * q_src + s) * 8

    def v_in_interval_addr(self, d):
        return self.v_in_addr + d * self.partitioning.n_dst * self.node_bytes

    def v_out_interval_addr(self, d):
        return self.v_out_addr + d * self.partitioning.n_dst * self.node_bytes

    def v_const_interval_addr(self, d):
        if self.v_const_addr is None:
            return None
        return self.v_const_addr + d * self.partitioning.n_dst * 4

    # -- materialization ----------------------------------------------------

    def materialize(self, mem, v_in, v_const=None):
        """Write node arrays, shards, and edge pointers into *mem*.

        ``v_in`` (and ``v_const`` when used) are per-node arrays whose
        raw bits are stored; pass float32 arrays for PageRank scores.
        """
        if self.required_bytes > mem.size_bytes:
            raise ValueError(
                f"graph image needs {self.required_bytes:,} bytes, memory "
                f"has {mem.size_bytes:,}"
            )
        part = self.partitioning
        graph = part.graph
        self.write_values(mem, v_in, which="in")
        if self.synchronous:
            self.write_values(mem, v_in, which="out")
        if self.use_const:
            if v_const is None:
                raise ValueError("layout expects a V_const array")
            raw = np.ascontiguousarray(v_const).view(np.uint8)
            mem.write_bytes(self.v_const_addr, raw)

        for d in range(part.q_dst):
            for s in range(part.q_src):
                arrays = part.shard(s, d)
                src, dst = arrays[0], arrays[1]
                src_off = src - s * part.n_src
                dst_off = dst - d * part.n_dst
                weights = arrays[2] if graph.weighted else None
                words = self.codec.encode_shard(src_off, dst_off, weights)
                mem.write_bytes(self._shard_addrs[(s, d)],
                                words.view(np.uint8))
                pointer = pack_edge_pointer(
                    self._shard_addrs[(s, d)],
                    self._shard_counts[(s, d)],
                    active=True,
                )
                mem.view_u64(self.edge_ptr_addr(d, s), 1)[0] = pointer

    # -- runtime access (scheduler / host side) ------------------------------

    def read_pointer(self, mem, d, s):
        value = mem.view_u64(self.edge_ptr_addr(d, s), 1)[0]
        return unpack_edge_pointer(value)

    def set_active(self, mem, d, s, active):
        addr, count, _ = self.read_pointer(mem, d, s)
        mem.view_u64(self.edge_ptr_addr(d, s), 1)[0] = pack_edge_pointer(
            addr, count, active
        )

    def _values_view(self, mem, which):
        base = {"in": self.v_in_addr, "out": self.v_out_addr}[which]
        n = self.partitioning.graph.n_nodes
        if self.node_bytes == 4:
            return mem.view_u32(base, n)
        return mem.view_u64(base, n)

    def read_values(self, mem, which="out", dtype=None):
        """Copy of the node value array, optionally reinterpreted."""
        values = self._values_view(mem, which).copy()
        if dtype is not None:
            values = values.view(dtype)
        return values

    def write_values(self, mem, values, which="in"):
        raw = np.ascontiguousarray(values)
        view = self._values_view(mem, which)
        view[:] = raw.view(view.dtype)

    def swap_in_out(self):
        """Synchronous execution: exchange V_in and V_out between iterations."""
        if not self.synchronous:
            raise ValueError("swap only applies to synchronous layouts")
        self.v_in_addr, self.v_out_addr = self.v_out_addr, self.v_in_addr
