"""Disk memoization for graph generation and partitioning.

Sweeps evaluate the *same* benchmark graph under many architecture
points, and :func:`repro.experiments.common.run_points` workers are
separate processes -- each one regenerates (and re-partitions) an
identical graph from scratch.  This module memoizes both steps to
disk, keyed by a content hash of everything that determines the
result, so the first process pays the build cost and every later
worker loads preprocessed arrays instead.

Opt-in by environment variable::

    REPRO_GRAPH_CACHE=/path/to/dir   # enable, store .npz files there
    REPRO_GRAPH_CACHE=               # (unset/empty) disabled
    REPRO_GRAPH_CACHE=0              # explicitly disabled

Disabled is the default: generation is deterministic either way, the
cache only trades disk for CPU.  Keys hash the full recipe (spec repr,
seed offset, shrink, schema version), so a stale directory can never
return the wrong graph -- at worst a changed recipe misses and
regenerates.  Writes go through ``os.replace`` of a temp file, so
concurrent sweep workers racing on the same key are safe: both compute
the same bytes and the rename is atomic.
"""

import hashlib
import os
import tempfile

import numpy as np

# Bump when the stored array layout changes; old entries then miss.
_SCHEMA = 1


def cache_dir():
    """The cache directory, or None when caching is disabled."""
    path = os.environ.get("REPRO_GRAPH_CACHE", "").strip()
    if not path or path.lower() in ("0", "off", "false", "no"):
        return None
    return path


def _key(kind, recipe):
    digest = hashlib.sha256(
        f"v{_SCHEMA}|{kind}|{recipe}".encode("utf-8")
    ).hexdigest()[:32]
    return f"{kind}-{digest}.npz"


def _load(path):
    try:
        with np.load(path, allow_pickle=False) as bundle:
            return {name: bundle[name] for name in bundle.files}
    except (OSError, ValueError, KeyError):
        # Truncated/corrupt entry (e.g. a killed writer on a filesystem
        # without atomic rename): treat as a miss and overwrite.
        return None


def _store(directory, filename, arrays):
    os.makedirs(directory, exist_ok=True)
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=filename, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(temp_path, os.path.join(directory, filename))
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


# -- graph generation --------------------------------------------------------


def graph_fingerprint(spec, seed_offset, shrink):
    """Stable identity of one generated benchmark graph.

    ``BenchmarkSpec`` is a frozen dataclass, so its repr covers every
    field that affects generation; dataclass reprs are deterministic
    across processes (unlike salted ``hash()``).
    """
    return f"{spec!r}|seed_offset={seed_offset}|shrink={shrink}"


def load_cached_graph(spec, seed_offset, shrink):
    """Return the cached Graph for this recipe, or None on a miss."""
    directory = cache_dir()
    if directory is None:
        return None
    filename = _key("graph", graph_fingerprint(spec, seed_offset, shrink))
    arrays = _load(os.path.join(directory, filename))
    if arrays is None or "src" not in arrays or "dst" not in arrays:
        return None
    from repro.graph.coo import Graph

    weights = arrays.get("weights")
    if weights is not None and weights.size == 0:
        weights = None
    return Graph(
        int(arrays["n_nodes"]),
        arrays["src"],
        arrays["dst"],
        weights=weights,
        name=spec.key,
    )


def store_cached_graph(spec, seed_offset, shrink, graph):
    """Persist a freshly generated graph; no-op when disabled."""
    directory = cache_dir()
    if directory is None:
        return
    filename = _key("graph", graph_fingerprint(spec, seed_offset, shrink))
    arrays = {
        "n_nodes": np.int64(graph.n_nodes),
        "src": graph.src,
        "dst": graph.dst,
        "weights": (graph.weights if graph.weighted
                    else np.empty(0, dtype=np.int64)),
    }
    _store(directory, filename, arrays)


# -- partitioning ------------------------------------------------------------


def partition_fingerprint(graph, n_src, n_dst):
    """Content hash of one partitioning job.

    Hashes the actual edge arrays (not the graph name): reordering
    passes (hashing, DBG) relabel the same named graph into different
    edge lists, and each labeling needs its own partitioning.
    """
    digest = hashlib.sha256()
    digest.update(np.int64(graph.n_nodes).tobytes())
    digest.update(np.ascontiguousarray(graph.src).tobytes())
    digest.update(np.ascontiguousarray(graph.dst).tobytes())
    return f"{digest.hexdigest()}|n_src={n_src}|n_dst={n_dst}"


def load_cached_partition(graph, n_src, n_dst):
    """Return cached (order, offsets) arrays, or None on a miss."""
    directory = cache_dir()
    if directory is None:
        return None
    filename = _key("part", partition_fingerprint(graph, n_src, n_dst))
    arrays = _load(os.path.join(directory, filename))
    if arrays is None or "order" not in arrays or "offsets" not in arrays:
        return None
    return arrays["order"], arrays["offsets"]


def store_cached_partition(graph, n_src, n_dst, order, offsets):
    """Persist a freshly computed edge grouping; no-op when disabled."""
    directory = cache_dir()
    if directory is None:
        return
    filename = _key("part", partition_fingerprint(graph, n_src, n_dst))
    _store(directory, filename, {"order": order, "offsets": offsets})
