"""Directed graphs in coordinate (COO) format.

The accelerator accepts a plain edge list -- (src, dst, optional
weight) -- exactly as the paper's preprocessing does (Section III-C).
Arrays are numpy-backed; node labels are dense integers in [0, n).
"""

import numpy as np


class Graph:
    """A directed graph as parallel src/dst (and optional weight) arrays."""

    def __init__(self, n_nodes, src, dst, weights=None, name="graph"):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if len(src) and (src.min() < 0 or src.max() >= n_nodes):
            raise ValueError("src labels out of range")
        if len(dst) and (dst.min() < 0 or dst.max() >= n_nodes):
            raise ValueError("dst labels out of range")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != src.shape:
                raise ValueError("weights must match the edge count")
        self.n_nodes = int(n_nodes)
        self.src = src
        self.dst = dst
        self.weights = weights
        self.name = name

    @property
    def n_edges(self):
        return len(self.src)

    @property
    def weighted(self):
        return self.weights is not None

    def out_degrees(self):
        """Out-degree of every node."""
        return np.bincount(self.src, minlength=self.n_nodes)

    def in_degrees(self):
        return np.bincount(self.dst, minlength=self.n_nodes)

    def with_weights(self, rng=None, max_weight=255):
        """Copy with random integer weights in [0, max_weight] (paper SSSP)."""
        rng = rng or np.random.default_rng(42)
        weights = rng.integers(0, max_weight + 1, size=self.n_edges)
        return Graph(self.n_nodes, self.src, self.dst, weights,
                     name=self.name)

    def relabel(self, permutation):
        """Apply a node permutation: node i becomes permutation[i].

        The permutation must be a bijection on [0, n).  Edge order is
        unchanged; only labels move, so the graph stays isomorphic.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if len(permutation) != self.n_nodes:
            raise ValueError("permutation length must equal n_nodes")
        check = np.zeros(self.n_nodes, dtype=bool)
        check[permutation] = True
        if not check.all():
            raise ValueError("not a permutation")
        return Graph(
            self.n_nodes,
            permutation[self.src],
            permutation[self.dst],
            self.weights,
            name=self.name,
        )

    def subgraph_stats(self):
        """Summary used by dataset tables (Table II style)."""
        degrees = self.out_degrees()
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "avg_degree": self.n_edges / self.n_nodes if self.n_nodes else 0,
            "max_out_degree": int(degrees.max()) if self.n_nodes else 0,
        }

    def __repr__(self):
        return (f"Graph({self.name!r}, N={self.n_nodes:,}, "
                f"M={self.n_edges:,}{', weighted' if self.weighted else ''})")
