"""Synthetic graph generators.

Three families cover the character of the paper's Table II suite:

* :func:`web_graph` -- power-law degrees plus *label locality*: node ids
  follow a crawl order, so tightly connected nodes sit close in the
  label space (the uk/it/sk/webbase crawls).  These graphs have high
  cache-line reuse under the original labeling.
* :func:`social_graph` -- the same degree structure with labels
  scrambled, destroying community locality (twitter/friendster), the
  graphs for which DBG reordering pays off in the paper's Fig. 13.
* :func:`rmat_graph` -- the classic R-MAT recursive generator used for
  the paper's RMAT-24/25/26 benchmarks.

All generators are deterministic in their seed.
"""

import numpy as np

from repro.graph.coo import Graph


def _powerlaw_popularity(n_nodes, alpha, rng):
    """Unnormalized node sampling weights following a power law.

    Node popularity ranks are shuffled so hubs are spread over the
    label space the way real crawls spread them.
    """
    ranks = rng.permutation(n_nodes) + 1
    return ranks.astype(np.float64) ** (-alpha)


def _sample(weights_cumsum, size, rng):
    picks = rng.random(size) * weights_cumsum[-1]
    return np.searchsorted(weights_cumsum, picks, side="right")


def web_graph(n_nodes, n_edges, locality=0.9, alpha=0.7, community_span=64,
              seed=1, name="web"):
    """Power-law directed graph whose labeling preserves communities.

    A fraction ``locality`` of edges connect nodes within
    ``community_span`` labels of each other (crawl-order locality);
    the rest follow global power-law popularity.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    popularity = np.cumsum(_powerlaw_popularity(n_nodes, alpha, rng))
    src = _sample(popularity, n_edges, rng)
    dst = np.empty(n_edges, dtype=np.int64)
    local = rng.random(n_edges) < locality
    n_local = int(local.sum())
    offsets = rng.integers(1, community_span + 1, size=n_local)
    signs = rng.choice((-1, 1), size=n_local)
    dst[local] = np.clip(src[local] + signs * offsets, 0, n_nodes - 1)
    dst[~local] = _sample(popularity, n_edges - n_local, rng)
    return Graph(n_nodes, src, dst, name=name)


def social_graph(n_nodes, n_edges, alpha=0.75, locality=0.6,
                 community_span=64, seed=2, name="social"):
    """Like :func:`web_graph` but with community-destroying labels.

    The underlying structure still has communities and hubs; the final
    random relabeling is what separates 'social' from 'web' here --
    matching Faldu et al.'s observation that some datasets ship with
    locality-free labelings.
    """
    graph = web_graph(n_nodes, n_edges, locality=locality, alpha=alpha,
                      community_span=community_span, seed=seed, name=name)
    rng = np.random.default_rng(seed + 1_000_003)
    permutation = rng.permutation(n_nodes)
    return graph.relabel(permutation)


def rmat_graph(scale, edge_factor=16, a=0.57, b=0.19, c=0.19, seed=3,
               name=None):
    """R-MAT recursive matrix generator (Chakrabarti et al.).

    ``scale`` is log2 of the node count; ``a + b + c + d = 1`` with
    ``d`` implicit.  Vectorized: every edge picks one quadrant per
    level.  Labels are left as generated (RMAT labelings do not
    preserve communities, so DBG helps -- paper Fig. 13).
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    n_nodes = 1 << scale
    n_edges = n_nodes * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(n_edges)
        src_bit = (r >= a + b) & (r < a + b + c) | (r >= a + b + c)
        dst_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return Graph(n_nodes, src, dst,
                 name=name or f"rmat-{scale}")


def uniform_random_graph(n_nodes, n_edges, seed=4, name="uniform"):
    """Erdos-Renyi-style uniform edges; the no-skew control case."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    return Graph(n_nodes, src, dst, name=name)
