"""Synthetic stand-ins for the paper's Table II benchmark suite.

The real graphs (2.4M-118M nodes, up to 2B edges) do not fit a Python
cycle simulator, so each benchmark is generated at roughly 1/1000 scale
with the *character* that drives the paper's results preserved:

* degree distribution (power-law exponents, average degree),
* label locality (web crawls keep communities adjacent in the label
  space; social networks and RMAT ship with scrambled labels), and
* relative size ordering of the suite.

Average degrees of the densest graphs are compressed (the simulator's
cost is O(M)); DESIGN.md documents this substitution.  All graphs are
deterministic in their name.
"""

import zlib
from dataclasses import dataclass

from repro.graph.generators import rmat_graph, social_graph, web_graph


@dataclass(frozen=True)
class BenchmarkSpec:
    """Recipe for one Table II stand-in."""

    key: str
    full_name: str
    kind: str  # 'web' | 'social' | 'rmat'
    n_nodes: int
    n_edges: int
    locality: float = 0.9
    alpha: float = 0.7
    rmat_scale: int = 0
    rmat_edge_factor: int = 8
    paper_nodes: str = ""
    paper_edges: str = ""
    paper_n: int = 0  # numeric paper-scale sizes (GPU capacity checks)
    paper_m: int = 0

    def generate(self, seed_offset=0, shrink=1):
        """Build the graph; ``shrink`` divides N and M (bench-scale runs)."""
        # zlib.crc32 is stable across processes (builtin hash() is salted).
        seed = (zlib.crc32(self.key.encode()) % 100_000) + seed_offset
        if shrink > 1:
            spec = self._shrunk(shrink)
            return spec.generate(seed_offset)
        if self.kind == "web":
            graph = web_graph(self.n_nodes, self.n_edges,
                              locality=self.locality, alpha=self.alpha,
                              seed=seed, name=self.key)
        elif self.kind == "social":
            graph = social_graph(self.n_nodes, self.n_edges,
                                 alpha=self.alpha, locality=self.locality,
                                 seed=seed, name=self.key)
        elif self.kind == "rmat":
            graph = rmat_graph(self.rmat_scale,
                               edge_factor=self.rmat_edge_factor,
                               seed=seed, name=self.key)
        else:
            raise ValueError(f"unknown benchmark kind {self.kind!r}")
        return graph

    def _shrunk(self, shrink):
        """A proportionally smaller spec with the same character."""
        import dataclasses
        import math
        if self.kind == "rmat":
            # Edge count scales as 2^scale: dropping log2(shrink) levels
            # divides M by shrink, matching the other families.
            scale_drop = max(1, round(math.log2(shrink)))
            return dataclasses.replace(
                self,
                rmat_scale=max(8, self.rmat_scale - scale_drop),
                n_nodes=1 << max(8, self.rmat_scale - scale_drop),
                n_edges=(1 << max(8, self.rmat_scale - scale_drop))
                * self.rmat_edge_factor,
            )
        return dataclasses.replace(
            self,
            n_nodes=max(1024, self.n_nodes // shrink),
            n_edges=max(4096, self.n_edges // shrink),
        )


BENCHMARKS = {
    # Sparse, skewed talk network; moderate locality.
    "WT": BenchmarkSpec("WT", "wiki-Talk", "web", 16_384, 36_000,
                        locality=0.55, alpha=0.85,
                        paper_nodes="2.39M", paper_edges="5.02M", paper_n=2_390_000, paper_m=5_020_000),
    # Mid-sized encyclopedia link graph, communities preserved.
    "DB": BenchmarkSpec("DB", "dbpedia-link", "web", 18_432, 150_000,
                        locality=0.7, alpha=0.75,
                        paper_nodes="18.3M", paper_edges="172M", paper_n=18_300_000, paper_m=172_000_000),
    # Web crawls: strong label locality (crawl order), dense.
    "UK": BenchmarkSpec("UK", "uk-2005", "web", 20_480, 190_000,
                        locality=0.92, alpha=0.7,
                        paper_nodes="39.5M", paper_edges="936M", paper_n=39_500_000, paper_m=936_000_000),
    "IT": BenchmarkSpec("IT", "it-2004", "web", 20_480, 210_000,
                        locality=0.94, alpha=0.7,
                        paper_nodes="41.3M", paper_edges="1.15B", paper_n=41_300_000, paper_m=1_150_000_000),
    "SK": BenchmarkSpec("SK", "sk-2005", "web", 24_576, 250_000,
                        locality=0.95, alpha=0.72,
                        paper_nodes="50.6M", paper_edges="1.95B", paper_n=50_600_000, paper_m=1_950_000_000),
    # Social networks: same structure, scrambled labels.
    "MP": BenchmarkSpec("MP", "twitter_mpi", "social", 26_624, 240_000,
                        locality=0.35, alpha=0.9,
                        paper_nodes="52.6M", paper_edges="1.96B", paper_n=52_600_000, paper_m=1_960_000_000),
    "RV": BenchmarkSpec("RV", "twitter_rv", "social", 30_720, 220_000,
                        locality=0.35, alpha=0.88,
                        paper_nodes="61.6M", paper_edges="1.47B", paper_n=61_600_000, paper_m=1_470_000_000),
    "FR": BenchmarkSpec("FR", "com-friendster", "social", 32_768, 260_000,
                        locality=0.35, alpha=0.82,
                        paper_nodes="65.6M", paper_edges="1.81B", paper_n=65_600_000, paper_m=1_810_000_000),
    # Shallow, very wide web crawl.
    "WB": BenchmarkSpec("WB", "webbase-2001", "web", 49_152, 200_000,
                        locality=0.88, alpha=0.7,
                        paper_nodes="118M", paper_edges="1.02B", paper_n=118_000_000, paper_m=1_020_000_000),
    # R-MAT synthetic graphs (Graph500-style).
    "24": BenchmarkSpec("24", "RMAT-24", "rmat", 1 << 13, (1 << 13) * 8,
                        rmat_scale=13,
                        paper_nodes="16.8M", paper_edges="268M",
                        paper_n=16_800_000, paper_m=268_000_000),
    "25": BenchmarkSpec("25", "RMAT-25", "rmat", 1 << 14, (1 << 14) * 8,
                        rmat_scale=14,
                        paper_nodes="33.6M", paper_edges="537M",
                        paper_n=33_600_000, paper_m=537_000_000),
    "26": BenchmarkSpec("26", "RMAT-26", "rmat", 1 << 15, (1 << 15) * 8,
                        rmat_scale=15,
                        paper_nodes="67.1M", paper_edges="1.07B",
                        paper_n=67_100_000, paper_m=1_070_000_000),
}

# The subset used by default in benchmark runs (one per family plus the
# extremes); set REPRO_FULL_SUITE=1 to sweep everything.
DEFAULT_SUITE = ("WT", "DB", "UK", "RV", "24")

# Graphs whose shipped labeling destroys communities; DBG reordering is
# expected to help exactly these (paper Fig. 13).
SCRAMBLED_LABELS = ("MP", "RV", "FR", "24", "25", "26")

_cache = {}


def load_benchmark(key, seed_offset=0, shrink=1):
    """Generate (and memoize) one benchmark graph by its Table II key.

    ``shrink`` > 1 returns a proportionally smaller graph with the same
    character -- used by the benchmark harness so a default
    ``pytest benchmarks/`` run finishes quickly (the full-size suite
    runs with REPRO_FULL_SUITE=1).
    """
    cache_key = (key, seed_offset, shrink)
    graph = _cache.get(cache_key)
    if graph is None:
        # Second-level disk cache (opt-in via REPRO_GRAPH_CACHE): sweep
        # worker processes share generated graphs instead of each
        # regenerating the same arrays (see repro.graph.cache).
        from repro.graph.cache import load_cached_graph, store_cached_graph

        spec = BENCHMARKS[key]
        graph = load_cached_graph(spec, seed_offset, shrink)
        if graph is None:
            graph = spec.generate(seed_offset, shrink=shrink)
            store_cached_graph(spec, seed_offset, shrink, graph)
        _cache[cache_key] = graph
    return graph


def suite(keys=None, shrink=1):
    """Yield (key, graph) pairs for the chosen subset (default: all)."""
    for key in keys or BENCHMARKS:
        yield key, load_benchmark(key, shrink=shrink)
