"""Compressed edge encoding and edge pointers (paper Section III-C).

Within a shard the high bits of both endpoints are implicit, so an
unweighted edge needs only the offsets inside its source and
destination intervals: 16 + 15 bits, plus one isTerminatingEdge flag =
32 bits even for graphs with tens of millions of nodes.  A special
terminating edge closes every shard because DRAM words hold several
edges and bursts may return out of order, so PEs cannot rely on an
edge counter.  Weighted edges append a 32-bit weight word.

Each shard also gets a 64-bit edge pointer: start address, edge count
(used for sizing the burst reads), and the shard's active_srcs flag
(Template 1, line 10).
"""

import numpy as np

EDGE_DST_BITS = 15
EDGE_SRC_BITS = 16
TERMINATOR_BIT = np.uint32(1 << 31)

POINTER_ADDR_BITS = 36
POINTER_COUNT_BITS = 27
POINTER_ACTIVE_BIT = np.uint64(1 << 63)


class EdgeCodec:
    """Packs/unpacks one shard's edges into 32-bit words."""

    def __init__(self, nodes_per_src_interval, nodes_per_dst_interval,
                 weighted=False):
        if nodes_per_src_interval > 1 << EDGE_SRC_BITS:
            raise ValueError(
                f"source interval exceeds {EDGE_SRC_BITS}-bit offsets"
            )
        if nodes_per_dst_interval > 1 << EDGE_DST_BITS:
            raise ValueError(
                f"destination interval exceeds {EDGE_DST_BITS}-bit offsets"
            )
        self.n_src = nodes_per_src_interval
        self.n_dst = nodes_per_dst_interval
        self.weighted = weighted

    @property
    def words_per_edge(self):
        return 2 if self.weighted else 1

    def encode_shard(self, src_offsets, dst_offsets, weights=None):
        """Encode offset arrays into words, terminator appended."""
        src_offsets = np.asarray(src_offsets, dtype=np.uint32)
        dst_offsets = np.asarray(dst_offsets, dtype=np.uint32)
        if len(src_offsets) and int(src_offsets.max()) >= self.n_src:
            raise ValueError("source offset out of interval")
        if len(dst_offsets) and int(dst_offsets.max()) >= self.n_dst:
            raise ValueError("destination offset out of interval")
        edge_words = (src_offsets << EDGE_DST_BITS) | dst_offsets
        if self.weighted:
            if weights is None:
                raise ValueError("weighted codec needs weights")
            weights = np.asarray(weights, dtype=np.uint32)
            words = np.empty(2 * len(edge_words) + 2, dtype=np.uint32)
            words[0:-2:2] = edge_words
            words[1:-2:2] = weights
            words[-2] = TERMINATOR_BIT
            words[-1] = 0
            return words
        return np.concatenate(
            [edge_words, np.array([TERMINATOR_BIT], dtype=np.uint32)]
        )

    def decode_shard(self, words):
        """Inverse of :meth:`encode_shard`; stops at the terminator.

        Returns (src_offsets, dst_offsets) or (src, dst, weights).
        Ignores any padding words after the terminator, the way a PE
        ignores the tail of the final DRAM word.
        """
        words = np.asarray(words, dtype=np.uint32)
        stride = self.words_per_edge
        edge_words = words[0::stride]
        terminators = np.nonzero(edge_words & TERMINATOR_BIT)[0]
        if len(terminators) == 0:
            raise ValueError("shard stream has no terminating edge")
        n = int(terminators[0])
        edge_words = edge_words[:n]
        src = (edge_words >> EDGE_DST_BITS) & ((1 << EDGE_SRC_BITS) - 1)
        dst = edge_words & ((1 << EDGE_DST_BITS) - 1)
        if self.weighted:
            weights = words[1::stride][:n]
            return src.astype(np.int64), dst.astype(np.int64), \
                weights.astype(np.int64)
        return src.astype(np.int64), dst.astype(np.int64)

    @staticmethod
    def is_terminator(word):
        return bool(np.uint32(word) & TERMINATOR_BIT)

    @staticmethod
    def decode_word(word):
        """Decode one edge word to (src_offset, dst_offset)."""
        word = int(word)
        return (word >> EDGE_DST_BITS) & ((1 << EDGE_SRC_BITS) - 1), \
            word & ((1 << EDGE_DST_BITS) - 1)

    def shard_bytes(self, n_edges):
        """Encoded size of a shard with *n_edges* edges, incl. terminator."""
        return 4 * (self.words_per_edge * n_edges + self.words_per_edge)


def pack_edge_pointer(addr, count, active):
    """Pack a shard's (address, edge count, active flag) into 64 bits."""
    if addr < 0 or addr >= 1 << POINTER_ADDR_BITS:
        raise ValueError("address out of pointer range")
    if count < 0 or count >= 1 << POINTER_COUNT_BITS:
        raise ValueError("edge count out of pointer range")
    value = np.uint64(addr) | (np.uint64(count) << np.uint64(POINTER_ADDR_BITS))
    if active:
        value |= POINTER_ACTIVE_BIT
    return value


def unpack_edge_pointer(value):
    """Inverse of :func:`pack_edge_pointer` -> (addr, count, active)."""
    value = np.uint64(value)
    addr = int(value & np.uint64((1 << POINTER_ADDR_BITS) - 1))
    count = int(
        (value >> np.uint64(POINTER_ADDR_BITS))
        & np.uint64((1 << POINTER_COUNT_BITS) - 1)
    )
    active = bool(value & POINTER_ACTIVE_BIT)
    return addr, count, active
