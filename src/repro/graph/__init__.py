"""Graph substrate: representation, generation, partitioning, encoding.

Everything the accelerator consumes: COO graphs (Section III-C),
interval-based Qs x Qd shard partitioning (Fig. 3), the 32-bit
compressed edge encoding with terminating edges and the 64-bit edge
pointer array (Fig. 4), node reordering (cache-line hashing and DBG,
Section IV-E), the full DRAM memory layout, and the synthetic stand-in
suite for the paper's Table II benchmarks.
"""

from repro.graph.coo import Graph
from repro.graph.generators import rmat_graph, social_graph, web_graph
from repro.graph.partition import Partitioning, partition_edges
from repro.graph.encoding import (
    EDGE_DST_BITS,
    EDGE_SRC_BITS,
    EdgeCodec,
    pack_edge_pointer,
    unpack_edge_pointer,
)
from repro.graph.reorder import dbg_reorder, hash_cache_lines, identity_order
from repro.graph.layout import GraphLayout
from repro.graph.datasets import BENCHMARKS, load_benchmark

__all__ = [
    "BENCHMARKS",
    "EDGE_DST_BITS",
    "EDGE_SRC_BITS",
    "EdgeCodec",
    "Graph",
    "GraphLayout",
    "Partitioning",
    "dbg_reorder",
    "hash_cache_lines",
    "identity_order",
    "load_benchmark",
    "pack_edge_pointer",
    "partition_edges",
    "rmat_graph",
    "social_graph",
    "unpack_edge_pointer",
    "web_graph",
]
