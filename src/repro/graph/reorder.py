"""Node reordering (paper Section IV-E).

Two orthogonal techniques, both returning permutations to feed
:meth:`repro.graph.Graph.relabel`:

* :func:`hash_cache_lines` -- keep cache lines (groups of consecutive
  node labels) intact and hash entire lines across destination
  intervals.  This balances in-edges per interval (job sizes) without
  destroying the intra-line locality that drives MOMS response reuse --
  the paper's replacement for ForeGraph/FabGraph's per-node hashing.
* :func:`dbg_reorder` -- Faldu et al.'s degree-based grouping: coarsely
  partition nodes into 8 groups by out-degree (hubs first), preserving
  original order within each group.  O(N); used before cache-line
  hashing when the input labeling does not preserve communities.
"""

import numpy as np


def identity_order(n_nodes):
    """The no-op permutation (baseline in Fig. 13)."""
    return np.arange(n_nodes, dtype=np.int64)


def hash_cache_lines(n_nodes, nodes_per_dst_interval, nodes_per_line=16,
                     seed=11):
    """Permutation hashing whole cache lines across destination intervals.

    Lines of ``nodes_per_line`` consecutive labels are shuffled
    (seeded), then dealt round-robin into destination intervals so
    every interval receives an equal share of lines from all over the
    label space.  Within a line, node order is untouched.
    """
    if nodes_per_dst_interval % nodes_per_line:
        raise ValueError(
            "destination interval must be a whole number of cache lines"
        )
    n_lines = -(-n_nodes // nodes_per_line)
    rng = np.random.default_rng(seed)
    shuffled = rng.permutation(n_lines)
    # new_position_of_line[old_line] = index in the shuffled order
    new_position = np.empty(n_lines, dtype=np.int64)
    new_position[shuffled] = np.arange(n_lines)
    nodes = np.arange(n_nodes, dtype=np.int64)
    lines = nodes // nodes_per_line
    offsets = nodes % nodes_per_line
    permutation = new_position[lines] * nodes_per_line + offsets
    # Guard: padded tail lines may exceed n_nodes; compress to a dense
    # permutation over [0, n) while preserving order.
    order = np.argsort(permutation, kind="stable")
    dense = np.empty(n_nodes, dtype=np.int64)
    dense[order] = np.arange(n_nodes)
    return dense


def dbg_reorder(graph, n_groups=8):
    """Degree-based grouping permutation (Faldu et al. [19]).

    Nodes are bucketed by floor(log2(out-degree + 1)) capped to
    ``n_groups`` coarse groups, highest degree group first; original
    order is kept inside each group (stability preserves whatever
    locality exists).  Runs in O(N).
    """
    degrees = graph.out_degrees()
    groups = np.minimum(
        np.log2(degrees + 1).astype(np.int64), n_groups - 1
    )
    # Stable sort by descending group: hubs first.
    order = np.argsort(-groups, kind="stable")
    permutation = np.empty(graph.n_nodes, dtype=np.int64)
    permutation[order] = np.arange(graph.n_nodes)
    return permutation


def compose(first, then):
    """Permutation applying *first* and then *then*."""
    first = np.asarray(first)
    then = np.asarray(then)
    return then[first]
