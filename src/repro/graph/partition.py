"""Interval-based graph partitioning (paper Fig. 3, Section III-A).

Nodes are split into Qs source intervals of size Ns and Qd destination
intervals of size Nd; edges land in the shard E[s->d] given by their
endpoints' intervals.  The grouping is a counting sort over shard ids:
O(M), deliberately cheaper than the O(M log M) edge sorting that CSR
conversion would need -- the paper's central preprocessing claim.
"""

import numpy as np

from repro.graph.coo import Graph


def _ceil_div(a, b):
    return -(-a // b)


class Partitioning:
    """Edges of a graph grouped into Qs x Qd shards."""

    def __init__(self, graph, nodes_per_src_interval, nodes_per_dst_interval,
                 order, shard_offsets):
        self.graph = graph
        self.n_src = nodes_per_src_interval
        self.n_dst = nodes_per_dst_interval
        self.q_src = _ceil_div(graph.n_nodes, nodes_per_src_interval)
        self.q_dst = _ceil_div(graph.n_nodes, nodes_per_dst_interval)
        self._order = order  # edge indices grouped by shard
        self._offsets = shard_offsets  # len q_src*q_dst + 1

    def shard_index(self, s, d):
        return s * self.q_dst + d

    def shard(self, s, d):
        """(src, dst[, weights]) arrays of shard E[s->d], original labels."""
        index = self.shard_index(s, d)
        edge_ids = self._order[self._offsets[index]:self._offsets[index + 1]]
        if self.graph.weighted:
            return (self.graph.src[edge_ids], self.graph.dst[edge_ids],
                    self.graph.weights[edge_ids])
        return self.graph.src[edge_ids], self.graph.dst[edge_ids]

    def shard_size(self, s, d):
        index = self.shard_index(s, d)
        return int(self._offsets[index + 1] - self._offsets[index])

    def shard_sizes(self):
        """(q_src, q_dst) matrix of edge counts."""
        return np.diff(self._offsets).reshape(self.q_src, self.q_dst)

    def dst_interval_edge_counts(self):
        """In-edges per destination interval (job sizes; load balance)."""
        return self.shard_sizes().sum(axis=0)

    def src_interval_of(self, node):
        return node // self.n_src

    def dst_interval_of(self, node):
        return node // self.n_dst

    def dst_interval_bounds(self, d):
        """[lo, hi) node range of destination interval *d*."""
        lo = d * self.n_dst
        return lo, min(lo + self.n_dst, self.graph.n_nodes)

    @property
    def n_shards(self):
        return self.q_src * self.q_dst


def partition_edges(graph, nodes_per_src_interval, nodes_per_dst_interval):
    """Partition *graph*'s edges into shards in O(M).

    Uses numpy's radix sort on integer shard ids (stable, linear) to
    group edge indices; per-shard offsets come from a bincount.
    """
    if nodes_per_src_interval < 1 or nodes_per_dst_interval < 1:
        raise ValueError("interval sizes must be positive")
    # Disk memoization (opt-in via REPRO_GRAPH_CACHE): the grouping is a
    # pure function of the edge arrays and interval sizes, so sweep
    # workers evaluating the same (graph, layout) pair under different
    # architectures can share it (see repro.graph.cache).
    from repro.graph.cache import (
        cache_dir,
        load_cached_partition,
        store_cached_partition,
    )

    if cache_dir() is not None:
        cached = load_cached_partition(
            graph, nodes_per_src_interval, nodes_per_dst_interval
        )
        if cached is not None:
            order, offsets = cached
            return Partitioning(graph, nodes_per_src_interval,
                                nodes_per_dst_interval, order, offsets)
    q_dst = _ceil_div(graph.n_nodes, nodes_per_dst_interval)
    q_src = _ceil_div(graph.n_nodes, nodes_per_src_interval)
    shard_ids = (
        graph.src // nodes_per_src_interval * q_dst
        + graph.dst // nodes_per_dst_interval
    )
    order = np.argsort(shard_ids, kind="stable")
    counts = np.bincount(shard_ids, minlength=q_src * q_dst)
    offsets = np.zeros(q_src * q_dst + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if cache_dir() is not None:
        store_cached_partition(
            graph, nodes_per_src_interval, nodes_per_dst_interval,
            order, offsets,
        )
    return Partitioning(graph, nodes_per_src_interval,
                        nodes_per_dst_interval, order, offsets)
