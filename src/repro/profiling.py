"""The ``python -m repro profile`` subcommand.

Runs one quick (graph, algorithm, architecture) point under cProfile
and prints where the simulator actually spends its time::

    python -m repro profile --graph RV --algorithm pagerank --org two-level

Output is three tables:

* **per-component self time** -- profiler rows aggregated by repro
  module (``core.bank``, ``sim.channel``, ...), so "which component is
  hot" is one glance instead of a pstats session;
* **top functions** -- the usual self-time leaderboard, restricted to
  the simulator's own code by default (``--all-functions`` lifts that);
* **engine + pool summary** -- simulated cycles per second, the wake
  machinery's tick fraction, and steady-state token allocations per
  simulated cycle (near zero when the freelists are circulating).

The perf work in this tree (SoA channels, token pooling, batched
kernels) is measured against exactly this view; keep using it before
and after any hot-path change.
"""

import cProfile
import os
import pstats
import time


def add_profile_arguments(parser):
    """Attach the profile-specific flags to the __main__ parser."""
    parser.add_argument(
        "--org", default="two-level",
        choices=("shared", "private", "two-level", "traditional"),
        help="memory-system organization to profile (default two-level)",
    )
    parser.add_argument(
        "--engine", default=None, choices=("demand", "legacy"),
        help="simulation engine for profile/trace/spans "
             "(default: REPRO_ENGINE env, else demand)",
    )
    parser.add_argument(
        "--kernels", default=None, choices=("vector", "scalar"),
        help="hot-loop kernel mode for profile/trace/spans "
             "(default: REPRO_KERNELS env, else vector)",
    )
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the top-functions table (default 20)",
    )
    parser.add_argument(
        "--all-functions", action="store_true",
        help="include non-repro frames (numpy, stdlib) in the tables",
    )
    parser.add_argument(
        "--pstats-out", default=None, metavar="PATH",
        help="also dump the raw cProfile stats for snakeviz/pstats",
    )


def _org_constant(name):
    from repro.fabric import design

    return {
        "shared": design.MOMS_SHARED,
        "private": design.MOMS_PRIVATE,
        "two-level": design.MOMS_TWO_LEVEL,
        "traditional": design.MOMS_TRADITIONAL,
    }[name]


def _module_of(filename):
    """Map a profiler filename to a repro module label, or None."""
    marker = os.sep + "repro" + os.sep
    index = filename.rfind(marker)
    if index < 0:
        return None
    relative = filename[index + len(marker):]
    if relative.endswith(".py"):
        relative = relative[:-3]
    return relative.replace(os.sep, ".")


def _collect_rows(stats):
    """(module_rows, function_rows) aggregated from a pstats object.

    ``module_rows``: {module: [self_s, calls]} over repro code only.
    ``function_rows``: (self_s, cumulative_s, calls, label, is_repro).
    """
    modules = {}
    functions = []
    for (filename, lineno, name), row in stats.stats.items():
        cc, ncalls, tottime, cumtime, _callers = row
        module = _module_of(filename)
        if module is not None:
            entry = modules.setdefault(module, [0.0, 0])
            entry[0] += tottime
            entry[1] += ncalls
            label = f"{module}:{name}"
        else:
            base = os.path.basename(filename) if filename else filename
            label = f"{base}:{name}" if base else name
        functions.append((tottime, cumtime, ncalls, label, module is not None))
    return modules, functions


def run_profile(args, log=print):
    """Profile one quick point; prints the tables, returns an exit code."""
    # Imported here: the CLI parser must stay importable without the
    # simulation stack (same convention as the trace subcommand).
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.kernels is not None:
        os.environ["REPRO_KERNELS"] = args.kernels

    from repro.accel.config import (
        ArchitectureConfig,
        SCALED_DEFAULTS,
        _design,
    )
    from repro.accel.system import AcceleratorSystem
    from repro.core import messages
    from repro.core.stats import EngineActivity
    from repro.experiments.common import bench_graph, iteration_budget
    from repro.report import format_table

    quick = not args.full
    graph = bench_graph(args.graph, quick=quick)
    config = ArchitectureConfig(
        _design(4, 4, _org_constant(args.org), args.algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(graph, args.algorithm, config)
    budget = iteration_budget(args.algorithm, quick)

    messages.reset_pool_counters()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = system.run(max_iterations=budget)
    profiler.disable()
    wall = time.perf_counter() - start
    fresh = messages.fresh_allocations()

    stats = pstats.Stats(profiler)
    if args.pstats_out:
        stats.dump_stats(args.pstats_out)
    modules, functions = _collect_rows(stats)

    engine_name = os.environ.get("REPRO_ENGINE", "demand") or "demand"
    kernels_name = os.environ.get("REPRO_KERNELS", "vector") or "vector"
    log(f"profiled: {args.algorithm} on {graph.name} / {args.org} 4x4, "
        f"engine={engine_name}, kernels={kernels_name}")
    log(f"  {result.cycles:,} cycles in {wall:.3f}s wall "
        f"({result.cycles / wall:,.0f} cycles/s), "
        f"{result.edges_processed:,} edges")

    total_self = sum(entry[0] for entry in modules.values()) or 1.0
    module_rows = [
        {
            "component": module,
            "self_s": entry[0],
            "share_pct": 100.0 * entry[0] / total_self,
            "calls": entry[1],
        }
        for module, entry in sorted(
            modules.items(), key=lambda item: -item[1][0]
        )
    ]
    log("")
    log(format_table(
        module_rows,
        columns=("component", "self_s", "share_pct", "calls"),
        title="per-component self time (repro modules)",
    ))

    pool = functions if args.all_functions \
        else [row for row in functions if row[4]]
    pool.sort(key=lambda row: -row[0])
    function_rows = [
        {
            "function": label,
            "self_s": tottime,
            "cum_s": cumtime,
            "calls": ncalls,
        }
        for tottime, cumtime, ncalls, label, _is_repro in pool[:args.top]
    ]
    log("")
    log(format_table(
        function_rows,
        columns=("function", "self_s", "cum_s", "calls"),
        title=f"top {len(function_rows)} functions by self time",
    ))

    activity = EngineActivity.from_engine(system.engine)
    log("")
    log(f"engine: {activity.summary_line()}")
    aborts = ", ".join(
        f"{reason}={activity.fusion_abort_reasons[reason]}"
        for reason in sorted(activity.fusion_abort_reasons)
    ) or "none"
    log(f"fusion: {activity.fused_runs} fused runs covering "
        f"{activity.fused_cycles:,} cycles "
        f"(mean {activity.mean_run_len:.1f}); aborts: {aborts}")
    per_cycle = fresh / result.cycles if result.cycles else 0.0
    log(f"tokens: {fresh} fresh constructions over {result.cycles:,} "
        f"cycles = {per_cycle:.4f} allocations/cycle "
        f"(pools: {messages.pool_stats()})")
    if args.pstats_out:
        log(f"raw stats written to {args.pstats_out}")
    return 0
