"""Cache arrays: the optional hit-serving structure of a MOMS bank.

The array tracks only line *presence* -- data always comes from the
functional backing store, which is safe because the accelerator's
irregular reads target arrays that are read-only within an iteration
(synchronous mode) or whose algorithms tolerate staleness
(asynchronous mode), exactly as in the paper.

A MOMS with ``n_lines=0`` has no array at all: every request takes the
miss path.  Figs. 12 and 15 show this costs a MOMS almost nothing.
"""

from dataclasses import dataclass


@dataclass
class CacheStats:
    probes: int = 0
    hits: int = 0
    fills: int = 0
    evictions: int = 0

    @property
    def hit_rate(self):
        return self.hits / self.probes if self.probes else 0.0

    def as_dict(self):
        """JSON-safe snapshot (telemetry / report export)."""
        return {
            "probes": self.probes,
            "hits": self.hits,
            "fills": self.fills,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class CacheArray:
    """Direct-mapped or set-associative presence-only cache array."""

    def __init__(self, n_lines, assoc=1, line_bytes=64):
        if n_lines < 0:
            raise ValueError("n_lines must be >= 0")
        if n_lines and (assoc < 1 or n_lines % assoc):
            raise ValueError("n_lines must be a multiple of associativity")
        self.n_lines = n_lines
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_lines // assoc if n_lines else 0
        # Per set: list of line addresses, most recently used last.
        self._sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    @property
    def present(self):
        """False for the cache-less configurations of Figs. 12 and 15."""
        return self.n_lines > 0

    def _set_of(self, line_addr):
        return line_addr % self.n_sets

    def contains(self, line_addr):
        """Presence test with no LRU or stats effects (fusion oracle).

        ``MomsBank.step_n`` must predict that a retry cycle's probe
        would miss without perturbing the counters and recency order
        the real probes will touch; misses leave both untouched, so
        this pure read is all the prediction needs.
        """
        if not self.present:
            return False
        return line_addr in self._sets[self._set_of(line_addr)]

    def probe(self, line_addr):
        """True on hit; updates LRU order."""
        if not self.present:
            return False
        self.stats.probes += 1
        ways = self._sets[self._set_of(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
            ways.append(line_addr)
            self.stats.hits += 1
            return True
        return False

    def fill(self, line_addr):
        """Insert a returned line, evicting LRU within the set."""
        if not self.present:
            return
        ways = self._sets[self._set_of(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
        elif len(ways) >= self.assoc:
            ways.pop(0)
            self.stats.evictions += 1
        ways.append(line_addr)
        self.stats.fills += 1

    @property
    def occupancy(self):
        return sum(len(ways) for ways in self._sets)

    @classmethod
    def from_kib(cls, kib, assoc=1, line_bytes=64):
        """Build from a capacity in KiB (0 KiB -> cache-less)."""
        n_lines = kib * 1024 // line_bytes
        if n_lines and assoc > 1:
            n_lines -= n_lines % assoc
        return cls(n_lines, assoc=assoc if n_lines else 1,
                   line_bytes=line_bytes)
