"""MOMS hierarchy compositions (paper Fig. 8).

Four organizations are supported:

* ``shared``     -- PEs reach B shared banks through request/response
  crossbars; banks are statically bound to DRAM channels.  This is the
  original MOMS of the authors' prior work; bank conflicts limit it.
* ``private``    -- one bank per PE, no crossbar contention, but no
  inter-PE coalescing (more DRAM traffic).
* ``two-level``  -- private banks filter requests before a shared MOMS,
  like a two-level cache; the paper's best performer.
* ``traditional``-- same two-level wiring but with classic blocking
  non-blocking caches (16 fully-associative MSHRs, 8 subentries each).

The builder also inserts registered die crossings on every path that
spans SLRs according to the floorplan, so large multi-die designs pay
the latency the paper engineers around.
"""

from dataclasses import dataclass

from repro.core.bank import BankParams, MomsBank
from repro.sim.kernels import kernels_mode
from repro.fabric.arbiter import RoundRobinArbiter
from repro.fabric.crossbar import Crossbar
from repro.fabric.crossing import cross_link
from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
)
from repro.mem.dram import LINE_BYTES, _acquire_request
from repro.sim import Channel, SoaChannel


def _route_by_port(response):
    """Response-crossbar route: back to the requesting PE's port.

    A module-level function (not a lambda) so crossbars pickle into
    snapshots; see ``repro.checkpoint.protocol``.
    """
    return response.port


class DramDownstream:
    """Issues single 64-byte line reads to the owning DRAM channel."""

    def __init__(self, mem, request_ports, respond_to):
        self.mem = mem
        self.request_ports = request_ports  # one Channel per DRAM channel
        self.respond_to = respond_to
        self.lines_requested = 0

    @property
    def wake_channels(self):
        """Channels whose freed space can unblock a stalled issue."""
        return [port for port in self.request_ports if port is not None]

    def can_accept(self, line_addr):
        channel = self.mem.channel_of(line_addr * LINE_BYTES)
        return self.request_ports[channel].can_push()

    def request_wake(self, line_addr, component):
        """One-shot wake when the port a stalled issue needs frees up."""
        channel = self.mem.channel_of(line_addr * LINE_BYTES)
        self.request_ports[channel].request_space_wake(component)

    def issue(self, line_addr):
        addr = line_addr * LINE_BYTES
        channel = self.mem.channel_of(addr)
        request = _acquire_request(addr, LINE_BYTES, "single", False, None,
                                   self.respond_to, None)
        self.request_ports[channel].push(request)
        self.lines_requested += 1


class MomsDownstream:
    """Private bank requesting full lines from the shared level."""

    def __init__(self, req_out, port):
        self.req_out = req_out
        self.port = port
        self.lines_requested = 0

    @property
    def wake_channels(self):
        """Channels whose freed space can unblock a stalled issue."""
        return [self.req_out]

    def can_accept(self, line_addr):
        return self.req_out.can_push()

    def request_wake(self, line_addr, component):
        """One-shot wake when the shared-level request port frees up."""
        self.req_out.request_space_wake(component)

    def issue(self, line_addr):
        self.req_out.push_request(
            line_addr * LINE_BYTES, LINE_BYTES, None, self.port
        )
        self.lines_requested += 1


@dataclass
class HierarchySizes:
    """Simulator-scale structural sizes for both levels."""

    shared: BankParams
    private: BankParams

    @classmethod
    def from_design(cls, design, scale=1.0, cache_scale=None):
        """Scale the paper-size structures in *design* down for simulation.

        ``scale`` multiplies MSHR/subentry capacities; ``cache_scale``
        (default ``scale / 8``) shrinks the cache arrays further so the
        paper's key capacity ratio -- cache much smaller than the node
        set -- survives the graph downscaling.  Traditional-cache
        designs keep their 16 MSHRs / 8 subentries per MSHR unscaled --
        those numbers are already tiny and are the point of the
        baseline.
        """
        if cache_scale is None:
            cache_scale = scale / 8

        def scaled(value, minimum, factor=scale):
            return max(minimum, int(value * factor))

        traditional = design.organization == MOMS_TRADITIONAL
        shared = BankParams(
            n_mshrs=(design.traditional_mshrs if traditional
                     else scaled(design.shared_mshrs, 16)),
            n_subentries=(
                design.traditional_mshrs * design.traditional_subentries_per_mshr
                if traditional
                else scaled(design.shared_subentries, 64)
            ),
            cache_lines=scaled(design.shared_cache_kib * 1024 // LINE_BYTES,
                               0, cache_scale),
            cache_assoc=1,
            mshr_max_kicks=design.mshr_max_kicks,
            associative_mshrs=traditional,
            subentries_per_mshr=(design.traditional_subentries_per_mshr
                                 if traditional else 0),
        )
        private_cache_lines = scaled(
            design.private_cache_kib * 1024 // LINE_BYTES, 0, cache_scale
        )
        assoc = 4 if private_cache_lines >= 4 else 1
        private = BankParams(
            n_mshrs=(design.traditional_mshrs if traditional
                     else scaled(design.private_mshrs, 16)),
            n_subentries=(
                design.traditional_mshrs * design.traditional_subentries_per_mshr
                if traditional
                else scaled(design.private_subentries, 64)
            ),
            cache_lines=private_cache_lines - private_cache_lines % assoc,
            cache_assoc=assoc,
            mshr_max_kicks=design.mshr_max_kicks,
            associative_mshrs=traditional,
            subentries_per_mshr=(design.traditional_subentries_per_mshr
                                 if traditional else 0),
        )
        return cls(shared=shared, private=private)


class MemoryHierarchy:
    """The assembled irregular-read path between PEs and DRAM."""

    def __init__(self, engine, mem, design, sizes=None, scale=1.0,
                 cache_scale=None, floorplan=None, queue_depth=8):
        self.design = design
        self.mem = mem
        self.sizes = sizes or HierarchySizes.from_design(design, scale,
                                                         cache_scale)
        self.floorplan = floorplan
        self.queue_depth = queue_depth
        # One kernel-mode resolution per build: every bank in a system
        # agrees, and a harness flipping REPRO_KERNELS between builds
        # gets cleanly-separated scalar and vector systems.
        self.kernels = kernels_mode()
        self.private_banks = []
        self.shared_banks = []
        self.crossbars = []
        self.pe_req_ports = []
        self.pe_resp_ports = []
        self._dram_request_ports = []
        self._build(engine)

    # -- construction helpers ---------------------------------------------

    def _link(self, engine, die_a, die_b, capacity, name):
        """Channel pair joined by a die crossing when dies differ."""
        hops = 0
        if self.floorplan is not None and die_a is not None and die_b is not None:
            hops = self.floorplan.hops(die_a, die_b)
        return cross_link(engine, capacity, hops, name=name)

    def _pe_die(self, pe):
        if self.floorplan is None:
            return None
        return self._pe_dies[pe]

    def _bank_die(self, bank):
        if self.floorplan is None:
            return None
        return self.floorplan.die_of_bank(
            bank, self.design.n_banks, self.mem.n_channels
        )

    def bank_of_line(self, line_addr):
        """Shared bank serving *line_addr* (static channel binding)."""
        n_banks = self.design.n_banks
        n_channels = self.mem.n_channels
        channel = self.mem.channel_of(line_addr * LINE_BYTES)
        banks_per_channel = n_banks // n_channels
        return channel * banks_per_channel + line_addr % banks_per_channel

    # Crossbar route hooks as named callables (a bound method and a
    # module function) rather than inline lambdas: snapshots pickle the
    # whole system, and lambdas do not pickle.

    def route_request(self, request):
        """Request-crossbar route: by the line address's owning bank."""
        return self.bank_of_line(request.addr // LINE_BYTES)

    def _make_dram_ports(self, engine, n_clients, client_dies,
                         client_channels=None):
        """Per-DRAM-channel arbitrated request ports for *n_clients*.

        Returns per-client, per-channel input channels; each channel's
        arbiter merges them into the DRAM request queue.
        ``client_channels`` restricts which channels each client can
        address (shared banks are statically bound to one channel and
        never need ports to the others).
        """
        plan = self.floorplan
        ports = [[None] * self.mem.n_channels for _ in range(n_clients)]
        for channel_index, channel in enumerate(self.mem.channels):
            inputs = []
            for client in range(n_clients):
                if client_channels is not None and \
                        channel_index not in client_channels[client]:
                    continue
                die_a = client_dies[client] if client_dies else None
                die_b = (plan.die_of_channel(channel_index)
                         if plan is not None else None)
                near, far = self._link(
                    engine, die_a, die_b, 4,
                    name=f"dramreq.c{client}.ch{channel_index}",
                )
                ports[client][channel_index] = near
                inputs.append(far)
            engine.add_component(
                RoundRobinArbiter(inputs, channel.req,
                                  name=f"dram{channel_index}.arb")
            )
        return ports

    def _bank_channels(self):
        """Channel owned by each shared bank (static binding)."""
        n_banks = self.design.n_banks
        banks_per_channel = n_banks // self.mem.n_channels
        return [[bank // banks_per_channel] for bank in range(n_banks)]

    # -- organization builders ----------------------------------------------

    def _build(self, engine):
        design = self.design
        if design.has_shared_level and design.n_banks % self.mem.n_channels:
            raise ValueError("n_banks must be a multiple of n_channels")
        if self.floorplan is not None:
            self._pe_dies = self.floorplan.assign_pes(design.n_pes)
        depth = self.queue_depth
        # Private and two-level organizations connect these ports
        # straight to a bank, so both ends speak the fields API and the
        # tokens can live in struct-of-arrays columns.  The shared
        # organization moves them opaquely through crossings, crossbars
        # and forwarding arbiters and keeps plain object channels.
        soa = design.organization != MOMS_SHARED
        self.pe_req_ports = [
            engine.add_channel(
                SoaChannel(depth, name=f"pe{pe}.req", kind="request")
                if soa else Channel(depth, name=f"pe{pe}.req")
            )
            for pe in range(design.n_pes)
        ]
        self.pe_resp_ports = [
            engine.add_channel(
                SoaChannel(depth * 2, name=f"pe{pe}.resp", kind="response")
                if soa else Channel(depth * 2, name=f"pe{pe}.resp")
            )
            for pe in range(design.n_pes)
        ]

        if design.organization == MOMS_SHARED:
            self._build_shared(engine)
        elif design.organization == MOMS_PRIVATE:
            self._build_private(engine)
        elif design.organization in (MOMS_TWO_LEVEL, MOMS_TRADITIONAL):
            self._build_two_level(engine)
        else:
            raise ValueError(design.organization)

    def _build_shared(self, engine):
        design = self.design
        plan = self.floorplan
        xbar_die = plan.crossbar_die if plan is not None else None

        # PE -> crossbar (with die crossings to the central SLR).
        xbar_req_inputs = []
        for pe, port in enumerate(self.pe_req_ports):
            near, far = self._link(engine, self._pe_die(pe), xbar_die,
                                   self.queue_depth, name=f"pe{pe}.toxbar")
            self._reroute_pe_req_port(pe, near, port)
            xbar_req_inputs.append(far)

        bank_req_ins = []
        bank_resp_outs = []
        bank_dies = [self._bank_die(b) for b in range(design.n_banks)]
        dram_ports = self._make_dram_ports(engine, design.n_banks, bank_dies,
                                           self._bank_channels())
        for b in range(design.n_banks):
            req_near, req_far = self._link(engine, xbar_die, bank_dies[b],
                                           8, name=f"bank{b}.req")
            resp_near, resp_far = self._link(engine, bank_dies[b], xbar_die,
                                             8, name=f"bank{b}.resp")
            line_in = engine.add_channel(Channel(16, name=f"bank{b}.line"))
            bank = MomsBank(
                self.sizes.shared,
                req_in=req_far,
                resp_out=resp_near,
                line_in=line_in,
                downstream=DramDownstream(self.mem, dram_ports[b], line_in),
                store=self.mem,
                name=f"shared{b}",
                seed=b + 1,
                kernels=self.kernels,
            )
            engine.add_component(bank)
            self.shared_banks.append(bank)
            bank_req_ins.append(req_near)
            bank_resp_outs.append(resp_far)

        req_xbar = Crossbar(
            xbar_req_inputs,
            bank_req_ins,
            route=self.route_request,
            name="moms.reqxbar",
        )
        engine.add_component(req_xbar)
        self.crossbars.append(req_xbar)

        # Crossbar -> PE response path (crossings back out to PE dies).
        xbar_resp_outputs = []
        for pe in range(design.n_pes):
            near, far = self._link(engine, xbar_die, self._pe_die(pe),
                                   self.queue_depth * 2,
                                   name=f"pe{pe}.fromxbar")
            self._chain_to_resp_port(engine, far, self.pe_resp_ports[pe])
            xbar_resp_outputs.append(near)
        resp_xbar = Crossbar(
            bank_resp_outs,
            xbar_resp_outputs,
            route=_route_by_port,
            name="moms.respxbar",
        )
        engine.add_component(resp_xbar)
        self.crossbars.append(resp_xbar)

    def _build_private(self, engine):
        design = self.design
        pe_dies = ([self._pe_die(pe) for pe in range(design.n_pes)]
                   if self.floorplan is not None else None)
        dram_ports = self._make_dram_ports(engine, design.n_pes, pe_dies)
        for pe in range(design.n_pes):
            line_in = engine.add_channel(Channel(16, name=f"p{pe}.line"))
            bank = MomsBank(
                self.sizes.private,
                req_in=self.pe_req_ports[pe],
                resp_out=self.pe_resp_ports[pe],
                line_in=line_in,
                downstream=DramDownstream(self.mem, dram_ports[pe], line_in),
                store=self.mem,
                name=f"private{pe}",
                seed=pe + 1,
                kernels=self.kernels,
            )
            engine.add_component(bank)
            self.private_banks.append(bank)

    def _build_two_level(self, engine):
        design = self.design
        plan = self.floorplan
        xbar_die = plan.crossbar_die if plan is not None else None

        # Private level, one bank per PE, on the PE's die.
        l1_req_outs = []  # towards the shared crossbar
        for pe in range(design.n_pes):
            near, far = self._link(engine, self._pe_die(pe), xbar_die,
                                   self.queue_depth, name=f"l1_{pe}.down")
            line_near, line_far = self._link(
                engine, xbar_die, self._pe_die(pe), 16, name=f"l1_{pe}.fill"
            )
            bank = MomsBank(
                self.sizes.private,
                req_in=self.pe_req_ports[pe],
                resp_out=self.pe_resp_ports[pe],
                line_in=line_far,
                downstream=MomsDownstream(near, port=pe),
                store=self.mem,
                name=f"private{pe}",
                seed=pe + 101,
                kernels=self.kernels,
            )
            engine.add_component(bank)
            self.private_banks.append(bank)
            l1_req_outs.append(far)
            bank._fill_port = line_near  # shared level responds here

        # Shared level: crossbar -> banks -> DRAM.
        bank_req_ins = []
        bank_resp_outs = []
        bank_dies = [self._bank_die(b) for b in range(design.n_banks)]
        dram_ports = self._make_dram_ports(engine, design.n_banks, bank_dies,
                                           self._bank_channels())
        for b in range(design.n_banks):
            req_near, req_far = self._link(engine, xbar_die, bank_dies[b],
                                           8, name=f"l2_{b}.req")
            resp_near, resp_far = self._link(engine, bank_dies[b], xbar_die,
                                             8, name=f"l2_{b}.resp")
            line_in = engine.add_channel(Channel(16, name=f"l2_{b}.line"))
            bank = MomsBank(
                self.sizes.shared,
                req_in=req_far,
                resp_out=resp_near,
                line_in=line_in,
                downstream=DramDownstream(self.mem, dram_ports[b], line_in),
                store=self.mem,
                name=f"shared{b}",
                seed=b + 1,
                kernels=self.kernels,
            )
            engine.add_component(bank)
            self.shared_banks.append(bank)
            bank_req_ins.append(req_near)
            bank_resp_outs.append(resp_far)

        req_xbar = Crossbar(
            l1_req_outs,
            bank_req_ins,
            route=self.route_request,
            name="l2.reqxbar",
        )
        engine.add_component(req_xbar)
        self.crossbars.append(req_xbar)

        resp_xbar = Crossbar(
            bank_resp_outs,
            [bank._fill_port for bank in self.private_banks],
            route=_route_by_port,
            name="l2.respxbar",
        )
        engine.add_component(resp_xbar)
        self.crossbars.append(resp_xbar)

    # -- plumbing helpers ---------------------------------------------------

    def _reroute_pe_req_port(self, pe, near, old_port):
        """Replace the PE-facing request port with the crossing input."""
        if near is not old_port:
            self.pe_req_ports[pe] = near

    def _chain_to_resp_port(self, engine, source, dest):
        """Forward tokens from *source* into *dest* (1/cycle)."""
        if source is dest:
            return
        engine.add_component(RoundRobinArbiter([source], dest,
                                               name=f"{dest.name}.fwd"))

    # -- statistics / inspection ---------------------------------------------

    @property
    def banks(self):
        return self.private_banks + self.shared_banks

    def outstanding_misses(self):
        return sum(bank.outstanding_misses for bank in self.banks)

    def is_idle(self):
        return all(bank.is_idle() for bank in self.banks)

    def total_requests(self):
        """PE-level irregular reads served."""
        level = self.private_banks or self.shared_banks
        return sum(bank.stats.requests for bank in level)

    def dram_lines_requested(self):
        level = self.shared_banks or self.private_banks
        return sum(bank.stats.primary_misses for bank in level)

    def hit_rate(self):
        """Fraction of PE requests hitting in either cache level (Fig. 12)."""
        total = self.total_requests()
        if not total:
            return 0.0
        hits = sum(bank.stats.cache_hits for bank in self.private_banks)
        # Shared-level hits also count, expressed against PE requests.
        hits += sum(bank.stats.cache_hits for bank in self.shared_banks)
        return min(1.0, hits / total)

    def stall_breakdown(self):
        keys = ("stall_mshr", "stall_subentry", "stall_downstream",
                "stall_response_port")
        return {
            key: sum(getattr(bank.stats, key) for bank in self.banks)
            for key in keys
        }


def build_hierarchy(engine, mem, design, scale=1.0, cache_scale=None,
                    floorplan=None, queue_depth=8):
    """Build the memory hierarchy for *design* on *mem*.

    ``scale`` shrinks the paper-size MSHR/subentry structures and
    ``cache_scale`` the cache arrays for simulator-scale graphs (see
    DESIGN.md Section 5).
    """
    return MemoryHierarchy(engine, mem, design, scale=scale,
                           cache_scale=cache_scale, floorplan=floorplan,
                           queue_depth=queue_depth)
