"""Subentry buffer: per-miss request state, stored as linked rows.

Each MSHR owns a linked chain of fixed-size rows; each row slot (a
*subentry*) records one pending request (its ID, requester port, and
byte offset within the line).  Rows are allocated from one free pool,
so the total number of outstanding requests a bank can absorb is
``n_rows * row_size`` regardless of how they distribute over lines --
this is what lets a MOMS coalesce hundreds of requests onto a single
in-flight DRAM line at a fraction of the cost of a cache array.
"""

from dataclasses import dataclass


@dataclass
class SubentryStats:
    appends: int = 0
    overflows: int = 0
    rows_allocated: int = 0
    peak_rows: int = 0
    peak_entries: int = 0

    def as_dict(self):
        """JSON-safe snapshot (telemetry / report export)."""
        return {
            "appends": self.appends,
            "overflows": self.overflows,
            "rows_allocated": self.rows_allocated,
            "peak_rows": self.peak_rows,
            "peak_entries": self.peak_entries,
        }


class SubentryStore:
    """A pool of linked rows of subentries."""

    def __init__(self, total_subentries, row_size=4):
        if row_size < 1:
            raise ValueError("row size must be >= 1")
        if total_subentries < row_size:
            raise ValueError("need at least one row of subentries")
        self.row_size = row_size
        self.n_rows = total_subentries // row_size
        self.capacity = self.n_rows * row_size
        self._free_rows = self.n_rows
        self._entries_live = 0
        self.stats = SubentryStats()

    def new_chain(self):
        """Start an empty chain (no rows allocated yet)."""
        return []

    def append(self, chain, item):
        """Add *item* to *chain*; False if a new row is needed but none free.

        The chain is a list of rows (lists).  A failed append leaves the
        chain unchanged; the bank stalls and retries.
        """
        if chain and len(chain[-1]) < self.row_size:
            chain[-1].append(item)
        else:
            if self._free_rows == 0:
                self.stats.overflows += 1
                return False
            self._free_rows -= 1
            self.stats.rows_allocated += 1
            chain.append([item])
            rows_in_use = self.n_rows - self._free_rows
            if rows_in_use > self.stats.peak_rows:
                self.stats.peak_rows = rows_in_use
        self._entries_live += 1
        self.stats.appends += 1
        if self._entries_live > self.stats.peak_entries:
            self.stats.peak_entries = self._entries_live
        return True

    def free_chain(self, chain):
        """Return all of *chain*'s rows to the pool after draining."""
        self._free_rows += len(chain)
        self._entries_live -= sum(len(row) for row in chain)
        chain.clear()

    @staticmethod
    def chain_items(chain):
        """Flat iteration over a chain's subentries, oldest first."""
        for row in chain:
            yield from row

    @staticmethod
    def chain_length(chain):
        return sum(len(row) for row in chain)

    @property
    def free_rows(self):
        return self._free_rows

    @property
    def entries_live(self):
        return self._entries_live

    @property
    def load_factor(self):
        return 1.0 - self._free_rows / self.n_rows
