"""Subentry buffer: per-miss request state, stored as linked rows.

Each MSHR owns a linked chain of fixed-size rows; each row slot (a
*subentry*) records one pending request (its ID, requester port, and
byte offset within the line).  Rows are allocated from one free pool,
so the total number of outstanding requests a bank can absorb is
``n_rows * row_size`` regardless of how they distribute over lines --
this is what lets a MOMS coalesce hundreds of requests onto a single
in-flight DRAM line at a fraction of the cost of a cache array.
"""

from dataclasses import dataclass


@dataclass
class SubentryStats:
    appends: int = 0
    overflows: int = 0
    rows_allocated: int = 0
    peak_rows: int = 0
    peak_entries: int = 0

    def as_dict(self):
        """JSON-safe snapshot (telemetry / report export)."""
        return {
            "appends": self.appends,
            "overflows": self.overflows,
            "rows_allocated": self.rows_allocated,
            "peak_rows": self.peak_rows,
            "peak_entries": self.peak_entries,
        }


class ColumnarChain:
    """One MSHR's pending subentries as parallel field columns.

    The vector-kernel representation of a chain: the same (req_id,
    port, offset, size) subentries, but stored as four flat lists so a
    drain reads them column-wise (and can turn the offsets into a
    response-address array with one numpy add) instead of unpacking one
    tuple per cycle.  Row accounting -- the architectural free-pool
    resource -- is a single counter: a chain of ``n`` subentries holds
    exactly ``ceil(n / row_size)`` rows, the same number the linked
    list-of-rows layout allocates.
    """

    __slots__ = ("req_id", "port", "offset", "size", "rows")

    def __init__(self):
        self.req_id = []
        self.port = []
        self.offset = []
        self.size = []
        self.rows = 0

    def __len__(self):
        return len(self.req_id)


class SubentryStore:
    """A pool of linked rows of subentries.

    ``columnar=True`` (the vector kernel mode) swaps the chain layout
    from lists-of-row-lists of tuples to :class:`ColumnarChain` field
    columns; allocation accounting, overflow behaviour, and statistics
    are identical either way.
    """

    def __init__(self, total_subentries, row_size=4, columnar=False):
        if row_size < 1:
            raise ValueError("row size must be >= 1")
        if total_subentries < row_size:
            raise ValueError("need at least one row of subentries")
        self.row_size = row_size
        self.n_rows = total_subentries // row_size
        self.capacity = self.n_rows * row_size
        self.columnar = columnar
        self._free_rows = self.n_rows
        self._entries_live = 0
        self.stats = SubentryStats()

    def new_chain(self):
        """Start an empty chain (no rows allocated yet)."""
        return ColumnarChain() if self.columnar else []

    def append(self, chain, item):
        """Add *item* to *chain*; False if a new row is needed but none free.

        A failed append leaves the chain unchanged; the bank stalls and
        retries.
        """
        if self.columnar:
            return self._append_columnar(chain, item)
        if chain and len(chain[-1]) < self.row_size:
            chain[-1].append(item)
        else:
            if self._free_rows == 0:
                self.stats.overflows += 1
                return False
            self._free_rows -= 1
            self.stats.rows_allocated += 1
            chain.append([item])
            rows_in_use = self.n_rows - self._free_rows
            if rows_in_use > self.stats.peak_rows:
                self.stats.peak_rows = rows_in_use
        self._entries_live += 1
        self.stats.appends += 1
        if self._entries_live > self.stats.peak_entries:
            self.stats.peak_entries = self._entries_live
        return True

    def _append_columnar(self, chain, item):
        """Columnar :meth:`append`: same accounting, field columns."""
        if len(chain.req_id) == chain.rows * self.row_size:
            # The current row (if any) is full: a new one is needed.
            if self._free_rows == 0:
                self.stats.overflows += 1
                return False
            self._free_rows -= 1
            self.stats.rows_allocated += 1
            chain.rows += 1
            rows_in_use = self.n_rows - self._free_rows
            if rows_in_use > self.stats.peak_rows:
                self.stats.peak_rows = rows_in_use
        req_id, port, offset, size = item
        chain.req_id.append(req_id)
        chain.port.append(port)
        chain.offset.append(offset)
        chain.size.append(size)
        self._entries_live += 1
        self.stats.appends += 1
        if self._entries_live > self.stats.peak_entries:
            self.stats.peak_entries = self._entries_live
        return True

    def free_chain(self, chain):
        """Return all of *chain*'s rows to the pool after draining."""
        if self.columnar:
            self._free_rows += chain.rows
            self._entries_live -= len(chain.req_id)
            chain.req_id.clear()
            chain.port.clear()
            chain.offset.clear()
            chain.size.clear()
            chain.rows = 0
            return
        self._free_rows += len(chain)
        self._entries_live -= sum(len(row) for row in chain)
        chain.clear()

    @staticmethod
    def chain_items(chain):
        """Flat iteration over a chain's subentries, oldest first."""
        if isinstance(chain, ColumnarChain):
            yield from zip(chain.req_id, chain.port, chain.offset,
                           chain.size)
            return
        for row in chain:
            yield from row

    @staticmethod
    def chain_length(chain):
        if isinstance(chain, ColumnarChain):
            return len(chain.req_id)
        return sum(len(row) for row in chain)

    @property
    def free_rows(self):
        return self._free_rows

    @property
    def entries_live(self):
        return self._entries_live

    @property
    def load_factor(self):
        return 1.0 - self._free_rows / self.n_rows
