"""The MOMS bank pipeline.

One bank owns an (optional) cache array, an MSHR file, and a subentry
store.  Requests and responses *share a single pipeline slot per
cycle* -- the contention the paper analyses in Section V-E: a bank that
is busy serving the subentries of a returned line cannot accept new
requests that cycle.

Request path:  probe cache -> hit: respond.  Miss -> MSHR lookup ->
secondary miss: append a subentry (no DRAM traffic -- throughput-wise
as good as a hit).  Primary miss: allocate an MSHR, append the first
subentry, and issue one line request downstream.  Any structural
shortage (MSHR insert failure, no free subentry row, downstream full,
response port full) stalls the head request; nothing is dropped.

Response path: on line return, free the MSHR, fill the cache (if any),
then serve the pending subentries one per cycle.

The bank moves tokens exclusively through the channel *fields API*
(``front_request`` / ``push_response`` / ``pop_line``), so it works
identically over plain object channels (pooled tokens) and the
struct-of-arrays PE ports of the private and two-level hierarchies.
All backpressure stalls arm one-shot space wakes on the specific full
channel instead of subscribing statically, so a draining response port
no longer wakes a bank with nothing to send.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CacheArray
from repro.sim.kernels import kernels_mode
from repro.core.mshr import AssociativeMshrFile, CuckooMshrFile
from repro.core.subentry import SubentryStore
from repro.sim import Component

# Outcomes of the request pipeline stage (see MomsBank.tick):
_PROGRESS = "progress"  # head request completed
_SLEEP = "sleep"  # stalled without touching architectural state
_RETRY = "retry"  # stalled after a cuckoo insert mutated PRNG/table state


@dataclass
class BankParams:
    """Structural parameters of one bank."""

    n_mshrs: int = 4096
    n_subentries: int = 32768
    cache_lines: int = 4096
    cache_assoc: int = 1
    line_bytes: int = 64
    subentry_row_size: int = 4
    mshr_ways: int = 4
    mshr_max_kicks: int = 16
    associative_mshrs: bool = False  # traditional-cache mode
    subentries_per_mshr: int = 0  # 0 = unlimited (MOMS); 8 for traditional

    def build_mshr_file(self, seed=1):
        if self.associative_mshrs:
            return AssociativeMshrFile(self.n_mshrs)
        return CuckooMshrFile(
            self.n_mshrs,
            n_ways=self.mshr_ways,
            max_kicks=self.mshr_max_kicks,
            seed=seed,
        )


@dataclass
class BankStats:
    requests: int = 0
    cache_hits: int = 0
    secondary_misses: int = 0
    primary_misses: int = 0
    responses: int = 0
    lines_returned: int = 0
    busy_cycles: int = 0
    stall_mshr: int = 0
    stall_subentry: int = 0
    stall_downstream: int = 0
    stall_response_port: int = 0

    @property
    def hit_rate(self):
        """Cache-array hit rate (the x-axis of Fig. 12)."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def no_dram_fraction(self):
        """Share of requests served without a new DRAM line (hits + secondary)."""
        if not self.requests:
            return 0.0
        return (self.cache_hits + self.secondary_misses) / self.requests


class MomsBank(Component):
    """A single bank of a miss-optimized memory system.

    ``req_in`` receives :class:`~repro.core.messages.MomsRequest`;
    ``resp_out`` emits :class:`~repro.core.messages.MomsResponse`.
    ``line_in`` receives returned lines (objects with ``addr`` and
    ``data``) from DRAM or from a next-level MOMS.  ``downstream`` is a
    strategy with ``can_accept(line_addr)`` / ``issue(line_addr)`` used
    to request missing lines.
    """

    demand_driven = True
    # Opt-in hooks; class attributes so the unchecked path pays one
    # "is None" test per event (see repro.faults).
    _ledger = None
    _fault = None
    # Opt-in telemetry collector (repro.telemetry), same gating.
    _tele = None
    # Opt-in span tracer (repro.tracing), same gating: one "is None"
    # test per request outcome / drain / replay when unset.
    _trace = None

    def __init__(self, params, req_in, resp_out, line_in, downstream,
                 store, name="bank", seed=1, kernels=None):
        self.params = params
        # Kernel mode is resolved at construction (like the engine kind):
        # 'vector' stores drains/subentries column-wise and batch-hashes
        # queued lines; 'scalar' keeps the reference per-token loops.
        self._vec = (kernels or kernels_mode()) == "vector"
        self.req_in = req_in
        self.resp_out = resp_out
        self.line_in = line_in
        self.downstream = downstream
        self.store = store
        self.name = name
        # Wake on new requests and returned lines.  Backpressure wakes
        # (response port, downstream request port) are one-shots armed
        # at the stall site; MSHR/subentry stalls need no arming at
        # all: those structures only free during this bank's own
        # drains, which line_in wakes.
        req_in.subscribe_data(self)
        line_in.subscribe_data(self)
        self.mshrs = params.build_mshr_file(seed=seed)
        # Cuckoo inserts mutate PRNG/table state even when they fail;
        # associative inserts are pure functions of occupancy.
        self._stateful_mshrs = not params.associative_mshrs
        self.subentries = SubentryStore(
            params.n_subentries, row_size=params.subentry_row_size,
            columnar=self._vec,
        )
        # Cuckoo slot priming only applies to the hashed file.
        self._vec_prime = self._vec and not params.associative_mshrs
        self._drain_step = self._drain_one_vec if self._vec \
            else self._drain_one
        # Bind the concrete append once: SubentryStore.append dispatches
        # on self.columnar per call, and _handle_request appends on
        # every secondary and primary miss.
        self._sub_append = (self.subentries._append_columnar if self._vec
                            else self.subentries.append)
        self.cache = CacheArray(
            params.cache_lines,
            assoc=params.cache_assoc,
            line_bytes=params.line_bytes,
        )
        self.stats = BankStats()
        self._drain_chain = None
        self._drain_items = None
        self._drain_addrs = None
        self._drain_index = 0
        self._drain_data = None
        self._drain_base = 0

    # -- simulation -------------------------------------------------------

    def tick(self, engine):
        # Hot path: direct occupancy-int checks avoid method-call
        # overhead on the (frequent) idle cycles.
        if self._tele is not None:
            self._tele.bank_before_tick(self, engine.now)
        if self._drain_items is not None:
            self._drain_step()
            self.stats.busy_cycles += 1
            if self._drain_items is not None:
                # Mid-drain: keep stepping while the port has room; a
                # port that is full (whether this cycle's push filled
                # it or _drain_one stalled on it) hands the restart to
                # a one-shot space wake.
                if self.resp_out.can_push():
                    engine.wake(self)
                else:
                    self.resp_out.request_space_wake(self)
            elif self.line_in._visible or self.req_in._visible:
                # Drain finished with backlog that arrived (and fired
                # its one-shot wakes) while the pipeline was busy.
                engine.wake(self)
            return
        if self.line_in._visible:
            self._begin_drain(*self.line_in.pop_line())
            self.stats.busy_cycles += 1
            if self.resp_out.can_push():
                engine.wake(self)
            else:
                # Fresh drain into a full response port: the port's
                # next space commit must restart the drain.
                self.resp_out.request_space_wake(self)
            return
        if self.req_in._visible:
            outcome = self._handle_request()
            if outcome is _PROGRESS:
                self.stats.busy_cycles += 1
            elif outcome is _RETRY:
                # A cuckoo insert ran and failed (or succeeded and was
                # rolled back for a missing subentry row): the victim-way
                # generator and possibly the table layout advanced, so
                # the retry cadence is architecturally visible.  Retry
                # every cycle, exactly like the all-tick engine, or a
                # different attempt would succeed and change the cycle
                # results.
                engine.wake(self)
            # else _SLEEP: the stall touched no architectural state, and
            # every event that can unblock it fires a wake -- line_in
            # data (frees MSHRs, subentry rows, and fills the cache) or
            # the one-shot armed on the full channel at the stall site.

    def step_n(self, engine, budget):
        """Fused-tick protocol (see ``repro.sim.Component.step_n``).

        The only multi-cycle run a bank performs under a stable
        singleton wake set is the cuckoo retry spin: the head request
        re-attempting the same failing MSHR insert every cycle, each
        tick re-arming ``engine.wake(self)``.  Such a cycle's exact
        effects -- cache probe miss, MSHR lookup miss, the failing
        insert's PRNG/stat advance, ``stall_mshr`` -- are replicated in
        bulk via :meth:`CuckooMshrFile.failing_insert_run`; every other
        bank state returns 0 and stays on real per-cycle ticks.
        """
        if (self._tele is not None or self._trace is not None
                or self._ledger is not None or self._fault is not None):
            return 0
        if self._drain_items is not None or self.line_in._visible:
            return 0
        req_in = self.req_in
        if not req_in._visible or not self._stateful_mshrs:
            return 0
        mshrs = self.mshrs
        if mshrs._fault is not None:
            return 0
        addr = req_in.front_request()[0]
        line_addr = addr // self.params.line_bytes
        if self.cache.contains(line_addr) or mshrs.contains(line_addr):
            return 0
        if not self.downstream.can_accept(line_addr):
            return 0
        m = mshrs.failing_insert_run(line_addr, budget, vec=self._vec)
        if not m:
            return 0
        # Bulk form of m identical retry ticks: probe miss (counted
        # only when a cache array exists -- CacheArray.probe gates its
        # stats on presence), lookup miss, MSHR stall.  busy_cycles
        # stays untouched, exactly like per-cycle _RETRY ticks.
        if self.cache.present:
            self.cache.stats.probes += m
        mshrs.stats.lookups += m
        self.stats.stall_mshr += m
        return m

    def is_idle(self):
        return (
            self._drain_items is None
            and self.mshrs.occupancy == 0
            and not self.req_in.pending
            and not self.line_in.pending
        )

    @property
    def outstanding_misses(self):
        """Lines currently in flight to memory."""
        return self.mshrs.occupancy

    # -- response path ----------------------------------------------------

    def _begin_drain(self, addr, data):
        line_addr = addr // self.params.line_bytes
        if self._ledger is not None:
            # The returned line must match an issued in-flight miss;
            # verified before mshrs.remove can KeyError on corruption.
            self._ledger.retire(("bank", self.name), line_addr)
        if self._tele is not None:
            self._tele.miss_return(self.name, line_addr, self._engine.now)
        entry = self.mshrs.remove(line_addr)
        self.cache.fill(line_addr)
        self.stats.lines_returned += 1
        if self._trace is not None:
            self._trace.bank_drain(self.name, line_addr,
                                   entry.subentry_count, self._engine.now)
        chain = entry.subentry_head
        self._drain_chain = chain
        if self._vec:
            # Columnar drain: the chain's field columns are served in
            # place, and the per-response addresses fall out of one
            # numpy add over the offset column (worth it for the long
            # coalesced chains that are the paper's whole point; tiny
            # chains stay on the list comprehension).
            offsets = chain.offset
            if len(offsets) >= 16:
                addrs = (addr + np.asarray(offsets, dtype=np.int64)).tolist()
            else:
                addrs = [addr + offset for offset in offsets]
            self._drain_addrs = addrs
            self._drain_items = chain.req_id
        else:
            self._drain_items = [
                item for row in chain for item in row
            ]
        self._drain_index = 0
        self._drain_data = data
        self._drain_base = addr

    def _drain_one(self):
        resp_out = self.resp_out
        if not resp_out.can_push():
            self.stats.stall_response_port += 1
            resp_out.request_space_wake(self)
            return
        items = self._drain_items
        index = self._drain_index
        req_id, port, offset, size = items[index]
        if self._trace is not None:
            # Pre-corruption id: the span keeps matching what the PE
            # issued even under the mutation-smoke fault.
            self._trace.bank_replay(
                self.name, req_id, port,
                self._drain_base // self.params.line_bytes,
                self._engine.now,
            )
        if self._fault is not None:
            # Mutation smoke: deterministically corrupt one response ID
            # so tests can prove the PE-side ledger catches it.
            req_id = self._fault.corrupt_moms_token(req_id)
        data = self._drain_data
        resp_out.push_response(
            req_id, self._drain_base + offset, data[offset:offset + size],
            port,
        )
        self.stats.responses += 1
        self._drain_index = index + 1
        if self._drain_index == len(items):
            self.subentries.free_chain(self._drain_chain)
            self._drain_chain = None
            self._drain_items = None
            self._drain_data = None

    def _drain_one_vec(self):
        """Columnar :meth:`_drain_one`: serve one subentry per cycle
        straight from the chain's field columns."""
        resp_out = self.resp_out
        if not resp_out.can_push():
            self.stats.stall_response_port += 1
            resp_out.request_space_wake(self)
            return
        chain = self._drain_chain
        index = self._drain_index
        req_id = chain.req_id[index]
        if self._trace is not None:
            # Pre-corruption id, same subentry order as _drain_one, so
            # vector and scalar kernels emit identical span events.
            self._trace.bank_replay(
                self.name, req_id, chain.port[index],
                self._drain_base // self.params.line_bytes,
                self._engine.now,
            )
        if self._fault is not None:
            # Mutation smoke: deterministically corrupt one response ID
            # so tests can prove the PE-side ledger catches it.
            req_id = self._fault.corrupt_moms_token(req_id)
        offset = chain.offset[index]
        data = self._drain_data
        resp_out.push_response(
            req_id, self._drain_addrs[index],
            data[offset:offset + chain.size[index]], chain.port[index],
        )
        self.stats.responses += 1
        self._drain_index = index + 1
        if self._drain_index == len(chain.req_id):
            self.subentries.free_chain(chain)
            self._drain_chain = None
            self._drain_items = None
            self._drain_addrs = None
            self._drain_data = None

    # -- request path -----------------------------------------------------

    def _prime_queue_slots(self):
        """Batch-hash every queued request's line (vector kernel).

        When the head request's line has no memoized cuckoo slots yet,
        the lines of *all* visible queued requests are hashed in one
        numpy splitmix64 pass (see ``CuckooMshrFile.prime_slots``), so
        the per-request lookups that follow are all memo hits.  Reads
        the request ring directly -- SoA address column when the port
        is a :class:`~repro.sim.SoaChannel`, token objects otherwise --
        and touches no architectural state.
        """
        req_in = self.req_in
        head = req_in._head
        mask = req_in._mask
        n = req_in._visible
        line_bytes = self.params.line_bytes
        col = getattr(req_in, "_col_addr", None)
        if col is not None:
            lines = {col[(head + i) & mask] // line_bytes
                     for i in range(n)}
        else:
            ring = req_in._ring
            lines = {ring[(head + i) & mask].addr // line_bytes
                     for i in range(n)}
        self.mshrs.prime_slots(lines)

    def _handle_request(self):
        """Process the head request; returns one of the outcome codes.

        ``_SLEEP`` stalls happened before any stateful structure was
        touched (response port full, subentry row shortage, downstream
        full, associative MSHR file full): retrying them later gives the
        same answer, so the bank may sleep until the stalled channel's
        one-shot wake (or a line return) fires.  ``_RETRY`` stalls ran
        a cuckoo insert first and must be retried every cycle to keep
        the victim-way generator sequence identical to the all-tick
        engine.
        """
        stats = self.stats
        req_in = self.req_in
        addr, size, req_id, port = req_in.front_request()
        line_bytes = self.params.line_bytes
        line_addr = addr // line_bytes
        offset = addr - line_addr * line_bytes

        if self.cache.probe(line_addr):
            resp_out = self.resp_out
            if not resp_out.can_push():
                stats.stall_response_port += 1
                resp_out.request_space_wake(self)
                return _SLEEP
            req_in.drop()
            resp_out.push_response(
                req_id, addr, self.store.read_bytes(addr, size), port
            )
            stats.requests += 1
            stats.cache_hits += 1
            stats.responses += 1
            if self._trace is not None:
                self._trace.bank_hit(self.name, req_id, port, line_addr,
                                     self._engine.now)
            return _PROGRESS

        # Batch-hash the queued lines only when the backlog is deep: the
        # splitmix64 batch then covers many future memo hits, while a
        # shallow queue would pay the ring walk for one or two lines
        # that the per-line memo hashes just as fast.
        if self._vec_prime and req_in._visible >= 16 \
                and line_addr not in self.mshrs._slot_cache:
            self._prime_queue_slots()
        subentry = (req_id, port, offset, size)
        entry = self.mshrs.lookup(line_addr)
        if entry is not None:
            limit = self.params.subentries_per_mshr
            if limit and entry.subentry_count >= limit:
                stats.stall_subentry += 1
                return _SLEEP
            if not self._sub_append(entry.subentry_head, subentry):
                stats.stall_subentry += 1
                return _SLEEP
            entry.subentry_count += 1
            req_in.drop()
            stats.requests += 1
            stats.secondary_misses += 1
            if self._trace is not None:
                self._trace.bank_merge(self.name, req_id, port, line_addr,
                                       self._engine.now)
            return _PROGRESS

        # Primary miss: all three structures must have room before any
        # side effect happens, so a stalled request retries cleanly.
        downstream = self.downstream
        if not downstream.can_accept(line_addr):
            stats.stall_downstream += 1
            downstream.request_wake(line_addr, self)
            return _SLEEP
        new_entry = self.mshrs.insert(line_addr)
        if new_entry is None:
            stats.stall_mshr += 1
            return _RETRY if self._stateful_mshrs else _SLEEP
        chain = self.subentries.new_chain()
        if not self._sub_append(chain, subentry):
            self.mshrs.remove(line_addr)
            stats.stall_subentry += 1
            return _RETRY if self._stateful_mshrs else _SLEEP
        new_entry.subentry_head = chain
        new_entry.subentry_count = 1
        downstream.issue(line_addr)
        if self._ledger is not None:
            self._ledger.issue(("bank", self.name), line_addr)
        if self._tele is not None:
            self._tele.miss_issue(self.name, line_addr, self._engine.now)
        if self._trace is not None:
            self._trace.bank_alloc(self.name, req_id, port, line_addr,
                                   self._engine.now)
        req_in.drop()
        stats.requests += 1
        stats.primary_misses += 1
        return _PROGRESS
