"""Request/response tokens exchanged between PEs and memory systems."""

from dataclasses import dataclass


@dataclass(slots=True)
class MomsRequest:
    """A short irregular read (a node value, or a full line at L2).

    ``req_id`` is opaque to the memory system and returned verbatim --
    the PE uses it to recover the suspended edge state (Fig. 10); for
    unweighted graphs it *is* the destination-node offset.  ``port``
    identifies the requester for response routing.
    """

    addr: int
    size: int
    req_id: object = None
    port: int = 0


@dataclass(slots=True)
class MomsResponse:
    """Data for one request: the ``size`` bytes at ``addr``."""

    req_id: object
    addr: int
    data: object  # numpy uint8 slice of length `size`
    port: int = 0
