"""Request/response tokens exchanged between PEs and memory systems,
plus the freelists that let steady-state simulation reuse them.

Every pooled class carries two class attributes:

* ``_pool`` -- its freelist (a plain list used as a LIFO), or ``None``
  when pooling is disabled (``REPRO_POOL=0``).  Consumers recycle a
  token with ``type(token)._pool.append(token)`` -- no imports needed,
  which is also how :meth:`repro.sim.channel.Channel.pop_line` can
  recycle whichever line-fill type it received.
* ``_fresh`` -- how many objects were constructed because the freelist
  was empty.  In steady state this stops growing: the in-flight
  population circulates through the pools and per-cycle allocations
  drop to zero.  ``pool_stats()`` exposes the counters so benchmarks
  can report allocations per simulated cycle.

Pool lifecycle rule (see DESIGN.md 6.4): every token has exactly one
producer-side acquire and one consumer-side release, both behind the
channel fields API or a component's delivery loop; a released token
must never be reachable from simulation state.  Tokens constructed
directly (tests, cold paths) may enter a pool on release -- that is
harmless, they just join the circulating population.

This module also binds the token classes and freelists into
:mod:`repro.sim.channel` (which cannot import them directly without a
cycle: ``repro.core.bank`` imports ``repro.sim``).
"""

import os
from dataclasses import dataclass

POOLING_ENABLED = os.environ.get("REPRO_POOL", "1").lower() \
    not in ("0", "off", "false", "no")


@dataclass(slots=True)
class MomsRequest:
    """A short irregular read (a node value, or a full line at L2).

    ``req_id`` is opaque to the memory system and returned verbatim --
    the PE uses it to recover the suspended edge state (Fig. 10); for
    unweighted graphs it *is* the destination-node offset.  ``port``
    identifies the requester for response routing.
    """

    addr: int
    size: int
    req_id: object = None
    port: int = 0


@dataclass(slots=True)
class MomsResponse:
    """Data for one request: the ``size`` bytes at ``addr``."""

    req_id: object
    addr: int
    data: object  # numpy uint8 slice of length `size`
    port: int = 0


_REGISTERED = []


def register_pool(cls):
    """Give *cls* a freelist (honouring REPRO_POOL) and track it.

    Used by this module for the MOMS tokens and by
    :mod:`repro.mem.dram` for its request/response beats.
    """
    cls._pool = [] if POOLING_ENABLED else None
    cls._fresh = 0
    _REGISTERED.append(cls)
    return cls


register_pool(MomsRequest)
register_pool(MomsResponse)


def pool_stats():
    """Per-class freelist counters: fresh constructions and pool depth."""
    return {
        cls.__name__: {
            "fresh": cls._fresh,
            "pooled": len(cls._pool) if cls._pool is not None else 0,
        }
        for cls in _REGISTERED
    }


def fresh_allocations():
    """Total pool-missing token constructions across all pooled classes."""
    return sum(cls._fresh for cls in _REGISTERED)


def reset_pool_counters():
    """Zero the fresh-construction counters (benchmark bracketing)."""
    for cls in _REGISTERED:
        cls._fresh = 0


def _bind_channel_module():
    # repro.sim.channel's object-mode fields API recycles these exact
    # classes but cannot import this module at its own import time; we
    # are imported strictly after repro.sim, so inject the bindings.
    from repro.sim import channel as _channel

    _channel._MomsRequest = MomsRequest
    _channel._MomsResponse = MomsResponse
    _channel._request_pool = MomsRequest._pool
    _channel._response_pool = MomsResponse._pool


_bind_channel_module()
