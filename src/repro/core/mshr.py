"""Miss status holding register (MSHR) files.

Two implementations:

* :class:`CuckooMshrFile` -- the paper's RAM-backed file: thousands of
  entries, looked up by cuckoo hashing over d ways instead of a fully
  associative CAM, so it maps onto ordinary BRAM.  An insertion can
  fail after a bounded kick chain; the bank then stalls and retries,
  which is the paper's behaviour under extreme occupancy.
* :class:`AssociativeMshrFile` -- the classic small fully-associative
  file (16 entries in the paper's traditional-cache baseline); misses
  block as soon as it fills, which is exactly why traditional
  non-blocking caches throttle irregular workloads.
"""

from dataclasses import dataclass, field

from repro.sim.kernels import lcg_jump, splitmix64_slots, victim_ways_batch


@dataclass(slots=True)
class MshrEntry:
    """State of one outstanding cache line."""

    line_addr: int
    subentry_head: object = None
    subentry_count: int = 0


@dataclass
class MshrStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    insert_failures: int = 0
    kicks: int = 0
    peak_occupancy: int = 0

    def as_dict(self):
        """JSON-safe snapshot (telemetry / report export)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "inserts": self.inserts,
            "insert_failures": self.insert_failures,
            "kicks": self.kicks,
            "peak_occupancy": self.peak_occupancy,
        }


class CuckooMshrFile:
    """d-way cuckoo hash table of MSHR entries, BRAM-style.

    ``capacity`` slots are split into ``n_ways`` tables.  Lookup probes
    one slot per way; insert kicks resident entries along a bounded
    chain and reports failure (-> pipeline stall) if the chain exceeds
    ``max_kicks``, mirroring the FPGA implementation in the paper's
    prior work.
    """

    # Fault-injection hook (repro.faults.plan.FaultState); class
    # attribute so unfaulted files pay one "is None" test per insert.
    _fault = None

    def __init__(self, capacity, n_ways=4, max_kicks=16, seed=1):
        if capacity < n_ways:
            raise ValueError("capacity must be at least n_ways")
        self.n_ways = n_ways
        self.way_size = max(1, capacity // n_ways)
        self.capacity = self.way_size * n_ways
        self.max_kicks = max_kicks
        self._tables = [[None] * self.way_size for _ in range(n_ways)]
        # Odd multipliers for multiply-shift hashing, seeded deterministically.
        rng_state = seed * 2654435761 % (1 << 32) or 1
        self._multipliers = []
        for _ in range(n_ways):
            rng_state = (rng_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            self._multipliers.append((rng_state >> 16) | 1)
        self._victim_state = rng_state ^ 0x9E3779B97F4A7C15
        self.occupancy = 0
        self.stats = MshrStats()
        # Hash memo: line addresses repeat heavily (lookup + insert +
        # remove all probe the same slots, and hot lines recur across
        # the run), so the splitmix64 chain is worth caching.  Bounded
        # by the number of distinct lines touched.
        self._slot_cache = {}

    def _slots(self, line_addr):
        """The candidate slot per way for *line_addr* (cached)."""
        slots = self._slot_cache.get(line_addr)
        if slots is None:
            # splitmix64-style finalizer: full avalanche even for small,
            # sequential line addresses (a plain multiply stays too
            # linear and caps the achievable cuckoo load factor).
            mask = (1 << 64) - 1
            way_size = self.way_size
            out = []
            for multiplier in self._multipliers:
                h = (line_addr + multiplier) & mask
                h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & mask
                h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & mask
                h ^= h >> 31
                out.append(h % way_size)
            slots = tuple(out)
            self._slot_cache[line_addr] = slots
        return slots

    def _slot(self, way, line_addr):
        return self._slots(line_addr)[way]

    def prime_slots(self, line_addrs):
        """Batch-fill the slot memo for *line_addrs* (vector kernel).

        One numpy splitmix64 pass computes the candidate slots of every
        yet-unhashed line at once; subsequent ``_slots`` calls are memo
        hits.  Purely a precomputation -- no stats, no table state --
        so scalar and vector runs stay state-identical.
        """
        cache = self._slot_cache
        fresh = [la for la in line_addrs if la not in cache]
        if not fresh:
            return
        rows = splitmix64_slots(
            fresh, self._multipliers, self.way_size
        ).tolist()
        for line_addr, row in zip(fresh, rows):
            cache[line_addr] = tuple(row)

    def lookup(self, line_addr):
        """Return the entry for *line_addr* or None."""
        self.stats.lookups += 1
        for table, slot in zip(self._tables, self._slots(line_addr)):
            entry = table[slot]
            if entry is not None and entry.line_addr == line_addr:
                self.stats.hits += 1
                return entry
        return None

    def insert(self, line_addr):
        """Allocate an entry; returns it, or None on cuckoo failure.

        The caller must have checked that no entry for *line_addr*
        exists (a lookup always precedes insertion in the bank pipeline).
        """
        if self._fault is not None and self._fault.mshr_blocked():
            # Forced-full window: report failure without touching table
            # or PRNG state, so the retry after the window behaves
            # exactly like a first attempt.
            self.stats.insert_failures += 1
            return None
        entry = MshrEntry(line_addr)
        carried = entry
        tables = self._tables
        path = []  # (way, slot) of every displacement, for exact unwind
        for kick in range(self.max_kicks + 1):
            # First look for any empty slot among the d candidate ways.
            slots = self._slots(carried.line_addr)
            placed = False
            for way, slot in enumerate(slots):
                if tables[way][slot] is None:
                    tables[way][slot] = carried
                    placed = True
                    break
            if placed:
                self.occupancy += 1
                self.stats.inserts += 1
                self.stats.kicks += kick
                if self.occupancy > self.stats.peak_occupancy:
                    self.stats.peak_occupancy = self.occupancy
                return entry
            # All full: displace a pseudo-randomly chosen victim way so
            # kick chains explore the table instead of looping.
            self._victim_state = (
                self._victim_state * 6364136223846793005 + 1442695040888963407
            ) % (1 << 64)
            way = (self._victim_state >> 33) % self.n_ways
            slot = slots[way]
            resident = tables[way][slot]
            tables[way][slot] = carried
            path.append((way, slot))
            carried = resident
        # Kick chain too long: unwind the displacements in reverse so the
        # table is exactly as before (hardware bounds speculative kicks
        # the same way).
        for way, slot in reversed(path):
            displaced = self._tables[way][slot]
            self._tables[way][slot] = carried
            carried = displaced
        assert carried is entry
        self.stats.insert_failures += 1
        return None

    def contains(self, line_addr):
        """Pure presence probe: no lookup/hit stats (fusion oracle).

        ``MomsBank.step_n`` must predict that a retry cycle's MSHR
        lookup would miss without bumping the counters the real,
        stats-replicated retries account for.
        """
        for table, slot in zip(self._tables, self._slots(line_addr)):
            entry = table[slot]
            if entry is not None and entry.line_addr == line_addr:
                return True
        return False

    def failing_insert_run(self, line_addr, budget, vec=False):
        """Commit up to *budget* consecutive failing inserts of *line_addr*.

        The fused-retry kernel behind ``MomsBank.step_n``: a bank
        stalled on cuckoo insert failure re-attempts the same insert
        every cycle, and each failing attempt leaves the table exactly
        as before (the exact unwind in :meth:`insert`), advancing only
        the victim PRNG by ``max_kicks + 1`` draws and
        ``insert_failures`` by one.  Consecutive attempts are *not*
        automatically failures -- a different victim-way draw can place
        the entry with the table unchanged -- so each attempt is
        dry-run against an overlay view of the table (displacements
        recorded as ``(way, slot) -> carried line address``, nothing
        touched until the attempt's verdict is known).  The run stops
        before the first attempt that would succeed and commits the k
        failing attempts in bulk: ``_victim_state`` jumped
        ``k * (max_kicks + 1)`` draws (one numpy ``lcg_batch`` pass
        when *vec*), ``insert_failures += k``.  Returns k; the caller
        replays the next, possibly succeeding, attempt on a real tick.
        """
        steps = self.max_kicks + 1
        tables = self._tables
        n_ways = self.n_ways
        mask = (1 << 64) - 1
        failures = 0
        state = self._victim_state
        committed = state
        placed = False
        if self.occupancy >= self.capacity:
            # Retry storm on a *full* table: no empty slot exists and
            # none can appear inside the silent window (removals only
            # happen on real drain ticks), so every attempt fails by
            # construction -- the kick chain just shuffles residents
            # and unwinds.  The whole run collapses to the PRNG
            # advance: budget * steps draws, jumped in O(log n) for
            # the vector kernels or replayed as the reference scalar
            # chain.
            failures = budget
            if vec:
                committed = lcg_jump(state, budget * steps)
            else:
                for _ in range(budget * steps):
                    state = (
                        state * 6364136223846793005
                        + 1442695040888963407
                    ) & mask
                committed = state
            self._victim_state = committed
            self.stats.insert_failures += failures
            return failures
        chunk = 4
        while failures < budget and not placed:
            if vec:
                # Chunked so a short run doesn't pay for budget*steps
                # draws up front; geometric growth keeps the numpy
                # setup cost proportional to the run actually found,
                # and each chunk reseeds from the last committed
                # state, so the draw sequence is identical.
                n_attempts = min(budget - failures, chunk)
                chunk = min(chunk * 2, 64)
                ways_seq, states = victim_ways_batch(
                    state, n_attempts * steps, n_ways
                )
            else:
                n_attempts = budget - failures
                ways_seq = None
            for attempt in range(n_attempts):
                carried_addr = line_addr
                view = {}
                base = attempt * steps
                for kick in range(steps):
                    slots = self._slots(carried_addr)
                    for way in range(n_ways):
                        if ((way, slots[way]) not in view
                                and tables[way][slots[way]] is None):
                            placed = True
                            break
                    if placed:
                        break
                    if ways_seq is not None:
                        way = ways_seq[base + kick]
                    else:
                        state = (
                            state * 6364136223846793005
                            + 1442695040888963407
                        ) & mask
                        way = (state >> 33) % n_ways
                    slot = slots[way]
                    occupant = view.get((way, slot))
                    if occupant is None:
                        occupant = tables[way][slot].line_addr
                    view[(way, slot)] = carried_addr
                    carried_addr = occupant
                if placed:
                    break
                failures += 1
                if ways_seq is not None:
                    committed = int(states[base + steps - 1])
                else:
                    committed = state
            state = committed
        if failures:
            self._victim_state = committed
            self.stats.insert_failures += failures
        return failures

    def remove(self, line_addr):
        """Free the entry for *line_addr* (line returned and drained)."""
        for table, slot in zip(self._tables, self._slots(line_addr)):
            entry = table[slot]
            if entry is not None and entry.line_addr == line_addr:
                table[slot] = None
                self.occupancy -= 1
                return entry
        raise KeyError(f"no MSHR for line {line_addr:#x}")

    @property
    def load_factor(self):
        return self.occupancy / self.capacity

    def entries(self):
        """All live entries (diagnostics / invariant checks)."""
        for table in self._tables:
            for entry in table:
                if entry is not None:
                    yield entry


class AssociativeMshrFile:
    """Small fully-associative MSHR file (traditional cache baseline)."""

    _fault = None  # see CuckooMshrFile._fault

    def __init__(self, capacity=16):
        if capacity < 1:
            raise ValueError("need at least one MSHR")
        self.capacity = capacity
        self._entries = {}
        self.stats = MshrStats()

    def lookup(self, line_addr):
        self.stats.lookups += 1
        entry = self._entries.get(line_addr)
        if entry is not None:
            self.stats.hits += 1
        return entry

    def insert(self, line_addr):
        """Allocate an entry, or None when the file is full (-> block)."""
        if self._fault is not None and self._fault.mshr_blocked():
            self.stats.insert_failures += 1
            return None
        if len(self._entries) >= self.capacity:
            self.stats.insert_failures += 1
            return None
        entry = MshrEntry(line_addr)
        self._entries[line_addr] = entry
        self.stats.inserts += 1
        if len(self._entries) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._entries)
        return entry

    def remove(self, line_addr):
        return self._entries.pop(line_addr)

    @property
    def occupancy(self):
        return len(self._entries)

    @property
    def load_factor(self):
        return len(self._entries) / self.capacity

    def entries(self):
        return iter(list(self._entries.values()))
