"""Miss-optimized memory systems (MOMS) -- the paper's core contribution.

A MOMS is an extreme non-blocking cache: instead of maximizing hits with
a large data array, it tracks tens of thousands of outstanding read
misses in RAM-backed, cuckoo-hashed MSHRs with a large subentry buffer,
so that every in-flight DRAM line can serve many pending requests
("secondary misses are as good as hits for throughput").  This package
provides the MSHR file, subentry store, optional cache arrays, the bank
pipeline that combines them, multi-bank assemblies with crossbars, the
traditional non-blocking cache baseline, and the shared / private /
two-level hierarchy compositions of paper Fig. 8.
"""

from repro.core.messages import MomsRequest, MomsResponse
from repro.core.mshr import AssociativeMshrFile, CuckooMshrFile, MshrEntry
from repro.core.subentry import SubentryStore
from repro.core.cache import CacheArray
from repro.core.bank import BankParams, MomsBank
from repro.core.hierarchy import (
    MemoryHierarchy,
    build_hierarchy,
)

__all__ = [
    "AssociativeMshrFile",
    "BankParams",
    "CacheArray",
    "CuckooMshrFile",
    "MemoryHierarchy",
    "MomsBank",
    "MomsRequest",
    "MomsResponse",
    "MshrEntry",
    "SubentryStore",
    "build_hierarchy",
]
