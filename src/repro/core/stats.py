"""Engine activity statistics: per-component tick/wake accounting.

The demand-driven engine (:mod:`repro.sim.engine`) counts how often
each component was woken and ticked; this module aggregates those
counters into scheduler-efficiency summaries -- per run, per component
class, and merged across the points of a sweep (the parallel sweep
runner returns one :class:`EngineActivity` per point and sums them).

The headline number is the *tick fraction*: ticks actually executed
divided by the ``cycles x components`` an all-tick engine would have
executed.  It is the demand-driven engine's saved work, and it is
purely a scheduling metric -- cycle results are bit-identical between
the two engines.
"""

from dataclasses import dataclass, field, fields

# Schema version of EngineActivity.as_dict() rows.  Bumped whenever a
# field is added/renamed so journaled rows written by other code
# versions are recognizable; from_dict() is tolerant in both
# directions (unknown keys are dropped, missing keys take defaults),
# which is what lets `--resume` reuse a journal across code changes.
# v3 added the macro-tick fusion counters (fused_runs, fused_cycles,
# fusion_abort_reasons).
ACTIVITY_SCHEMA_VERSION = 3


@dataclass
class EngineActivity:
    """Scheduler-efficiency counters for one run (or a merged sweep)."""

    cycles_simulated: int = 0
    cycles_skipped: int = 0
    component_ticks: int = 0
    component_wakes: int = 0
    # Sum over runs of cycles_simulated * n_components: the tick count
    # an all-tick engine would have executed.  Kept as a plain sum so
    # runs with different component counts merge correctly.
    all_tick_equivalent: int = 0
    runs: int = 0
    # Macro-tick fusion counters: fused runs issued, cycles covered by
    # them, and why fusion attempts were abandoned ({reason: count}).
    # Execution-strategy metadata, not architectural state -- always
    # present (explicit zeros when fusion is off or unsupported).
    fused_runs: int = 0
    fused_cycles: int = 0
    fusion_abort_reasons: dict = field(default_factory=dict)
    # Per-component-class {"count", "ticks", "wakes"} rows (see
    # component_breakdown); summed across merged runs.
    by_kind: dict = field(default_factory=dict)

    @classmethod
    def from_engine(cls, engine):
        """Snapshot the counters of one engine after a run."""
        by_kind = {
            entry.kind: {"count": entry.count, "ticks": entry.ticks,
                         "wakes": entry.wakes}
            for entry in component_breakdown(engine)
        }
        return cls(
            cycles_simulated=engine.cycles_simulated,
            cycles_skipped=engine.cycles_skipped,
            component_ticks=engine.component_ticks,
            component_wakes=engine.component_wakes,
            all_tick_equivalent=(
                engine.cycles_simulated * len(engine._components)
            ),
            runs=1,
            fused_runs=getattr(engine, "fused_runs", 0),
            fused_cycles=getattr(engine, "fused_cycles", 0),
            fusion_abort_reasons=dict(
                getattr(engine, "fusion_abort_reasons", {}) or {}
            ),
            by_kind=by_kind,
        )

    @classmethod
    def from_dict(cls, data):
        """Rebuild from :meth:`as_dict` output (e.g. across processes).

        Tolerant by design: keys this code version does not know
        (including the ``version`` marker itself, or fields added by a
        newer version) are ignored, and absent fields keep their
        defaults, so resumed journals survive schema drift.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def as_dict(self):
        return {
            "version": ACTIVITY_SCHEMA_VERSION,
            "cycles_simulated": self.cycles_simulated,
            "cycles_skipped": self.cycles_skipped,
            "component_ticks": self.component_ticks,
            "component_wakes": self.component_wakes,
            "all_tick_equivalent": self.all_tick_equivalent,
            "runs": self.runs,
            "fused_runs": self.fused_runs,
            "fused_cycles": self.fused_cycles,
            "mean_run_len": round(self.mean_run_len, 2),
            "fusion_abort_reasons": {
                reason: self.fusion_abort_reasons[reason]
                for reason in sorted(self.fusion_abort_reasons)
            },
            "by_kind": {kind: dict(row)
                        for kind, row in self.by_kind.items()},
        }

    def merge(self, other):
        """Accumulate *other* (an EngineActivity or its dict) in place."""
        if isinstance(other, dict):
            other = EngineActivity.from_dict(other)
        self.cycles_simulated += other.cycles_simulated
        self.cycles_skipped += other.cycles_skipped
        self.component_ticks += other.component_ticks
        self.component_wakes += other.component_wakes
        self.all_tick_equivalent += other.all_tick_equivalent
        self.runs += other.runs
        self.fused_runs += other.fused_runs
        self.fused_cycles += other.fused_cycles
        for reason, count in other.fusion_abort_reasons.items():
            self.fusion_abort_reasons[reason] = (
                self.fusion_abort_reasons.get(reason, 0) + count
            )
        for kind, row in other.by_kind.items():
            mine = self.by_kind.get(kind)
            if mine is None:
                self.by_kind[kind] = dict(row)
            else:
                for key, value in row.items():
                    mine[key] = mine.get(key, 0) + value
        return self

    @property
    def cycles_total(self):
        """Cycles covered including the idle windows jumped over."""
        return self.cycles_simulated + self.cycles_skipped

    @property
    def tick_fraction(self):
        """Executed ticks as a share of the all-tick equivalent."""
        if not self.all_tick_equivalent:
            return 0.0
        return self.component_ticks / self.all_tick_equivalent

    @property
    def ticks_avoided(self):
        return self.all_tick_equivalent - self.component_ticks

    @property
    def mean_run_len(self):
        """Average cycles covered per fused macro-tick run."""
        if not self.fused_runs:
            return 0.0
        return self.fused_cycles / self.fused_runs

    def summary_line(self, jobs=None):
        """One-line scheduler summary for reports and benchmark logs."""
        parts = [
            f"engine: {self.cycles_simulated:,} cycles simulated",
            f"{self.cycles_skipped:,} fast-forwarded",
            f"ticks {self.component_ticks:,}"
            f"/{self.all_tick_equivalent:,}"
            f" ({100.0 * self.tick_fraction:.1f}% of all-tick)",
            f"wakes {self.component_wakes:,}",
        ]
        if self.fused_runs:
            parts.append(
                f"fused {self.fused_cycles:,} cycles in "
                f"{self.fused_runs:,} runs "
                f"(mean {self.mean_run_len:.0f})"
            )
        if self.runs > 1:
            parts.append(f"{self.runs} runs")
        if jobs is not None:
            parts.append(f"jobs={jobs}")
        return ", ".join(parts)


@dataclass
class ComponentActivity:
    """Tick/wake counters for one component class."""

    kind: str
    count: int = 0
    ticks: int = 0
    wakes: int = 0


def component_breakdown(engine):
    """Per-component-class tick/wake rows, busiest class first.

    Every :class:`repro.sim.Component` carries ``ticks`` and ``wakes``
    counters maintained by the engine; this groups them by class for
    "who is still ticking" diagnostics.
    """
    by_kind = {}
    for component in engine._components:
        kind = type(component).__name__
        entry = by_kind.get(kind)
        if entry is None:
            entry = by_kind[kind] = ComponentActivity(kind)
        entry.count += 1
        entry.ticks += component.ticks
        entry.wakes += component.wakes
    return sorted(by_kind.values(), key=lambda e: -e.ticks)


def breakdown_rows(by_kind, limit=None):
    """Render a ``by_kind`` mapping as report-table rows, busiest first.

    Accepts the dict form carried by :class:`EngineActivity` (merged
    across sweep points and processes); ``limit`` keeps the table to
    the top-N classes.
    """
    rows = [
        {"component": kind,
         "count": row.get("count", 0),
         "ticks": row.get("ticks", 0),
         "wakes": row.get("wakes", 0)}
        for kind, row in by_kind.items()
    ]
    rows.sort(key=lambda r: -r["ticks"])
    if limit is not None:
        rows = rows[:limit]
    return rows
