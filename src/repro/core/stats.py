"""Engine activity statistics: per-component tick/wake accounting.

The demand-driven engine (:mod:`repro.sim.engine`) counts how often
each component was woken and ticked; this module aggregates those
counters into scheduler-efficiency summaries -- per run, per component
class, and merged across the points of a sweep (the parallel sweep
runner returns one :class:`EngineActivity` per point and sums them).

The headline number is the *tick fraction*: ticks actually executed
divided by the ``cycles x components`` an all-tick engine would have
executed.  It is the demand-driven engine's saved work, and it is
purely a scheduling metric -- cycle results are bit-identical between
the two engines.
"""

from dataclasses import dataclass, field


@dataclass
class EngineActivity:
    """Scheduler-efficiency counters for one run (or a merged sweep)."""

    cycles_simulated: int = 0
    cycles_skipped: int = 0
    component_ticks: int = 0
    component_wakes: int = 0
    # Sum over runs of cycles_simulated * n_components: the tick count
    # an all-tick engine would have executed.  Kept as a plain sum so
    # runs with different component counts merge correctly.
    all_tick_equivalent: int = 0
    runs: int = 0

    @classmethod
    def from_engine(cls, engine):
        """Snapshot the counters of one engine after a run."""
        return cls(
            cycles_simulated=engine.cycles_simulated,
            cycles_skipped=engine.cycles_skipped,
            component_ticks=engine.component_ticks,
            component_wakes=engine.component_wakes,
            all_tick_equivalent=(
                engine.cycles_simulated * len(engine._components)
            ),
            runs=1,
        )

    @classmethod
    def from_dict(cls, data):
        """Rebuild from :meth:`as_dict` output (e.g. across processes)."""
        return cls(**data)

    def as_dict(self):
        return {
            "cycles_simulated": self.cycles_simulated,
            "cycles_skipped": self.cycles_skipped,
            "component_ticks": self.component_ticks,
            "component_wakes": self.component_wakes,
            "all_tick_equivalent": self.all_tick_equivalent,
            "runs": self.runs,
        }

    def merge(self, other):
        """Accumulate *other* (an EngineActivity or its dict) in place."""
        if isinstance(other, dict):
            other = EngineActivity.from_dict(other)
        self.cycles_simulated += other.cycles_simulated
        self.cycles_skipped += other.cycles_skipped
        self.component_ticks += other.component_ticks
        self.component_wakes += other.component_wakes
        self.all_tick_equivalent += other.all_tick_equivalent
        self.runs += other.runs
        return self

    @property
    def cycles_total(self):
        """Cycles covered including the idle windows jumped over."""
        return self.cycles_simulated + self.cycles_skipped

    @property
    def tick_fraction(self):
        """Executed ticks as a share of the all-tick equivalent."""
        if not self.all_tick_equivalent:
            return 0.0
        return self.component_ticks / self.all_tick_equivalent

    @property
    def ticks_avoided(self):
        return self.all_tick_equivalent - self.component_ticks

    def summary_line(self, jobs=None):
        """One-line scheduler summary for reports and benchmark logs."""
        parts = [
            f"engine: {self.cycles_simulated:,} cycles simulated",
            f"{self.cycles_skipped:,} fast-forwarded",
            f"ticks {self.component_ticks:,}"
            f"/{self.all_tick_equivalent:,}"
            f" ({100.0 * self.tick_fraction:.1f}% of all-tick)",
            f"wakes {self.component_wakes:,}",
        ]
        if self.runs > 1:
            parts.append(f"{self.runs} runs")
        if jobs is not None:
            parts.append(f"jobs={jobs}")
        return ", ".join(parts)


@dataclass
class ComponentActivity:
    """Tick/wake counters for one component class."""

    kind: str
    count: int = 0
    ticks: int = 0
    wakes: int = 0


def component_breakdown(engine):
    """Per-component-class tick/wake rows, busiest class first.

    Every :class:`repro.sim.Component` carries ``ticks`` and ``wakes``
    counters maintained by the engine; this groups them by class for
    "who is still ticking" diagnostics.
    """
    by_kind = {}
    for component in engine._components:
        kind = type(component).__name__
        entry = by_kind.get(kind)
        if entry is None:
            entry = by_kind[kind] = ComponentActivity(kind)
        entry.count += 1
        entry.ticks += component.ticks
        entry.wakes += component.wakes
    return sorted(by_kind.values(), key=lambda e: -e.ticks)
