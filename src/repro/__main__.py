"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro list
    python -m repro fig11            # quick mode
    python -m repro fig15 --full     # full scaled suite
    python -m repro all              # everything (slow)
    python -m repro faultsmoke       # fault-injection smoke matrix
    python -m repro trace --graph RV --algorithm pagerank \
        --out out/rv                 # telemetry-instrumented run + export
    python -m repro profile --graph RV --org two-level \
                                     # cProfile one point, component table
    python -m repro lint --format sarif --fail-on error \
                                     # static contract analysis (simlint)

Resilience flags (any of them activates the hardened sweep runner;
see ``repro.experiments.common.SweepPolicy``)::

    python -m repro fig11 --timeout 600 --retries 2 --journal fig11.jsonl
    python -m repro fig11 --journal fig11.jsonl --resume
    python -m repro fig11 --retries 2 --checkpoint-dir snaps/ \
        --checkpoint-interval 50000   # retries resume mid-point

Checkpoint & replay (see ``repro.checkpoint``)::

    python -m repro replay out/run.snap   # resume a snapshot to the end
    python -m repro chaos --kills 3       # SIGKILL/resume bit-identity
"""

import argparse
import importlib
import sys

EXPERIMENTS = {
    "fig01": "fig01_motivation",
    "fig11": "fig11_architectures",
    "fig12": "fig12_hitrate",
    "fig13": "fig13_preprocessing",
    "fig14": "fig14_channels",
    "fig15": "fig15_cache_impact",
    "fig16": "fig16_sota",
    "fig17": "fig17_resources",
    "table2": "table2_datasets",
    "table3": "table3_preprocessing_time",
    "ablation": "ablation_moms_sizing",
}


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    # 'chaos' owns its flag set (kills/seed/interval/...), so hand the
    # rest of the command line to its parser before ours sees it.
    if argv and argv[0] == "chaos":
        from repro.checkpoint.chaos import main as chaos_main

        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment key (see 'list'), 'list'/'all', 'faultsmoke', "
             "'replay', or 'chaos'",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="snapshot path (for the 'replay' command)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the full scaled suite instead of quick mode",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget; over-budget workers are killed",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts per failed point (exponential backoff)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="JSON-lines checkpoint journal for completed points",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse matching completed points from --journal",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="per-point snapshot directory; crashed or timed-out "
             "points resume from their last snapshot on retry",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="CYCLES",
        help="snapshot cadence for --checkpoint-dir (cycles)",
    )
    parser.add_argument(
        "--report", default="faultsmoke_report.json", metavar="PATH",
        help="failure-report path for 'faultsmoke' (the CI artifact)",
    )
    from repro.telemetry.cli import add_trace_arguments

    trace_group = parser.add_argument_group(
        "trace options (for the 'trace' command)"
    )
    add_trace_arguments(trace_group)
    from repro.profiling import add_profile_arguments

    profile_group = parser.add_argument_group(
        "profile options (for the 'profile' command)"
    )
    add_profile_arguments(profile_group)
    from repro.analysis.cli import add_lint_arguments

    lint_group = parser.add_argument_group(
        "lint options (for the 'lint' command)"
    )
    add_lint_arguments(lint_group)
    from repro.tracing.cli import add_spans_arguments

    spans_group = parser.add_argument_group(
        "spans options (for the 'spans' command)"
    )
    add_spans_arguments(spans_group)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, module in sorted(EXPERIMENTS.items()):
            print(f"{key:10s} repro.experiments.{module}")
        print(f"{'faultsmoke':10s} repro.faults.smoke")
        print(f"{'trace':10s} repro.telemetry.cli")
        print(f"{'spans':10s} repro.tracing.cli")
        print(f"{'profile':10s} repro.profiling")
        print(f"{'lint':10s} repro.analysis.cli")
        print(f"{'replay':10s} repro.checkpoint.runner")
        print(f"{'chaos':10s} repro.checkpoint.chaos")
        return 0

    if args.experiment == "replay":
        if not args.target:
            parser.error("replay requires a snapshot path: "
                         "python -m repro replay <snapshot>")
        from repro.checkpoint import read_header, replay_snapshot

        header = read_header(args.target)
        print(f"replaying {args.target}: {header['algorithm']}/"
              f"{header['organization']} from cycle {header['cycle']} "
              f"({header['engine']} engine, {header['kernels']} kernels)")
        from repro.faults.watchdog import WatchdogError

        try:
            result, _header = replay_snapshot(args.target)
        except WatchdogError as error:
            # Surface the embedded flight-recorder tail alongside the
            # stall diagnosis instead of a bare traceback.
            from repro.faults.report import format_stall_report

            print(format_stall_report(error.report))
            return 1
        print(f"finished at cycle {result.cycles} after "
              f"{result.iterations} iteration(s)")
        return 0

    if args.experiment == "trace":
        from repro.telemetry.cli import run_trace

        return run_trace(args)

    if args.experiment == "spans":
        from repro.tracing.cli import run_spans

        return run_spans(args)

    if args.experiment == "profile":
        from repro.profiling import run_profile

        return run_profile(args)

    if args.experiment == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)

    if args.experiment == "faultsmoke":
        from repro.faults.smoke import run_fault_smoke

        summary = run_fault_smoke(report_path=args.report)
        return 1 if summary["failures"] else 0

    if args.resume and not args.journal:
        parser.error("--resume requires --journal")

    keys = (sorted(EXPERIMENTS) if args.experiment == "all"
            else [args.experiment])
    from repro.experiments.common import (
        SweepFailure,
        configure_sweep,
        reset_sweep_activity,
    )
    from repro.report import component_breakdown_table, engine_summary_line

    if (args.timeout is not None or args.retries or args.journal
            or args.checkpoint_dir):
        configure_sweep(
            timeout=args.timeout,
            retries=args.retries,
            journal=args.journal,
            resume=args.resume,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
        )

    for key in keys:
        if key not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {key!r}; try 'python -m repro list'"
            )
        module = importlib.import_module(
            f"repro.experiments.{EXPERIMENTS[key]}"
        )
        reset_sweep_activity()
        try:
            _rows, text = module.run(quick=not args.full)
        except SweepFailure as failure:
            print(f"{key}: SWEEP FAILED -- {failure.completed} point(s) "
                  f"completed, {len(failure.failures)} failed permanently:")
            for index, error in sorted(failure.failures.items()):
                first_line = str(error).splitlines()[0]
                print(f"  point {index}: {first_line}")
            if args.journal:
                print(f"  completed points are checkpointed in "
                      f"{args.journal}; re-run with --resume to retry "
                      f"only the failures")
            return 1
        print(text)
        print(engine_summary_line())
        breakdown = component_breakdown_table()
        if breakdown:
            print(breakdown)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
