"""Command-line entry point: run any paper experiment by name.

Usage::

    python -m repro list
    python -m repro fig11            # quick mode
    python -m repro fig15 --full     # full scaled suite
    python -m repro all              # everything (slow)
"""

import argparse
import importlib
import sys

EXPERIMENTS = {
    "fig01": "fig01_motivation",
    "fig11": "fig11_architectures",
    "fig12": "fig12_hitrate",
    "fig13": "fig13_preprocessing",
    "fig14": "fig14_channels",
    "fig15": "fig15_cache_impact",
    "fig16": "fig16_sota",
    "fig17": "fig17_resources",
    "table2": "table2_datasets",
    "table3": "table3_preprocessing_time",
    "ablation": "ablation_moms_sizing",
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment key (see 'list'), or 'list'/'all'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the full scaled suite instead of quick mode",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, module in sorted(EXPERIMENTS.items()):
            print(f"{key:10s} repro.experiments.{module}")
        return 0

    keys = (sorted(EXPERIMENTS) if args.experiment == "all"
            else [args.experiment])
    from repro.experiments.common import reset_sweep_activity
    from repro.report import engine_summary_line

    for key in keys:
        if key not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {key!r}; try 'python -m repro list'"
            )
        module = importlib.import_module(
            f"repro.experiments.{EXPERIMENTS[key]}"
        )
        reset_sweep_activity()
        _rows, text = module.run(quick=not args.full)
        print(text)
        print(engine_summary_line())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
