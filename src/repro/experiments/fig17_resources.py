"""Fig. 17 -- resource utilization of the top designs.

Reports the analytical area model's LUT/FF/BRAM/URAM/DSP utilization
(relative to the shell-free area, as the paper does) plus the modeled
operating frequency for the best architecture of each application.
Expected shape: LUTs dominated by interconnect, BRAM/URAM split between
PEs and MOMSes, DSPs underutilized even for floating-point PageRank,
frequencies between 185 and 250 MHz.
"""

from repro.accel.config import named_architectures
from repro.fabric.area import AreaModel
from repro.fabric.frequency import FrequencyModel
from repro.report import format_table

TOP_DESIGNS = (
    ("pagerank", "16/16 two-level"),
    ("pagerank", "18/16 two-level 64k"),
    ("scc", "16/16 two-level"),
    ("scc", "16 private 256k"),
    ("sssp", "20/8 two-level"),
    ("sssp", "16/16 two-level"),
)


def run(quick=True, n_channels=4):
    area = AreaModel()
    freq = FrequencyModel(area)
    rows = []
    for algorithm, arch_name in TOP_DESIGNS:
        config = named_architectures(algorithm, n_channels)[arch_name]
        util = area.utilization(config.design)
        rows.append({
            "design": f"{algorithm} {arch_name}",
            "LUT %": 100 * util["LUT"],
            "FF %": 100 * util["FF"],
            "BRAM %": 100 * util["BRAM"],
            "URAM %": 100 * util["URAM"],
            "DSP %": 100 * util["DSP"],
            "freq MHz": freq.frequency_mhz(config.design),
            "meets timing": freq.meets_timing(config.design),
        })
    text = format_table(rows, title="Fig. 17 -- resource utilization and "
                                    "frequency of top designs",
                        floatfmt="{:.1f}")
    return rows, text
