"""Fig. 12 -- SCC throughput versus cache hit rate.

Runs the MOMS and traditional architectures with and without their
cache arrays and reports (hit rate, GTEPS) pairs.  Expected shape:
traditional caches track their hit rate (and collapse at 0 %), while
MOMSes sit at high throughput across the hit-rate axis -- thousands of
MSHRs replace the cache array.
"""

from repro.accel.config import named_architectures
from repro.experiments.common import (
    SweepPoint,
    quick_benchmarks,
    quick_channels,
    run_sweep,
)
from repro.report import format_table


def cacheless(config):
    """Copy of *config* with every cache array removed (0 % hit rate)."""
    import copy

    clone = copy.deepcopy(config)
    clone.design = clone.design.with_(private_cache_kib=0,
                                      shared_cache_kib=0)
    return clone


ARCHS = ("16/16 two-level", "16 private 256k", "18/16 traditional")


def run(quick=True, n_channels=None):
    if n_channels is None:
        n_channels = quick_channels(quick)
    benchmarks = quick_benchmarks(quick)
    points = []
    labels = []
    for name in ARCHS:
        base = named_architectures("scc", n_channels)[name]
        for variant, config in (("with cache", base),
                                ("no cache", cacheless(base))):
            for key in benchmarks:
                labels.append((name, variant, key))
                points.append(SweepPoint(key, "scc", config, quick))
    rows = [
        {
            "architecture": name,
            "caches": variant,
            "benchmark": key,
            "hit rate": result.hit_rate,
            "GTEPS": result.gteps,
        }
        for (name, variant, key), result
        in zip(labels, run_sweep(points))
    ]
    text = format_table(
        rows, title="Fig. 12 -- SCC throughput vs cache hit rate"
    )
    return rows, text
