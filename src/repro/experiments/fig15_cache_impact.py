"""Fig. 15 -- impact of cache arrays on the 20/8 two-level designs.

Runs SCC on the 20/8 two-level MOMS and the traditional cache with all
four cache-array combinations (full, no private, no shared, none).
Expected shape (paper Section V-E): removing every cache array costs
the traditional design ~2x but the MOMS only ~10 % -- MSHRs replace
the cache array.
"""

import copy

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.experiments.common import (
    SweepPoint,
    quick_benchmarks,
    quick_channels,
    run_sweep,
)
from repro.fabric.design import MOMS_TRADITIONAL, MOMS_TWO_LEVEL
from repro.report import format_table, geomean

# Paper: 2.5 MiB private (across 20 PEs -> 128 KiB each) and 2 MiB
# shared (across 8 banks -> 256 KiB each).
PRIVATE_KIB = 128
SHARED_KIB = 256

VARIANTS = (
    ("full caches", PRIVATE_KIB, SHARED_KIB),
    ("no private", 0, SHARED_KIB),
    ("no shared", PRIVATE_KIB, 0),
    ("no caches", 0, 0),
)


def make_config(organization, private_kib, shared_kib, n_channels):
    return ArchitectureConfig(
        _design(20, 8, organization, "scc", n_channels,
                private_cache_kib=private_kib, shared_cache_kib=shared_kib),
        **SCALED_DEFAULTS,
    )


def run(quick=True, n_channels=None):
    if n_channels is None:
        n_channels = quick_channels(quick)
    benchmarks = quick_benchmarks(quick)
    points = []
    labels = []
    for organization, label in ((MOMS_TWO_LEVEL, "20/8 two-level MOMS"),
                                (MOMS_TRADITIONAL, "20/8 traditional")):
        for variant, private_kib, shared_kib in VARIANTS:
            config = make_config(organization, private_kib, shared_kib,
                                 n_channels)
            labels.append((label, variant))
            points.extend(
                SweepPoint(key, "scc", config, quick)
                for key in benchmarks
            )
    results = run_sweep(points)
    rows = []
    for index, (label, variant) in enumerate(labels):
        chunk = results[index * len(benchmarks):(index + 1) * len(benchmarks)]
        per_bench = {key: result.gteps
                     for key, result in zip(benchmarks, chunk)}
        row = {"architecture": label, "caches": variant}
        row.update(per_bench)
        row["geomean"] = geomean(list(per_bench.values()))
        rows.append(row)
    # Relative drop without any cache arrays.
    for label in ("20/8 two-level MOMS", "20/8 traditional"):
        full = next(r for r in rows
                    if r["architecture"] == label
                    and r["caches"] == "full caches")["geomean"]
        none = next(r for r in rows
                    if r["architecture"] == label
                    and r["caches"] == "no caches")["geomean"]
        for r in rows:
            if r["architecture"] == label and r["caches"] == "no caches":
                r["drop vs full"] = full / none if none else float("inf")
    text = format_table(rows, title="Fig. 15 -- SCC GTEPS with/without "
                                    "cache arrays (20/8 designs)")
    return rows, text
