"""Fig. 1 -- why caches and scratchpads fail on irregular accesses.

Measures DRAM *lines fetched per useful irregular read* on one skewed
workload for four memory idioms:

* traditional non-blocking cache (measured on the simulator),
* statically-managed scratchpad tiling (computed: every tile transfer
  moves whole intervals whether their nodes are used or not, and the
  number of transfers is quadratic in the interval count),
* a MOMS (measured: two-level, Fig. 8),
* an ideal infinite cache (computed: each useful line exactly once).
"""

import numpy as np

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.experiments.common import SweepPoint, bench_graph, run_sweep
from repro.fabric.design import MOMS_TRADITIONAL, MOMS_TWO_LEVEL
from repro.report import format_table


def run(quick=True, graph_key="RV"):
    graph = bench_graph(graph_key, quick)

    def point(organization):
        config = ArchitectureConfig(
            _design(4, 4, organization, "pagerank", n_channels=2),
            **SCALED_DEFAULTS,
        )
        # budget_quick=True: the motivation plot always uses the short
        # iteration budget, whatever the graph scale.
        return SweepPoint(graph_key, "pagerank", config, quick,
                          budget_quick=True)

    measured = run_sweep([
        point(MOMS_TRADITIONAL), point(MOMS_TWO_LEVEL),
    ])
    rows = []
    for label, result in zip(
            ("traditional cache", "MOMS (two-level)"), measured):
        reads = result.stats["moms_reads"]
        lines = result.stats["dram_lines_single"]
        rows.append({
            "memory system": label,
            "useful reads": reads,
            "DRAM lines": lines,
            "lines/read": lines / reads if reads else 0.0,
        })

    # Scratchpad tiling: the paper-scale ratio of tile size to node set
    # is ~1:1000 (32k-node tiles vs tens of millions of nodes); keep the
    # number of intervals q in proportion when the graph is scaled, so
    # the quadratic q^2 tile-transfer term is representative.
    interval = max(16, graph.n_nodes // 80)
    q = -(-graph.n_nodes // interval)
    tile_lines = q * q * (interval * 4 // 64)
    rows.append({
        "memory system": "scratchpad tiling",
        "useful reads": graph.n_edges,
        "DRAM lines": tile_lines,
        "lines/read": tile_lines / graph.n_edges,
    })

    # Ideal infinite cache: each useful line exactly once.
    useful_lines = len(np.unique(graph.src * 4 // 64))
    rows.append({
        "memory system": "ideal cache",
        "useful reads": graph.n_edges,
        "DRAM lines": useful_lines,
        "lines/read": useful_lines / graph.n_edges,
    })

    text = format_table(
        rows,
        title=f"Fig. 1 motivation -- irregular reads on {graph_key} "
              f"(N={graph.n_nodes:,}, M={graph.n_edges:,})",
    )
    return rows, text
