"""Fig. 13 -- PageRank throughput by preprocessing technique.

Runs the 18/16 two-level design with the four preprocessing variants:
nothing, cache-line hashing, DBG, and DBG + hashing -- in two regimes:

* **scarce jobs** (destination intervals sized so jobs barely exceed
  the PE count): the paper's setting for its smaller benchmarks, where
  "fewer jobs [make] load balancing more critical" and hashing pays;
* **plentiful jobs** (the default >= 4 jobs/PE clamp): dynamic
  scheduling already balances load, so hashing's benefit fades and can
  go slightly negative -- the paper reports the same reversal on the
  graphs where community grouping beats uniform job size.

DBG's first-order effect -- denser cache-line reuse, hence fewer DRAM
line fetches -- is reported as ``dbg line ratio``.
"""

import copy

from repro.accel.config import named_architectures
from repro.experiments.common import (
    bench_graph,
    quick_benchmarks,
    quick_channels,
    run_point,
)
from repro.report import format_table

VARIANTS = (
    ("none", dict(use_hashing=False, use_dbg=False)),
    ("hash", dict(use_hashing=True, use_dbg=False)),
    ("dbg", dict(use_hashing=False, use_dbg=True)),
    ("dbg+hash", dict(use_hashing=True, use_dbg=True)),
)


def run(quick=True, n_channels=None, arch_name="18/16 two-level 64k"):
    if n_channels is None:
        n_channels = quick_channels(quick)
    base = named_architectures("pagerank", n_channels)[arch_name]
    scarce = copy.deepcopy(base)
    scarce.min_jobs_per_pe = 0.5  # paper-like job:PE ratios (~1-2x)
    benchmarks = quick_benchmarks(quick)
    rows = []
    for regime, config in (("scarce jobs", scarce),
                           ("plentiful jobs", base)):
        for key in benchmarks:
            graph = bench_graph(key, quick)
            row = {"regime": regime, "benchmark": key}
            lines = {}
            for label, options in VARIANTS:
                _, result = run_point(graph, "pagerank", config, quick,
                                      **options)
                row[label] = result.gteps
                lines[label] = result.stats["dram_lines_single"]
            row["hash speedup"] = (
                row["hash"] / row["none"] if row["none"] else 0
            )
            row["dbg+hash speedup"] = (
                row["dbg+hash"] / row["none"] if row["none"] else 0
            )
            row["dbg line ratio"] = (
                lines["dbg+hash"] / lines["hash"] if lines["hash"] else 0
            )
            rows.append(row)
    text = format_table(
        rows,
        title=f"Fig. 13 -- PageRank GTEPS by preprocessing ({arch_name})",
    )
    return rows, text
