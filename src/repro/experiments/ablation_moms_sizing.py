"""Ablation: the design choices behind "thousands of MSHRs".

Three sweeps on one skewed workload (SCC on the RV stand-in), probing
the knobs DESIGN.md calls out:

* **MSHR count** -- the paper's core claim is that scaling MSHRs from
  tens to thousands unlocks memory-level parallelism: throughput should
  climb with MSHR capacity and saturate once the latency window is
  covered.
* **Subentry capacity** -- subentries are what turn one in-flight line
  into many served requests; starving the pool forces stalls.
* **DRAM latency** -- counterintuitively, a MOMS *benefits* from
  latency (a longer coalescing window) as long as it has the MSHRs to
  cover it; throughput should degrade only mildly as latency grows,
  which is the "latency-insensitive" property the paper exploits.
"""

import copy

from repro.accel.config import named_architectures
from repro.experiments.common import SweepPoint, bench_graph, run_sweep
from repro.mem.dram import DramTimings
from repro.report import format_table


def _base(n_channels=2):
    return named_architectures("scc", n_channels)["16/16 two-level"]


def mshr_points(graph_key, quick, factors=(1 / 16, 1 / 4, 1, 4)):
    points = []
    for factor in factors:
        config = copy.deepcopy(_base())
        config.structure_scale = config.structure_scale * factor
        mshrs = int(4096 * config.structure_scale)
        points.append((
            SweepPoint(graph_key, "scc", config, quick),
            {"sweep": "MSHRs/bank", "value": max(16, mshrs)},
        ))
    return points


def latency_points(graph_key, quick, latencies=(40, 150, 400)):
    points = []
    for latency in latencies:
        config = copy.deepcopy(_base())
        config.dram_timings = DramTimings(latency=latency)
        points.append((
            SweepPoint(graph_key, "scc", config, quick),
            {"sweep": "DRAM latency (cycles)", "value": latency},
        ))
    return points


def bank_points(graph_key, quick, bank_counts=(4, 8, 16)):
    points = []
    for n_banks in bank_counts:
        config = copy.deepcopy(_base())
        config.design = config.design.with_(n_banks=n_banks)
        points.append((
            SweepPoint(graph_key, "scc", config, quick),
            {"sweep": "shared banks", "value": n_banks},
        ))
    return points


def run(quick=True, graph_key="RV"):
    graph = bench_graph(graph_key, quick)
    tagged = (
        mshr_points(graph_key, quick)
        + latency_points(graph_key, quick)
        + bank_points(graph_key, quick)
    )
    results = run_sweep([point for point, _ in tagged])
    rows = [
        dict(label,
             GTEPS=result.gteps,
             **{"DRAM lines": result.stats["dram_lines_single"]})
        for (_, label), result in zip(tagged, results)
    ]
    text = format_table(
        rows,
        title=f"Ablation -- MOMS sizing on SCC/{graph_key} "
              f"(N={graph.n_nodes:,}, M={graph.n_edges:,})",
    )
    return rows, text
