"""Ablation: the design choices behind "thousands of MSHRs".

Three sweeps on one skewed workload (SCC on the RV stand-in), probing
the knobs DESIGN.md calls out:

* **MSHR count** -- the paper's core claim is that scaling MSHRs from
  tens to thousands unlocks memory-level parallelism: throughput should
  climb with MSHR capacity and saturate once the latency window is
  covered.
* **Subentry capacity** -- subentries are what turn one in-flight line
  into many served requests; starving the pool forces stalls.
* **DRAM latency** -- counterintuitively, a MOMS *benefits* from
  latency (a longer coalescing window) as long as it has the MSHRs to
  cover it; throughput should degrade only mildly as latency grows,
  which is the "latency-insensitive" property the paper exploits.
"""

import copy

from repro.accel.config import named_architectures
from repro.experiments.common import bench_graph, run_point
from repro.mem.dram import DramTimings
from repro.report import format_table


def _base(n_channels=2):
    return named_architectures("scc", n_channels)["16/16 two-level"]


def sweep_mshrs(graph, quick, factors=(1 / 16, 1 / 4, 1, 4)):
    rows = []
    for factor in factors:
        config = copy.deepcopy(_base())
        config.structure_scale = config.structure_scale * factor
        _, result = run_point(graph, "scc", config, quick)
        mshrs = int(4096 * config.structure_scale)
        rows.append({
            "sweep": "MSHRs/bank",
            "value": max(16, mshrs),
            "GTEPS": result.gteps,
            "DRAM lines": result.stats["dram_lines_single"],
        })
    return rows


def sweep_latency(graph, quick, latencies=(40, 150, 400)):
    rows = []
    for latency in latencies:
        config = copy.deepcopy(_base())
        config.dram_timings = DramTimings(latency=latency)
        _, result = run_point(graph, "scc", config, quick)
        rows.append({
            "sweep": "DRAM latency (cycles)",
            "value": latency,
            "GTEPS": result.gteps,
            "DRAM lines": result.stats["dram_lines_single"],
        })
    return rows


def sweep_banks(graph, quick, bank_counts=(4, 8, 16)):
    rows = []
    for n_banks in bank_counts:
        config = copy.deepcopy(_base())
        config.design = config.design.with_(n_banks=n_banks)
        _, result = run_point(graph, "scc", config, quick)
        rows.append({
            "sweep": "shared banks",
            "value": n_banks,
            "GTEPS": result.gteps,
            "DRAM lines": result.stats["dram_lines_single"],
        })
    return rows


def run(quick=True, graph_key="RV"):
    graph = bench_graph(graph_key, quick)
    rows = []
    rows += sweep_mshrs(graph, quick)
    rows += sweep_latency(graph, quick)
    rows += sweep_banks(graph, quick)
    text = format_table(
        rows,
        title=f"Ablation -- MOMS sizing on SCC/{graph_key} "
              f"(N={graph.n_nodes:,}, M={graph.n_edges:,})",
    )
    return rows, text
