"""Table II -- benchmark suite properties (scaled stand-ins)."""

from repro.graph.datasets import BENCHMARKS, load_benchmark
from repro.report import format_table


def run(quick=True):
    shrink = 6 if quick else 1
    rows = []
    for key, spec in BENCHMARKS.items():
        graph = load_benchmark(key, shrink=shrink)
        stats = graph.subgraph_stats()
        rows.append({
            "key": key,
            "benchmark": spec.full_name,
            "paper N": spec.paper_nodes,
            "paper M": spec.paper_edges,
            "N": stats["n_nodes"],
            "M": stats["n_edges"],
            "avg deg": stats["avg_degree"],
            "max outdeg": stats["max_out_degree"],
            "kind": spec.kind,
        })
    text = format_table(rows, title="Table II -- benchmark properties "
                                    "(synthetic stand-ins)")
    return rows, text
