"""Fig. 16 + Table IV -- comparison with the state of the art.

Our best generic architecture versus the FabGraph, Ligra, GraphMat and
Gunrock cost models, per benchmark and algorithm, in absolute GTEPS,
bandwidth efficiency (GTEPS per GB/s) and power efficiency (GTEPS/W),
using the platform constants of Table IV.  The GPU rows include the
16 GB capacity check on the *paper-scale* graph sizes (only the five
smallest benchmarks fit, as the paper reports).
"""

from repro.accel.config import named_architectures
from repro.baselines.cpu import graphmat_model, ligra_model
from repro.baselines.fabgraph import FabGraphModel
from repro.baselines.gpu import GpuFrameworkModel
from repro.experiments.common import (
    SweepPoint,
    bench_graph,
    quick_benchmarks,
    quick_channels,
    run_sweep,
)
from repro.graph.datasets import BENCHMARKS
from repro.report import format_table

FPGA_POWER_W = 23.0  # Table IV
FPGA_BANDWIDTH_GB_S = 64.0


def run(quick=True, algorithms=("pagerank", "scc", "sssp"),
        arch_name="16/16 two-level", n_channels=None):
    if n_channels is None:
        n_channels = quick_channels(quick)
    benchmarks = quick_benchmarks(quick)
    fabgraph = FabGraphModel().scaled(1 / 1000 / (6 if quick else 1))
    ligra = ligra_model()
    graphmat = graphmat_model()
    gunrock = GpuFrameworkModel()
    points = [
        SweepPoint(
            key, algorithm,
            named_architectures(algorithm, n_channels)[arch_name], quick,
        )
        for algorithm in algorithms
        for key in benchmarks
    ]
    results = iter(run_sweep(points))
    rows = []
    for algorithm in algorithms:
        for key in benchmarks:
            graph = bench_graph(key, quick)
            spec = BENCHMARKS[key]
            result = next(results)
            gpu_fits = gunrock.fits_in_memory(
                spec.paper_n, spec.paper_m, weighted=algorithm == "sssp"
            )
            row = {
                "algorithm": algorithm,
                "benchmark": key,
                "ours GTEPS": result.gteps,
                "Ligra": ligra.gteps(graph, algorithm),
                "GraphMat": graphmat.gteps(graph, algorithm),
                "Gunrock": (gunrock.gteps(graph, algorithm)
                            if gpu_fits else 0.0),
                "Gunrock fits": gpu_fits,
                "ours GTEPS/GBps": result.gteps / FPGA_BANDWIDTH_GB_S,
                "Ligra GTEPS/GBps": ligra.bandwidth_efficiency(
                    graph, algorithm),
                "ours GTEPS/W": result.gteps / FPGA_POWER_W,
                "Ligra GTEPS/W": ligra.power_efficiency(graph, algorithm),
            }
            if algorithm == "pagerank":
                row["FabGraph"] = fabgraph.pagerank_gteps(
                    graph.n_nodes, graph.n_edges, n_channels
                )
            rows.append(row)
    text = format_table(
        rows, title="Fig. 16 -- comparison with CPU/GPU/FPGA baselines "
                    "(Table IV platform constants)"
    )
    return rows, text


def table4_rows():
    """Table IV: platform bandwidth and power."""
    return [
        {"platform": "This work / FabGraph (FPGA)",
         "ext. bandwidth": "64 GB/s", "power": "23 W"},
        {"platform": "Gunrock (GPU V100)",
         "ext. bandwidth": "900 GB/s", "power": "300 W (TDP, whole board)"},
        {"platform": "Ligra / GraphMat (2x Xeon)",
         "ext. bandwidth": "233 GB/s", "power": "224 W"},
    ]
