"""Table III -- preprocessing wall time (partitioning, hashing, DBG).

Measures this library's numpy preprocessing on the scaled suite.  The
paper's point is relative: all steps are linear (or better) in the
graph size, DBG is the cheapest, and everything besides partitioning
is optional.
"""

import time

from repro.graph.datasets import BENCHMARKS, load_benchmark
from repro.graph.partition import partition_edges
from repro.graph.reorder import dbg_reorder, hash_cache_lines
from repro.report import format_table


def run(quick=True, nodes_per_src_interval=1024,
        nodes_per_dst_interval=256):
    shrink = 6 if quick else 1
    rows = []
    for key in BENCHMARKS:
        graph = load_benchmark(key, shrink=shrink)

        start = time.perf_counter()
        partition_edges(graph, nodes_per_src_interval,
                        nodes_per_dst_interval)
        t_partition = time.perf_counter() - start

        start = time.perf_counter()
        permutation = hash_cache_lines(graph.n_nodes,
                                       nodes_per_dst_interval)
        graph.relabel(permutation)
        t_hash = time.perf_counter() - start

        start = time.perf_counter()
        dbg_reorder(graph)
        t_dbg = time.perf_counter() - start

        rows.append({
            "benchmark": key,
            "M": graph.n_edges,
            "partitioning (s)": t_partition,
            "hashing (s)": t_hash,
            "DBG (s)": t_dbg,
        })
    text = format_table(rows, title="Table III -- preprocessing time",
                        floatfmt="{:.4f}")
    return rows, text
