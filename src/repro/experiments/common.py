"""Shared plumbing for the per-figure experiment modules.

Besides graph/budget helpers, this module hosts the **parallel sweep
runner**: every figure is a list of independent (graph, algorithm,
architecture) points, so :func:`run_points` evaluates them over a
``ProcessPoolExecutor`` with ``REPRO_JOBS`` workers (serial with
``REPRO_JOBS=1``), preserving the serial row order exactly -- each
point simulates the same deterministic system either way, so results
are identical, only wall-clock changes.
"""

import os
from dataclasses import dataclass, field

from repro.accel.system import AcceleratorSystem
from repro.core.stats import EngineActivity
from repro.graph.datasets import load_benchmark


def full_suite_requested():
    return os.environ.get("REPRO_FULL_SUITE", "") not in ("", "0")


QUICK_SHRINK = 6


def bench_graph(key, quick=True):
    """Benchmark graph at bench scale (quick) or full scaled size."""
    return load_benchmark(key, shrink=QUICK_SHRINK if quick else 1)


def quick_benchmarks(quick=True):
    """Default benchmark subset for quick sweeps."""
    if quick:
        return ("WT", "RV", "24")
    return ("WT", "DB", "UK", "IT", "SK", "MP", "RV", "FR", "WB",
            "24", "25", "26")


def quick_channels(quick=True):
    """Channel count for quick sweeps (full runs use all four)."""
    return 2 if quick else 4


def iteration_budget(algorithm, quick=True):
    """Iteration caps for throughput measurements.

    Throughput (GTEPS) stabilizes after a couple of sweeps, so quick
    mode truncates convergence runs; results record processed edges.
    """
    if algorithm == "pagerank":
        return 2 if quick else 10
    return 3 if quick else None


def run_point(graph, algorithm, config, quick=True, use_hashing=True,
              use_dbg=False, source=0):
    """One (graph, algorithm, architecture) measurement."""
    system = AcceleratorSystem(
        graph, algorithm, config, use_hashing=use_hashing, use_dbg=use_dbg,
        source=source,
    )
    result = system.run(
        max_iterations=iteration_budget(algorithm, quick)
    )
    return system, result


# -- parallel sweep runner ---------------------------------------------------


def default_jobs():
    """Worker count for sweeps: ``REPRO_JOBS`` env, else the CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def run_points(worker, points, jobs=None):
    """Evaluate ``worker(point)`` for every point, preserving order.

    With ``jobs > 1`` (default: :func:`default_jobs`) the points run in
    a ``ProcessPoolExecutor``; ``worker`` must be a module-level
    callable and both points and results must pickle.  The returned
    list is always in input order, so sweep rows come out identical to
    the serial path.  ``REPRO_JOBS=1`` (or a single point) keeps
    everything in-process.
    """
    points = list(points)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(points) <= 1:
        return [worker(point) for point in points]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        return list(pool.map(worker, points))


@dataclass
class SweepPoint:
    """One picklable simulation point of a figure sweep.

    The graph is reloaded by key inside the worker process (benchmark
    graphs are generated deterministically, so this is cheap and avoids
    shipping edge arrays through pickles).  ``budget_quick`` overrides
    the iteration-budget switch independently of the graph scale (only
    Fig. 1 uses that).
    """

    graph_key: str
    algorithm: str
    config: object
    quick: bool = True
    budget_quick: bool = None
    use_hashing: bool = True
    use_dbg: bool = False
    source: int = 0

    def load_graph(self):
        return bench_graph(self.graph_key, self.quick)


def simulate_point(point):
    """Module-level sweep worker: returns (RunResult, activity dict)."""
    budget_quick = point.budget_quick
    if budget_quick is None:
        budget_quick = point.quick
    system, result = run_point(
        point.load_graph(), point.algorithm, point.config,
        quick=budget_quick, use_hashing=point.use_hashing,
        use_dbg=point.use_dbg, source=point.source,
    )
    return result, EngineActivity.from_engine(system.engine).as_dict()


# Engine-activity tally across every sweep run in this process; the
# CLI and the benchmark harness print its summary line after each
# experiment (see repro.report.engine_summary_line).
_SWEEP_ACTIVITY = EngineActivity()


def sweep_activity():
    return _SWEEP_ACTIVITY


def reset_sweep_activity():
    global _SWEEP_ACTIVITY
    _SWEEP_ACTIVITY = EngineActivity()
    return _SWEEP_ACTIVITY


def run_sweep(points, jobs=None):
    """Run a figure's points (possibly in parallel); list of RunResults.

    Engine-activity counters from every point -- local or from worker
    processes -- are merged into the process-wide tally.
    """
    results = []
    for result, activity in run_points(simulate_point, points, jobs):
        _SWEEP_ACTIVITY.merge(activity)
        results.append(result)
    return results
