"""Shared plumbing for the per-figure experiment modules."""

import os

from repro.accel.system import AcceleratorSystem
from repro.graph.datasets import load_benchmark


def full_suite_requested():
    return os.environ.get("REPRO_FULL_SUITE", "") not in ("", "0")


QUICK_SHRINK = 6


def bench_graph(key, quick=True):
    """Benchmark graph at bench scale (quick) or full scaled size."""
    return load_benchmark(key, shrink=QUICK_SHRINK if quick else 1)


def quick_benchmarks(quick=True):
    """Default benchmark subset for quick sweeps."""
    if quick:
        return ("WT", "RV", "24")
    return ("WT", "DB", "UK", "IT", "SK", "MP", "RV", "FR", "WB",
            "24", "25", "26")


def quick_channels(quick=True):
    """Channel count for quick sweeps (full runs use all four)."""
    return 2 if quick else 4


def iteration_budget(algorithm, quick=True):
    """Iteration caps for throughput measurements.

    Throughput (GTEPS) stabilizes after a couple of sweeps, so quick
    mode truncates convergence runs; results record processed edges.
    """
    if algorithm == "pagerank":
        return 2 if quick else 10
    return 3 if quick else None


def run_point(graph, algorithm, config, quick=True, use_hashing=True,
              use_dbg=False, source=0):
    """One (graph, algorithm, architecture) measurement."""
    system = AcceleratorSystem(
        graph, algorithm, config, use_hashing=use_hashing, use_dbg=use_dbg,
        source=source,
    )
    result = system.run(
        max_iterations=iteration_budget(algorithm, quick)
    )
    return system, result
