"""Shared plumbing for the per-figure experiment modules.

Besides graph/budget helpers, this module hosts the **parallel sweep
runner**: every figure is a list of independent (graph, algorithm,
architecture) points, so :func:`run_points` evaluates them over a
``ProcessPoolExecutor`` with ``REPRO_JOBS`` workers (serial with
``REPRO_JOBS=1``), preserving the serial row order exactly -- each
point simulates the same deterministic system either way, so results
are identical, only wall-clock changes.
"""

import base64
import hashlib
import json
import os
import pickle
import time
import warnings
from collections import deque
from dataclasses import dataclass, field

from repro.accel.system import AcceleratorSystem
from repro.core.stats import EngineActivity
from repro.graph.datasets import BENCHMARKS, load_benchmark


def full_suite_requested():
    return os.environ.get("REPRO_FULL_SUITE", "") not in ("", "0")


QUICK_SHRINK = 6


def bench_graph(key, quick=True):
    """Benchmark graph at bench scale (quick) or full scaled size."""
    return load_benchmark(key, shrink=QUICK_SHRINK if quick else 1)


def quick_benchmarks(quick=True):
    """Default benchmark subset for quick sweeps."""
    if quick:
        return ("WT", "RV", "24")
    return ("WT", "DB", "UK", "IT", "SK", "MP", "RV", "FR", "WB",
            "24", "25", "26")


def quick_channels(quick=True):
    """Channel count for quick sweeps (full runs use all four)."""
    return 2 if quick else 4


def iteration_budget(algorithm, quick=True):
    """Iteration caps for throughput measurements.

    Throughput (GTEPS) stabilizes after a couple of sweeps, so quick
    mode truncates convergence runs; results record processed edges.
    """
    if algorithm == "pagerank":
        return 2 if quick else 10
    return 3 if quick else None


def telemetry_from_env():
    """Opt-in telemetry config from the environment, else None.

    ``REPRO_TELEMETRY=1`` enables collection for every sweep point
    (each journal row then carries the compact summary in
    ``result.stats["telemetry"]``); ``REPRO_TELEMETRY_INTERVAL``
    overrides the sampling period in cycles.
    """
    enabled = os.environ.get("REPRO_TELEMETRY", "").strip()
    if enabled in ("", "0"):
        return None
    from repro.telemetry import TelemetryConfig

    interval = os.environ.get("REPRO_TELEMETRY_INTERVAL", "").strip()
    if interval:
        return TelemetryConfig(sample_interval=int(interval))
    return TelemetryConfig()


def spans_from_env():
    """Opt-in span-tracer config from the environment, else None.

    ``REPRO_SPANS=1`` attaches the request span tracer to every sweep
    point with the default sampling rate (journal rows then carry the
    compact summary in ``result.stats["spans"]``); ``REPRO_SPANS=<N>``
    with N > 1 also sets the rate to 1-in-N.  ``REPRO_SPANS_DEPTH``
    overrides the flight-recorder ring depth.
    """
    enabled = os.environ.get("REPRO_SPANS", "").strip()
    if enabled in ("", "0"):
        return None
    from repro.tracing import SpansConfig

    kwargs = {}
    try:
        rate = int(enabled)
    except ValueError:
        rate = 1
    if rate > 1:
        kwargs["sample_rate"] = rate
    depth = os.environ.get("REPRO_SPANS_DEPTH", "").strip()
    if depth:
        kwargs["recorder_depth"] = int(depth)
    return SpansConfig(**kwargs)


def _normalize_observability_stats(result):
    """Make journal rows explicit about requested-but-absent summaries.

    When the environment asked for telemetry or span tracing but the
    run produced no summary (e.g. a ``REPRO_RESUME`` point restored
    from a snapshot taken without the hook attached), record the key
    as an explicit ``null`` rather than omitting it -- consumers can
    then tell "collection was off" apart from "collection was
    requested but unavailable" without re-deriving the environment.
    """
    stats = getattr(result, "stats", None)
    if stats is None:
        return
    if os.environ.get("REPRO_TELEMETRY", "").strip() not in ("", "0"):
        stats.setdefault("telemetry", None)
    if os.environ.get("REPRO_SPANS", "").strip() not in ("", "0"):
        stats.setdefault("spans", None)


def run_point(graph, algorithm, config, quick=True, use_hashing=True,
              use_dbg=False, source=0, telemetry=None, spans=None):
    """One (graph, algorithm, architecture) measurement.

    When ``REPRO_RESUME`` names an existing snapshot (the hardened
    sweep runner sets it on retry attempts), the point resumes from
    that snapshot instead of starting over -- the snapshot path is
    keyed by the point's fingerprint, so it can only ever hold this
    exact point's state.  A ``<snapshot>.resumed`` sentinel records
    that the resume path ran (results are bit-identical either way, so
    the sentinel is the only observable difference).
    """
    resume_from = os.environ.get("REPRO_RESUME", "").strip()
    if resume_from and os.path.exists(resume_from):
        from repro.checkpoint import restore_system

        system, header = restore_system(resume_from)
        result = system.resume_run()
        with open(resume_from + ".resumed", "w", encoding="utf-8") as fh:
            json.dump({"from_cycle": header["cycle"],
                       "final_cycles": result.cycles}, fh)
        _normalize_observability_stats(result)
        return system, result
    if telemetry is None:
        telemetry = telemetry_from_env()
    if spans is None:
        spans = spans_from_env()
    system = AcceleratorSystem(
        graph, algorithm, config, use_hashing=use_hashing, use_dbg=use_dbg,
        source=source, telemetry=telemetry, spans=spans,
    )
    result = system.run(
        max_iterations=iteration_budget(algorithm, quick)
    )
    _normalize_observability_stats(result)
    return system, result


# -- parallel sweep runner ---------------------------------------------------


def default_jobs():
    """Worker count for sweeps: ``REPRO_JOBS`` env, else the CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


@dataclass
class SweepPolicy:
    """Resilience policy for :func:`run_points`.

    The default policy is inert and keeps the original fast path (an
    exception in any point aborts the sweep).  Any of the knobs below
    activates the hardened runner: one sandbox process per point, so a
    crash or hang is isolated to that point and the rest of the sweep
    continues.

    * ``timeout`` -- wall-clock seconds per point attempt; an
      over-budget worker is terminated and the attempt counts as a
      failure.
    * ``retries`` -- extra attempts per point after the first failure,
      spaced by exponential backoff (``backoff * 2**(attempt-1)``
      seconds).
    * ``journal`` -- path of a JSON-lines results journal: every
      completed point is appended (fingerprint + pickled payload) as
      soon as it finishes, so a killed sweep loses at most the points
      that were in flight.
    * ``resume`` -- reuse journal entries whose fingerprint matches
      instead of re-running those points.
    * ``checkpoint_dir`` -- directory of per-point snapshots (keyed by
      point fingerprint); a timed-out or crashed point's retry resumes
      from its last snapshot instead of starting over.
    * ``checkpoint_interval`` -- snapshot cadence in cycles (default:
      :data:`repro.checkpoint.DEFAULT_INTERVAL`).
    """

    timeout: float = None
    retries: int = 0
    backoff: float = 1.0
    journal: str = None
    resume: bool = False
    checkpoint_dir: str = None
    checkpoint_interval: int = None

    @property
    def active(self):
        return (self.timeout is not None or self.retries > 0
                or self.journal is not None
                or self.checkpoint_dir is not None)


_POLICY = SweepPolicy()


def configure_sweep(timeout=None, retries=0, backoff=1.0, journal=None,
                    resume=False, checkpoint_dir=None,
                    checkpoint_interval=None):
    """Install the process-wide sweep policy (see :class:`SweepPolicy`)."""
    global _POLICY
    _POLICY = SweepPolicy(timeout=timeout, retries=retries, backoff=backoff,
                          journal=journal, resume=resume,
                          checkpoint_dir=checkpoint_dir,
                          checkpoint_interval=checkpoint_interval)
    return _POLICY


def sweep_policy():
    return _POLICY


class SweepFailure(RuntimeError):
    """One or more sweep points failed permanently.

    ``failures`` maps point index to the final error description;
    ``completed`` is how many points did finish (and, with a journal,
    were checkpointed for ``--resume``).
    """

    def __init__(self, message, failures, completed):
        super().__init__(message)
        self.failures = failures
        self.completed = completed


# Version of the journal record layout.  Written into every record;
# resume treats records with a *newer* major schema as unusable (the
# payload layout may have changed) but accepts older/missing versions
# -- payload decoding is guarded either way, so a stale or corrupt
# entry degrades to "re-run that point", never a crash.
JOURNAL_SCHEMA = 2


def _fingerprint(point):
    """Stable identity of a point across processes (journal key).

    ``repr`` of the (frozen-ish) dataclass covers every field that
    affects the simulation; dataclass reprs are deterministic.
    """
    return hashlib.sha256(repr(point).encode("utf-8")).hexdigest()[:24]


def _decode_payload(record):
    """Payload of a journal record, or None if it cannot be trusted.

    Journals survive code changes (that is their point), so the pickled
    payload may have been written by a different code version; any
    decode error -- truncated base64, missing classes, changed pickle
    layout, newer schema -- means the point is simply re-run.
    """
    if record.get("schema", 1) > JOURNAL_SCHEMA:
        return None
    try:
        return pickle.loads(base64.b64decode(record["payload"]))
    except Exception:
        return None


def _load_journal(path):
    """Completed entries from a journal, keyed by fingerprint.

    Tolerates a truncated final line (the signature of a sweep killed
    mid-write): unparseable lines are skipped, not fatal.
    """
    entries = {}
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return entries
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # The signature of a sweep killed mid-append.  The
                # record is unusable (its point re-runs), but resume
                # must say so rather than silently shrink the cache.
                warnings.warn(
                    f"{path}:{lineno}: skipping unparseable journal "
                    f"record (sweep killed mid-write?); the point will "
                    f"be re-run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if record.get("status") == "ok" and "payload" in record:
                entries[record.get("fingerprint")] = record
    return entries


def _sweep_child(worker, point, conn, checkpoint=None, resume=False):
    """Sandbox-process entry: run one point, ship the outcome back.

    ``checkpoint`` is a ``(snapshot_path, interval)`` pair: the child
    exports it as ``REPRO_CHECKPOINT`` so the point's system checkpoints
    itself, and -- on a retry attempt with a snapshot on disk -- as
    ``REPRO_RESUME`` so :func:`run_point` continues from the snapshot
    instead of starting over.  Env mutation happens only here, in the
    forked child, never in the sweep coordinator.
    """
    try:
        if checkpoint is not None:
            snapshot_path, interval = checkpoint
            os.environ["REPRO_CHECKPOINT"] = f"{snapshot_path}:{interval}"
            if resume and os.path.exists(snapshot_path):
                os.environ["REPRO_RESUME"] = snapshot_path
        result = worker(point)
        conn.send(("ok", result))
    except BaseException as error:  # noqa: BLE001 - isolate everything
        import traceback
        try:
            conn.send(("error", f"{error!r}\n{traceback.format_exc()}"))
        except Exception:
            pass
    finally:
        conn.close()


def _run_points_hardened(worker, points, jobs, policy):
    """Crash-isolated, journaled, retrying point runner.

    Each point runs in its own forked process; ``jobs`` bounds
    concurrency.  Hung points are terminated at the timeout, crashed
    or failed points retry with exponential backoff up to the retry
    budget, and every completion is appended to the journal before the
    next point is scheduled, so a killed sweep loses at most the
    in-flight points.
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    n = len(points)
    results = [None] * n
    done = [False] * n
    failures = {}
    journal_handle = None
    if policy.journal:
        if policy.resume:
            cached = _load_journal(policy.journal)
            for index, point in enumerate(points):
                record = cached.get(_fingerprint(point))
                if record is None:
                    continue
                payload = _decode_payload(record)
                if payload is not None:
                    results[index] = payload
                    done[index] = True
        journal_handle = open(policy.journal, "a", encoding="utf-8")
    checkpoint_interval = policy.checkpoint_interval
    if policy.checkpoint_dir:
        os.makedirs(policy.checkpoint_dir, exist_ok=True)
        if checkpoint_interval is None:
            from repro.checkpoint import DEFAULT_INTERVAL

            checkpoint_interval = DEFAULT_INTERVAL

    def point_checkpoint(index):
        if not policy.checkpoint_dir:
            return None
        snapshot_path = os.path.join(
            policy.checkpoint_dir, _fingerprint(points[index]) + ".snap"
        )
        return (snapshot_path, checkpoint_interval)

    def journal_write(record):
        if journal_handle is not None:
            journal_handle.write(json.dumps(record) + "\n")
            journal_handle.flush()

    pending = deque(
        (index, 1) for index in range(n) if not done[index]
    )  # (point index, attempt number)
    backoff_queue = []  # (ready walltime, index, attempt)
    running = {}  # index -> (process, conn, deadline, attempt)
    max_attempts = 1 + max(0, policy.retries)

    def finish(index, attempt, status, payload):
        point = points[index]
        if status == "ok":
            results[index] = payload
            done[index] = True
            journal_write({
                "schema": JOURNAL_SCHEMA,
                "index": index,
                "fingerprint": _fingerprint(point),
                "point": repr(point),
                "status": "ok",
                "attempt": attempt,
                "payload": base64.b64encode(
                    pickle.dumps(payload)
                ).decode("ascii"),
            })
            return
        if attempt < max_attempts:
            delay = policy.backoff * 2 ** (attempt - 1)
            backoff_queue.append(
                (time.monotonic() + delay, index, attempt + 1)
            )
            return
        failures[index] = payload
        journal_write({
            "schema": JOURNAL_SCHEMA,
            "index": index,
            "fingerprint": _fingerprint(point),
            "point": repr(point),
            "status": "fail",
            "attempt": attempt,
            "error": str(payload),
        })

    try:
        while pending or backoff_queue or running:
            now = time.monotonic()
            if backoff_queue:
                matured = [
                    entry for entry in backoff_queue if entry[0] <= now
                ]
                for entry in matured:
                    backoff_queue.remove(entry)
                    pending.append((entry[1], entry[2]))
            while pending and len(running) < jobs:
                index, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_sweep_child,
                    args=(worker, points[index], child_conn,
                          point_checkpoint(index), attempt > 1),
                )
                process.start()
                child_conn.close()
                deadline = (None if policy.timeout is None
                            else time.monotonic() + policy.timeout)
                running[index] = (process, parent_conn, deadline, attempt)
            progressed = False
            for index in list(running):
                process, conn, deadline, attempt = running[index]
                if conn.poll(0):
                    try:
                        status, payload = conn.recv()
                        process.join()
                    except EOFError:
                        # Pipe closed with no message: the worker died
                        # before it could report (hard crash).
                        process.join()
                        status, payload = (
                            "error",
                            f"worker crashed (exit code {process.exitcode})",
                        )
                    conn.close()
                    del running[index]
                    finish(index, attempt, status, payload)
                    progressed = True
                elif not process.is_alive():
                    exitcode = process.exitcode
                    conn.close()
                    del running[index]
                    finish(index, attempt, "error",
                           f"worker crashed (exit code {exitcode})")
                    progressed = True
                elif deadline is not None and time.monotonic() > deadline:
                    process.terminate()
                    process.join()
                    conn.close()
                    del running[index]
                    finish(index, attempt, "error",
                           f"timed out after {policy.timeout:g}s")
                    progressed = True
            if not progressed and (running or backoff_queue):
                time.sleep(0.02)
    finally:
        for process, conn, _deadline, _attempt in running.values():
            process.terminate()
            process.join()
            conn.close()
        if journal_handle is not None:
            journal_handle.close()

    if failures:
        summary = "; ".join(
            f"point {index} ({points[index]!r:.80}): {error}"
            for index, error in sorted(failures.items())
        )
        raise SweepFailure(
            f"{len(failures)} of {n} sweep points failed permanently "
            f"after {max_attempts} attempt(s) each: {summary}",
            failures=failures,
            completed=sum(done),
        )
    return results


def run_points(worker, points, jobs=None, policy=None):
    """Evaluate ``worker(point)`` for every point, preserving order.

    With ``jobs > 1`` (default: :func:`default_jobs`) the points run in
    a ``ProcessPoolExecutor``; ``worker`` must be a module-level
    callable and both points and results must pickle.  The returned
    list is always in input order, so sweep rows come out identical to
    the serial path.  ``REPRO_JOBS=1`` (or a single point) keeps
    everything in-process.

    When a :class:`SweepPolicy` is active (``policy`` argument or the
    process-wide :func:`configure_sweep` policy), points instead run in
    the hardened per-point sandbox runner with timeouts, retries, and a
    checkpoint journal; see :class:`SweepPolicy`.
    """
    points = list(points)
    if policy is None:
        policy = _POLICY
    if jobs is None:
        jobs = default_jobs()
    if policy.active:
        return _run_points_hardened(worker, points, max(1, jobs), policy)
    if jobs <= 1 or len(points) <= 1:
        return [worker(point) for point in points]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        return list(pool.map(worker, points))


@dataclass
class SweepPoint:
    """One picklable simulation point of a figure sweep.

    The graph is reloaded by key inside the worker process (benchmark
    graphs are generated deterministically, so this is cheap and avoids
    shipping edge arrays through pickles).  ``budget_quick`` overrides
    the iteration-budget switch independently of the graph scale (only
    Fig. 1 uses that).
    """

    graph_key: str
    algorithm: str
    config: object
    quick: bool = True
    budget_quick: bool = None
    use_hashing: bool = True
    use_dbg: bool = False
    source: int = 0

    KNOWN_ALGORITHMS = ("pagerank", "scc", "sssp", "bfs")

    def __post_init__(self):
        # Eager validation: a bad key must fail here, at sweep build
        # time, with a clear message -- not minutes later inside a
        # worker process as an opaque crash.
        if self.graph_key not in BENCHMARKS:
            known = ", ".join(sorted(BENCHMARKS))
            raise ValueError(
                f"unknown benchmark graph key {self.graph_key!r}; "
                f"known keys: {known}"
            )
        if self.algorithm not in self.KNOWN_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; known: "
                f"{', '.join(self.KNOWN_ALGORITHMS)}"
            )

    def load_graph(self):
        return bench_graph(self.graph_key, self.quick)


def simulate_point(point):
    """Module-level sweep worker: returns (RunResult, activity dict)."""
    budget_quick = point.budget_quick
    if budget_quick is None:
        budget_quick = point.quick
    system, result = run_point(
        point.load_graph(), point.algorithm, point.config,
        quick=budget_quick, use_hashing=point.use_hashing,
        use_dbg=point.use_dbg, source=point.source,
    )
    return result, EngineActivity.from_engine(system.engine).as_dict()


# Engine-activity tally across every sweep run in this process; the
# CLI and the benchmark harness print its summary line after each
# experiment (see repro.report.engine_summary_line).
_SWEEP_ACTIVITY = EngineActivity()


def sweep_activity():
    return _SWEEP_ACTIVITY


def reset_sweep_activity():
    global _SWEEP_ACTIVITY
    _SWEEP_ACTIVITY = EngineActivity()
    return _SWEEP_ACTIVITY


def run_sweep(points, jobs=None):
    """Run a figure's points (possibly in parallel); list of RunResults.

    Engine-activity counters from every point -- local or from worker
    processes -- are merged into the process-wide tally.
    """
    results = []
    for result, activity in run_points(simulate_point, points, jobs):
        _SWEEP_ACTIVITY.merge(activity)
        results.append(result)
    return results
