"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(quick=True)`` returning (rows, text); quick
mode uses shrunken benchmark graphs and iteration caps so the default
``pytest benchmarks/`` sweep finishes in minutes, while
``REPRO_FULL_SUITE=1`` (or ``quick=False``) runs the full scaled suite.
EXPERIMENTS.md records the measured outputs against the paper's claims.
"""

from repro.experiments import common

__all__ = ["common"]
