"""Fig. 11 -- throughput across MOMS architectures and algorithms.

Sweeps the named design points (shared / private / two-level /
traditional) over the benchmark suite for PageRank, SCC and SSSP and
reports GTEPS per (architecture, benchmark) plus geometric means.

Expected shape (paper Section V-B): two-level architectures lead in
geomean; shared-only MOMSes lose to bank conflicts; private-only and
traditional caches stay competitive on the high-locality web crawls.
"""

from repro.accel.config import named_architectures
from repro.experiments.common import (
    bench_graph,
    quick_benchmarks,
    quick_channels,
    run_point,
)
from repro.report import format_table, geomean


QUICK_ARCHS = (
    "16/16 shared",
    "16 private 256k",
    "16/16 two-level",
    "20/8 two-level",
    "18/16 traditional",
)


def run(quick=True, algorithms=("pagerank", "scc", "sssp"),
        n_channels=None):
    if n_channels is None:
        n_channels = quick_channels(quick)
    benchmarks = quick_benchmarks(quick)
    rows = []
    for algorithm in algorithms:
        architectures = named_architectures(algorithm, n_channels)
        names = QUICK_ARCHS if quick else tuple(architectures)
        for name in names:
            config = architectures[name]
            gteps = {}
            for key in benchmarks:
                graph = bench_graph(key, quick)
                _, result = run_point(graph, algorithm, config, quick)
                gteps[key] = result.gteps
            row = {"algorithm": algorithm, "architecture": name}
            row.update({key: gteps[key] for key in benchmarks})
            row["geomean"] = geomean(list(gteps.values()))
            rows.append(row)
    text = format_table(
        rows, title="Fig. 11 -- GTEPS by architecture and benchmark"
    )
    return rows, text


def best_architecture(rows, algorithm):
    """Architecture with the highest geomean for *algorithm*."""
    candidates = [r for r in rows if r["algorithm"] == algorithm]
    return max(candidates, key=lambda r: r["geomean"])
