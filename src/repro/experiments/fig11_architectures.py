"""Fig. 11 -- throughput across MOMS architectures and algorithms.

Sweeps the named design points (shared / private / two-level /
traditional) over the benchmark suite for PageRank, SCC and SSSP and
reports GTEPS per (architecture, benchmark) plus geometric means.

Expected shape (paper Section V-B): two-level architectures lead in
geomean; shared-only MOMSes lose to bank conflicts; private-only and
traditional caches stay competitive on the high-locality web crawls.
"""

from repro.accel.config import named_architectures
from repro.experiments.common import (
    SweepPoint,
    quick_benchmarks,
    quick_channels,
    run_sweep,
)
from repro.report import format_table, geomean


QUICK_ARCHS = (
    "16/16 shared",
    "16 private 256k",
    "16/16 two-level",
    "20/8 two-level",
    "18/16 traditional",
)


def run(quick=True, algorithms=("pagerank", "scc", "sssp"),
        n_channels=None):
    if n_channels is None:
        n_channels = quick_channels(quick)
    benchmarks = quick_benchmarks(quick)
    points = []
    labels = []  # (algorithm, architecture) per row of the sweep
    for algorithm in algorithms:
        architectures = named_architectures(algorithm, n_channels)
        names = QUICK_ARCHS if quick else tuple(architectures)
        for name in names:
            config = architectures[name]
            labels.append((algorithm, name))
            points.extend(
                SweepPoint(key, algorithm, config, quick)
                for key in benchmarks
            )
    results = run_sweep(points)
    rows = []
    for index, (algorithm, name) in enumerate(labels):
        chunk = results[index * len(benchmarks):(index + 1) * len(benchmarks)]
        gteps = {key: result.gteps
                 for key, result in zip(benchmarks, chunk)}
        row = {"algorithm": algorithm, "architecture": name}
        row.update({key: gteps[key] for key in benchmarks})
        row["geomean"] = geomean(list(gteps.values()))
        rows.append(row)
    text = format_table(
        rows, title="Fig. 11 -- GTEPS by architecture and benchmark"
    )
    return rows, text


def best_architecture(rows, algorithm):
    """Architecture with the highest geomean for *algorithm*."""
    candidates = [r for r in rows if r["algorithm"] == algorithm]
    return max(candidates, key=lambda r: r["geomean"])
