"""Fig. 14 -- throughput scalability with DDR4 channel count.

Runs the 16/16 two-level design on 1, 2 and 4 channels for PageRank
(with the FabGraph analytical series, as the paper plots) and for SCC
(the paper's cleanest memory-bound scaling case: constant frequency,
no RAW stalls).  Expected shape: the memory-bound benchmarks scale
with channels on SCC; the compute-bound ones saturate and can even
lose a little on 4 channels through the lower clock (more SLR
crossings); FabGraph's internal L1<->L2 bandwidth caps its scaling.
"""

from repro.accel.config import named_architectures
from repro.baselines.fabgraph import FabGraphModel
from repro.experiments.common import (
    SweepPoint,
    bench_graph,
    quick_benchmarks,
    run_sweep,
)
from repro.report import format_table

CHANNELS = (1, 2, 4)


def run(quick=True, arch_name="16/16 two-level"):
    benchmarks = quick_benchmarks(quick)
    # FabGraph capacities scaled like our structures (same factor as
    # the benchmark graphs: ~1000x plus the bench-mode shrink).
    fabgraph = FabGraphModel().scaled(1 / 1000 / (6 if quick else 1))
    points = []
    labels = []
    for algorithm in ("pagerank", "scc"):
        for key in benchmarks:
            labels.append((algorithm, key))
            points.extend(
                SweepPoint(
                    key, algorithm,
                    named_architectures(algorithm, n_channels)[arch_name],
                    quick,
                )
                for n_channels in CHANNELS
            )
    results = run_sweep(points)
    rows = []
    for index, (algorithm, key) in enumerate(labels):
        graph = bench_graph(key, quick)
        chunk = results[index * len(CHANNELS):(index + 1) * len(CHANNELS)]
        row = {"algorithm": algorithm, "benchmark": key}
        for n_channels, result in zip(CHANNELS, chunk):
            row[f"{n_channels}ch"] = result.gteps
        if algorithm == "pagerank":
            for n_channels in CHANNELS:
                row[f"FabGraph {n_channels}ch"] = fabgraph.pagerank_gteps(
                    graph.n_nodes, graph.n_edges, n_channels
                )
        row["scaling 1->4"] = (
            row["4ch"] / row["1ch"] if row["1ch"] else 0.0
        )
        rows.append(row)
    text = format_table(
        rows,
        title="Fig. 14 -- GTEPS vs DDR4 channels "
              f"({arch_name}; FabGraph model on PageRank)",
    )
    return rows, text
