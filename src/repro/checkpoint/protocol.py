"""The Snapshot protocol: which classes may appear in a snapshot.

Snapshots serialize the whole system object graph with pickle, which
preserves shared references and object identity (channels are wired
into many components; the fault hooks compare requesters with ``is``).
The *protocol* every stateful component implements is therefore:

1. **Pickle cleanly.**  Instance state is plain data -- ints, lists,
   deques, dicts, numpy arrays, other registered components.  Stored
   callables are module functions or bound methods (both pickle by
   name); lambdas and closures are banned from instance state.  The
   one closure-carrying class, :class:`~repro.accel.template.
   AlgorithmSpec`, pickles via a rebuild recipe instead.
2. **Be registered here.**  :data:`SNAPSHOT_REGISTRY` is the explicit
   inventory of snapshot-carried classes; :func:`audit_system` walks a
   real pickle of a built system and fails on any ``repro.*`` class
   that is not in the inventory.  Adding a stateful component without
   deciding its snapshot story breaks the audit test, loudly.

Deliberately *not* part of a snapshot (and why it is sound):

* **Token freelists** (``MomsRequest._pool`` and friends) -- class
  attributes, so pickle never touches them.  Pooling is
  semantics-neutral by construction (PR 4): a resumed run simply
  refills its freelists from fresh allocations.
* **Pool counters** (:func:`repro.core.messages.pool_stats`) --
  process-local allocation telemetry, not simulated state.
* **Environment knobs** (``REPRO_ENGINE``, ``REPRO_KERNELS``,
  ``REPRO_POOL``) -- resolved into instance flags at construction
  time, so the snapshot inherently carries the modes it was built
  under and the restoring process's environment cannot skew them.
"""

import io
import pickle

SNAPSHOT_REGISTRY = {}

# Classes deliberately NOT snapshot state, by name, with the reason.
# The static completeness pass (simlint R11) accepts a class stored
# into system state either through the registry or through an entry
# here; an entry forces the "rebuilt, not pickled" decision to be
# written down.  Runtime restore never consults this table -- excluded
# classes simply must not appear in a pickled system.
SNAPSHOT_EXCLUDED = {}


def register(cls, note=""):
    """Declare *cls* snapshot-carried (see the module docstring)."""
    SNAPSHOT_REGISTRY[cls] = note or cls.__doc__ or ""
    return cls


class SnapshotAuditError(RuntimeError):
    """A pickled system contained unregistered ``repro.*`` classes."""


def _register_all():
    """Populate the registry with every stateful simulator class.

    Grouped by subsystem; the note says what state the class carries
    into a snapshot.  Import cost is paid once, on first audit or
    registry query -- the save path never needs this.
    """
    from repro.accel.config import ArchitectureConfig
    from repro.accel.pe import (
        BurstRequester,
        PEStats,
        ProcessingElement,
        _EdgeColumns,
    )
    from repro.accel.scheduler import Job, Scheduler
    from repro.accel.system import AcceleratorSystem
    from repro.accel.template import AlgorithmSpec
    from repro.core.bank import BankParams, BankStats, MomsBank
    from repro.core.cache import CacheArray, CacheStats
    from repro.core.hierarchy import (
        DramDownstream,
        HierarchySizes,
        MemoryHierarchy,
        MomsDownstream,
    )
    from repro.core.mshr import (
        AssociativeMshrFile,
        CuckooMshrFile,
        MshrEntry,
        MshrStats,
    )
    from repro.core.messages import MomsRequest, MomsResponse
    from repro.core.subentry import ColumnarChain, SubentryStats, SubentryStore
    from repro.fabric.arbiter import RoundRobinArbiter
    from repro.fabric.area import AreaModel
    from repro.fabric.crossbar import Crossbar
    from repro.fabric.crossing import DieCrossing
    from repro.fabric.design import DesignDescription
    from repro.fabric.floorplan import Floorplan
    from repro.fabric.frequency import FrequencyModel
    from repro.faults.ledger import TokenLedger, _Scope
    from repro.faults.plan import (
        FaultController,
        FaultPlan,
        FaultState,
        Window,
    )
    from repro.faults.watchdog import Watchdog
    from repro.graph.coo import Graph
    from repro.graph.encoding import EdgeCodec
    from repro.graph.layout import GraphLayout
    from repro.graph.partition import Partitioning
    from repro.mem.dram import (
        DramChannel,
        DramStats,
        DramTimings,
        MemRequest,
        MemResponse,
        _Segment,
    )
    from repro.mem.interleave import AddressInterleaver
    from repro.mem.system import MemorySystem
    from repro.sim.channel import Channel, DelayLine, SoaChannel
    from repro.sim.engine import Engine, LegacyEngine
    from repro.telemetry.collector import (
        LatencyHistogram,
        Telemetry,
        TelemetryConfig,
        _Account,
    )
    from repro.checkpoint.runner import Checkpointer
    from repro.tracing.spans import FlightRecorder, SpansConfig, SpanTracer

    for cls, note in (
        # simulation kernel
        (Engine, "now/counters, wake set, timer heap, channel list"),
        (LegacyEngine, "as Engine (all-tick schedule)"),
        (Channel, "ring buffer, head/visible/staged cursors, waiters"),
        (SoaChannel, "as Channel plus struct-of-arrays field columns"),
        (DelayLine, "in-flight (ready_time, token) queue"),
        # accelerator
        (AcceleratorSystem, "component graph + externalized run-loop state"),
        (ProcessingElement, "phase machine, BRAM arrays, edge backlog"),
        (PEStats, "counters"),
        (_EdgeColumns, "decoded edge-beat columns awaiting dispatch"),
        (BurstRequester, "outstanding DMA burst bookkeeping"),
        (Scheduler, "job queue, active-source flags, counters"),
        (Job, "one (src, dst) interval work item"),
        (AlgorithmSpec, "rebuilt from its get_spec recipe (closures)"),
        (ArchitectureConfig, "frozen sizing parameters"),
        # MOMS core
        (MemoryHierarchy, "banks, crossbars, ports, kernel mode"),
        (MomsBank, "pipeline state, drain cursors, stats"),
        (BankParams, "frozen sizing"),
        (BankStats, "counters"),
        (CuckooMshrFile, "cuckoo tables, victim state, slot memo"),
        (AssociativeMshrFile, "entry list"),
        (MshrEntry, "tag + subentry chain head"),
        (MshrStats, "counters"),
        (SubentryStore, "scalar free-list store"),
        (ColumnarChain, "columnar subentry chains"),
        (SubentryStats, "counters"),
        (CacheArray, "tag/valid arrays, LRU state, stats"),
        (CacheStats, "counters"),
        (DramDownstream, "line-request issue counters"),
        (MomsDownstream, "line-request issue counters"),
        (HierarchySizes, "frozen sizing"),
        (MomsRequest, "in-flight MOMS request token"),
        (MomsResponse, "in-flight MOMS response token"),
        # memory system
        (MemorySystem, "functional byte image + channel list"),
        (AddressInterleaver, "frozen channel-interleave map"),
        (DramChannel, "scheduled-response queue, segment state, stats"),
        (_Segment, "one in-service line's beat schedule"),
        (DramTimings, "frozen timing parameters"),
        (DramStats, "counters"),
        (MemRequest, "in-flight DRAM request token"),
        (MemResponse, "in-flight DRAM response token"),
        # fabric
        (RoundRobinArbiter, "grant pointer"),
        (Crossbar, "per-output grant pointers"),
        (DieCrossing, "die-boundary latency stage"),
        (AreaModel, "frozen area table"),
        (DesignDescription, "frozen design point"),
        (Floorplan, "frozen die assignment"),
        (FrequencyModel, "frozen frequency table"),
        # graph + layout
        (Graph, "COO arrays"),
        (EdgeCodec, "frozen field widths"),
        (GraphLayout, "interval addressing + active-flag map"),
        (Partitioning, "interval tables"),
        # robustness + observability hooks
        (TokenLedger, "outstanding-token scoreboard"),
        (_Scope, "per-scope issue/retire counters"),
        (Watchdog, "progress baseline + next_check"),
        (FaultState, "fault stats + splitmix chain"),
        (FaultController, "window edge state"),
        (FaultPlan, "declarative schedule"),
        (Window, "periodic window triple"),
        (Telemetry, "samples, accounts, histograms, spans"),
        (TelemetryConfig, "frozen config"),
        (LatencyHistogram, "log2 buckets"),
        (_Account, "stall attribution buckets"),
        (Checkpointer, "schedule + last-write info (path travels along)"),
        (SpanTracer, "in-flight span/fetch maps, seq counters, fan-ins"),
        (SpansConfig, "frozen sampling config"),
        (FlightRecorder, "bounded last-N-events ring"),
    ):
        register(cls, note)


_REGISTERED = False


def ensure_registry():
    """Idempotently populate and return the registry."""
    global _REGISTERED
    if not _REGISTERED:
        _register_all()
        _REGISTERED = True
    return SNAPSHOT_REGISTRY


class _AuditPickler(pickle.Pickler):
    """Pickler that records every ``repro.*`` instance class it meets."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen = set()

    def reducer_override(self, obj):
        cls = type(obj)
        if getattr(cls, "__module__", "").startswith("repro."):
            self.seen.add(cls)
        return NotImplemented  # always fall back to normal reduction


def audit_system(system):
    """Pickle *system* and verify every repro class met is registered.

    Returns the set of repro classes the snapshot carries.  Raises
    :class:`SnapshotAuditError` naming any unregistered class -- the
    signal that a new stateful component was added without deciding
    its snapshot story.
    """
    registry = ensure_registry()
    pickler = _AuditPickler(io.BytesIO(), protocol=pickle.HIGHEST_PROTOCOL)
    pickle_error = None
    try:
        pickler.dump(system)
    except Exception as error:  # report unregistered classes first
        pickle_error = error
    unregistered = sorted(
        f"{cls.__module__}.{cls.__qualname__}"
        for cls in pickler.seen if cls not in registry
    )
    if unregistered:
        raise SnapshotAuditError(
            "classes reached by a system snapshot but not declared in "
            "repro.checkpoint.protocol.SNAPSHOT_REGISTRY: "
            + ", ".join(unregistered)
            + " -- register each (with a note on what state it carries) "
            "after checking its instance state pickles cleanly"
        )
    if pickle_error is not None:
        raise SnapshotAuditError(
            f"system failed to pickle during audit: {pickle_error!r}"
        ) from pickle_error
    return pickler.seen
