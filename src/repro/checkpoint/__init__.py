"""Checkpoint/restore, deterministic replay, and chaos tooling.

Public surface:

* :func:`save_snapshot` / :func:`load_snapshot` / :func:`read_header`
  -- the versioned, checksummed snapshot container.
* :class:`Checkpointer` -- engine hook writing periodic snapshots
  (``REPRO_CHECKPOINT="path[:interval]"``).
* :func:`restore_system` / :func:`replay_snapshot` -- bring a snapshot
  back mid-iteration and run it to completion.
* :func:`audit_system` / :data:`SNAPSHOT_REGISTRY` -- the Snapshot
  protocol inventory (see :mod:`repro.checkpoint.protocol`).
* :func:`run_chaos` -- the SIGKILL/resume harness
  (``python -m repro chaos``).
"""

from repro.checkpoint.protocol import (
    SNAPSHOT_REGISTRY,
    SnapshotAuditError,
    audit_system,
    ensure_registry,
    register,
)
from repro.checkpoint.runner import (
    DEFAULT_INTERVAL,
    Checkpointer,
    replay_snapshot,
    restore_system,
)
from repro.checkpoint.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_MAGIC,
    SnapshotError,
    load_snapshot,
    read_header,
    save_snapshot,
)

__all__ = [
    "SNAPSHOT_REGISTRY",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_MAGIC",
    "SnapshotAuditError",
    "SnapshotError",
    "Checkpointer",
    "DEFAULT_INTERVAL",
    "audit_system",
    "ensure_registry",
    "load_snapshot",
    "read_header",
    "register",
    "replay_snapshot",
    "restore_system",
    "save_snapshot",
]
