"""Snapshot file format: versioned, compressed, checksummed, atomic.

A snapshot is the complete pickled object graph of one
:class:`~repro.accel.system.AcceleratorSystem` taken between engine
steps, wrapped in a self-describing container::

    magic "RPSN" | u32 header length | JSON header | zlib(pickle(system))

The JSON header carries the format version, the snapshot cycle, the
engine kind and kernel mode the system was built under, the workload
identity, and a sha256 of the compressed payload.  Readers verify the
magic, reject *newer* format versions (older ones are accepted -- the
compatibility policy is DESIGN.md Section 6.7), and verify the checksum
before unpickling, so a torn or corrupted file fails loudly instead of
resuming garbage.

Writes go to a temporary file in the destination directory, are
fsynced, and are moved into place with ``os.replace`` -- readers
therefore only ever observe a complete, valid snapshot, even if the
writer is SIGKILLed mid-write (the property the chaos harness leans
on).
"""

import hashlib
import json
import os
import pickle
import struct
import tempfile
import zlib

SNAPSHOT_MAGIC = b"RPSN"
SNAPSHOT_FORMAT = 1

_HEADER_LEN = struct.Struct(">I")


class SnapshotError(RuntimeError):
    """A snapshot could not be written, read, or trusted."""


def _engine_kind(engine):
    # Local import keeps module import order trivial.
    from repro.sim.engine import LegacyEngine

    return "legacy" if isinstance(engine, LegacyEngine) else "demand"


def save_snapshot(system, path, meta=None):
    """Atomically write *system*'s snapshot to *path*; returns the header.

    ``meta`` (a JSON-safe dict) is merged into the header -- the
    checkpointer records its interval and write ordinal there.
    """
    try:
        payload = pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise SnapshotError(
            f"system state is not snapshot-safe: {error!r}; every "
            f"stateful component must pickle (see "
            f"repro.checkpoint.protocol and DESIGN.md Section 6.7)"
        ) from error
    compressed = zlib.compress(payload, 1)
    header = {
        "format": SNAPSHOT_FORMAT,
        "cycle": system.engine.now,
        "engine": _engine_kind(system.engine),
        "kernels": system.hierarchy.kernels,
        "algorithm": system.spec.name,
        "organization": system.config.design.organization,
        "iterations": getattr(system, "_run_iterations", 0),
        "payload_bytes": len(compressed),
        "pickle_bytes": len(payload),
        "sha256": hashlib.sha256(compressed).hexdigest(),
    }
    if meta:
        header.update(meta)
    blob = json.dumps(header, sort_keys=True).encode("utf-8")

    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, tmp = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(handle, "wb") as fh:
            fh.write(SNAPSHOT_MAGIC)
            fh.write(_HEADER_LEN.pack(len(blob)))
            fh.write(blob)
            fh.write(compressed)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return header


def _read_header_from(fh, path):
    """Parse the header from an open snapshot file; leaves *fh* at the
    first payload byte."""
    magic = fh.read(len(SNAPSHOT_MAGIC))
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"{path}: not a snapshot file (bad magic {magic!r})"
        )
    raw_len = fh.read(_HEADER_LEN.size)
    if len(raw_len) < _HEADER_LEN.size:
        raise SnapshotError(f"{path}: truncated snapshot header")
    (blob_len,) = _HEADER_LEN.unpack(raw_len)
    blob = fh.read(blob_len)
    if len(blob) < blob_len:
        raise SnapshotError(f"{path}: truncated snapshot header")
    try:
        header = json.loads(blob.decode("utf-8"))
    except ValueError as error:
        raise SnapshotError(
            f"{path}: snapshot header is not valid JSON"
        ) from error
    if header.get("format", 0) > SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: snapshot format {header.get('format')} is newer "
            f"than this code understands (<= {SNAPSHOT_FORMAT}); "
            f"replay it with the code version that wrote it"
        )
    return header


def read_header(path):
    """The JSON header of the snapshot at *path* (no payload decode)."""
    with open(path, "rb") as fh:
        return _read_header_from(fh, path)


def load_snapshot(path):
    """Verify and unpickle the snapshot at *path*.

    Returns ``(system, header)``.  The checksum is verified before
    unpickling; any mismatch (torn write that somehow bypassed the
    atomic rename, bit rot, truncation) raises :class:`SnapshotError`.
    """
    with open(path, "rb") as fh:
        header = _read_header_from(fh, path)
        compressed = fh.read()
    expected = header.get("payload_bytes")
    if expected is not None and len(compressed) != expected:
        raise SnapshotError(
            f"{path}: payload is {len(compressed)} bytes, header "
            f"promises {expected} (truncated or corrupted)"
        )
    digest = hashlib.sha256(compressed).hexdigest()
    if digest != header.get("sha256"):
        raise SnapshotError(
            f"{path}: payload checksum mismatch ({digest[:12]}... != "
            f"{str(header.get('sha256'))[:12]}...); snapshot is corrupted"
        )
    try:
        system = pickle.loads(zlib.decompress(compressed))
    except Exception as error:
        raise SnapshotError(
            f"{path}: snapshot payload failed to decode: {error!r} "
            f"(written by an incompatible code version?)"
        ) from error
    return system, header
