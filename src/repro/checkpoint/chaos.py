"""Chaos-resume harness: SIGKILL a run mid-flight, resume, compare.

The harness proves the checkpoint/restore path end to end under the
ugliest failure mode we can inject -- an uncatchable ``SIGKILL``
delivered at an exact, seeded simulation cycle (via the checkpointer's
``REPRO_CHAOS_KILL_AT`` hook).  For each kill:

1. a child process runs the workload with periodic checkpointing and
   dies at the kill cycle (no atexit handlers, no flushing -- exactly
   like an OOM kill);
2. a second child resumes from the last atomic snapshot and runs to
   completion;
3. the resumed result must be **bit-identical** to an uninterrupted
   baseline: final cycle count, iteration count, a sha256 over the
   result values, and a sha256 over the canonical stats JSON.

Workloads run in child processes (not in-process) so the kill is a
real process death and the resume is a real cold start in a fresh
interpreter.  Child/parent speak through a tiny env + JSON-file
protocol (`_child_main`); everything is seeded and deterministic.

CLI: ``python -m repro chaos [--kills N] [--seed S] ...``.
"""

import hashlib
import json
import os
import subprocess
import sys
import tempfile

_MASK64 = (1 << 64) - 1


def _mix(state):
    """splitmix64 step -- the repo's standard deterministic chain."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


def _child_main():
    """Entry point for chaos worker processes.

    Reads its workload from ``CHAOS_*`` env vars, runs (or resumes) it,
    and writes a result-fingerprint JSON to ``CHAOS_RESULT``.  The
    checkpointer configures itself from ``REPRO_CHECKPOINT`` /
    ``REPRO_CHAOS_KILL_AT`` as in any other run.
    """
    import numpy as np

    from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
    from repro.accel.system import AcceleratorSystem
    from repro.graph import web_graph

    algorithm = os.environ.get("CHAOS_ALGO", "pagerank")
    organization = os.environ.get("CHAOS_ORG", "shared")
    nodes = int(os.environ.get("CHAOS_NODES", "900"))
    edges = int(os.environ.get("CHAOS_EDGES", "4500"))
    seed = int(os.environ.get("CHAOS_GRAPH_SEED", "7"))
    max_iterations = int(os.environ.get("CHAOS_MAX_ITERS", "3"))
    result_path = os.environ["CHAOS_RESULT"]

    resume_from = os.environ.get("CHAOS_RESUME", "")
    if resume_from and os.path.exists(resume_from):
        from repro.checkpoint import restore_system

        system, _ = restore_system(resume_from)
        result = system.resume_run()
    else:
        graph = web_graph(nodes, edges, seed=seed)
        config = ArchitectureConfig(
            _design(4, 4, organization, algorithm, n_channels=2,
                    private_cache_kib=64),
            **SCALED_DEFAULTS,
        )
        system = AcceleratorSystem(graph, algorithm, config)
        result = system.run(max_iterations=max_iterations)

    fingerprint = {
        "cycles": int(result.cycles),
        "iterations": int(result.iterations),
        "values_sha256": hashlib.sha256(
            np.ascontiguousarray(result.values).tobytes()
        ).hexdigest(),
        "stats_sha256": hashlib.sha256(
            json.dumps(result.stats, sort_keys=True, default=str)
            .encode("utf-8")
        ).hexdigest(),
    }
    with open(result_path, "w", encoding="utf-8") as fh:
        json.dump(fingerprint, fh)


_CHILD_CMD = (sys.executable, "-c",
              "from repro.checkpoint.chaos import _child_main; _child_main()")


def _run_child(env, timeout):
    return subprocess.run(
        _CHILD_CMD, env=env, timeout=timeout,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )


def _read_result(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def run_chaos(algorithm="pagerank", organization="shared", kills=3,
              seed=2021, interval=2000, workdir=None, timeout=600,
              log=None):
    """Kill/resume *kills* times; returns the report dict.

    ``report["failures"]`` is empty iff every resumed run matched the
    uninterrupted baseline bit for bit.  Artifacts (snapshots, result
    fingerprints, the report) live under ``workdir`` for CI upload.
    """
    say = log or (lambda message: None)
    workdir = workdir or tempfile.mkdtemp(prefix="chaos-")
    os.makedirs(workdir, exist_ok=True)

    base_env = os.environ.copy()
    for key in ("REPRO_CHECKPOINT", "REPRO_CHAOS_KILL_AT", "CHAOS_RESUME"):
        base_env.pop(key, None)
    base_env.update(CHAOS_ALGO=algorithm, CHAOS_ORG=organization)

    say(f"[chaos] baseline: {algorithm}/{organization}")
    baseline_path = os.path.join(workdir, "baseline.json")
    env = dict(base_env, CHAOS_RESULT=baseline_path)
    proc = _run_child(env, timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"chaos baseline run failed (rc={proc.returncode}): "
            f"{proc.stderr.decode(errors='replace')[-2000:]}"
        )
    baseline = _read_result(baseline_path)
    say(f"[chaos] baseline cycles={baseline['cycles']} "
        f"iterations={baseline['iterations']}")

    # Seeded kill cycles in [interval + 1, 90% of the baseline run]:
    # late enough that at least one snapshot exists, early enough that
    # real work remains after the kill.
    span = max(1, int(baseline["cycles"] * 0.9) - interval - 1)
    state = (seed ^ 0xC8A9_0125) & _MASK64 or 1
    report = {
        "algorithm": algorithm,
        "organization": organization,
        "interval": interval,
        "seed": seed,
        "baseline": baseline,
        "kills": [],
        "failures": [],
    }

    for ordinal in range(kills):
        state, draw = _mix(state)
        kill_cycle = interval + 1 + draw % span
        snap = os.path.join(workdir, f"kill{ordinal}.snap")
        marker = os.path.join(workdir, f"kill{ordinal}.marker")
        result_path = os.path.join(workdir, f"kill{ordinal}.json")
        env = dict(
            base_env,
            CHAOS_RESULT=result_path,
            REPRO_CHECKPOINT=f"{snap}:{interval}",
            REPRO_CHAOS_KILL_AT=f"{kill_cycle}:{marker}",
        )
        say(f"[chaos] kill {ordinal}: SIGKILL at cycle {kill_cycle}")
        proc = _run_child(env, timeout)
        killed = proc.returncode != 0
        entry = {"kill_cycle": kill_cycle, "killed": killed,
                 "returncode": proc.returncode}
        if killed and not os.path.exists(marker):
            report["failures"].append(
                f"kill {ordinal}: child died (rc={proc.returncode}) but "
                f"not by the chaos hook: "
                f"{proc.stderr.decode(errors='replace')[-2000:]}"
            )
            report["kills"].append(entry)
            continue
        if killed:
            if not os.path.exists(snap):
                report["failures"].append(
                    f"kill {ordinal}: killed at cycle {kill_cycle} with "
                    f"no snapshot on disk (interval {interval})"
                )
                report["kills"].append(entry)
                continue
            from repro.checkpoint import read_header

            entry["resumed_from_cycle"] = read_header(snap)["cycle"]
            say(f"[chaos] kill {ordinal}: resuming from cycle "
                f"{entry['resumed_from_cycle']}")
            env = dict(env, CHAOS_RESUME=snap)
            proc = _run_child(env, timeout)
            if proc.returncode != 0:
                report["failures"].append(
                    f"kill {ordinal}: resume failed "
                    f"(rc={proc.returncode}): "
                    f"{proc.stderr.decode(errors='replace')[-2000:]}"
                )
                report["kills"].append(entry)
                continue
        resumed = _read_result(result_path)
        entry["result"] = resumed
        entry["match"] = resumed == baseline
        if not entry["match"]:
            report["failures"].append(
                f"kill {ordinal}: resumed result diverged from the "
                f"uninterrupted baseline: {resumed} != {baseline}"
            )
        report["kills"].append(entry)

    report_path = os.path.join(workdir, "chaos_report.json")
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    report["report_path"] = report_path
    say(f"[chaos] {kills - len(report['failures'])}/{kills} resumes "
        f"bit-identical; report at {report_path}")
    return report


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="SIGKILL runs at seeded cycles and verify that "
                    "resume-from-snapshot is bit-identical to an "
                    "uninterrupted run.",
    )
    parser.add_argument("--algorithm", default="pagerank")
    parser.add_argument("--organization", default="shared")
    parser.add_argument("--kills", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--interval", type=int, default=2000)
    parser.add_argument("--workdir", default=None,
                        help="artifact directory (default: a fresh tmpdir)")
    args = parser.parse_args(argv)

    report = run_chaos(
        algorithm=args.algorithm, organization=args.organization,
        kills=args.kills, seed=args.seed, interval=args.interval,
        workdir=args.workdir, log=print,
    )
    for failure in report["failures"]:
        print(f"[chaos] FAIL: {failure}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
