"""Periodic checkpointing, restore, and deterministic replay.

The :class:`Checkpointer` is the engine's third optional hook (after
the watchdog and the telemetry sampler, and polled *after* both, so a
snapshot captures whatever those hooks did this step and a resumed run
re-enters the step loop exactly where the original left it).  When
disabled it costs the engine one ``is None`` test per step -- the same
budget as the other hooks, gated in CI by
``benchmarks/bench_sim.py::bench_checkpoint_overhead``.

The checkpointer itself travels inside the snapshot: restoring brings
back its schedule, its path, and its write counters, so a resumed run
keeps checkpointing to the same file on the same cadence with no
re-configuration.

Chaos hook: when ``REPRO_CHAOS_KILL_AT="<cycle>:<marker_path>"`` is
set, the checkpointer delivers a *real* ``SIGKILL`` to its own process
at the first poll at or after ``<cycle>`` -- uncatchable, exactly like
an OOM kill or a preempted batch job.  The marker file makes the kill
one-shot: it is created immediately before the signal, so the resumed
process (which sees the marker) disarms instead of dying again.
"""

import os
import signal
import time

from repro.checkpoint.snapshot import load_snapshot, save_snapshot

DEFAULT_INTERVAL = 100_000

_NEVER = float("inf")


class Checkpointer:
    """Writes a snapshot of the attached system every *interval* cycles.

    The engine polls :meth:`poll` whenever ``now >= next_checkpoint``;
    :meth:`_rearm` keeps ``next_checkpoint`` at the earliest pending
    event (next write, or the chaos kill cycle) so the engine's
    per-step cost stays a single comparison.
    """

    def __init__(self, path, interval=DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError(f"checkpoint interval must be positive: {interval}")
        self.path = os.fspath(path)
        self.interval = int(interval)
        self.system = None
        self.last_path = None
        self.last_cycle = None
        self.writes = 0
        self.write_seconds = 0.0
        self.last_write_bytes = 0
        self._write_due = _NEVER
        self.next_checkpoint = _NEVER
        self._kill_at = None
        self._kill_marker = None
        kill_spec = os.environ.get("REPRO_CHAOS_KILL_AT", "").strip()
        if kill_spec:
            cycle, _, marker = kill_spec.partition(":")
            if not marker:
                raise ValueError(
                    f"REPRO_CHAOS_KILL_AT must be '<cycle>:<marker_path>', "
                    f"got {kill_spec!r}"
                )
            self._kill_at = int(cycle)
            self._kill_marker = marker

    @classmethod
    def from_spec(cls, spec):
        """Build from a ``path`` or ``path:interval`` string.

        This is the ``REPRO_CHECKPOINT`` environment syntax; a trailing
        ``:<digits>`` is the interval, anything else is part of the
        path.
        """
        path, _, tail = str(spec).rpartition(":")
        if path and tail.isdigit():
            return cls(path, interval=int(tail))
        return cls(str(spec))

    def attach(self, system):
        self.system = system
        system.engine.checkpointer = self
        self._write_due = system.engine.now + self.interval
        self._rearm()

    def _rearm(self):
        due = self._write_due
        if self._kill_at is not None and self._kill_at < due:
            due = self._kill_at
        self.next_checkpoint = due

    def poll(self, engine):
        """Fire whatever is due at ``engine.now``; called by the engine
        only when ``now >= next_checkpoint``."""
        now = engine.now
        if self._kill_at is not None and now >= self._kill_at:
            self._maybe_kill()
        if now >= self._write_due:
            self.write()
        self._rearm()

    def _maybe_kill(self):
        if os.path.exists(self._kill_marker):
            # The marker is written immediately before the SIGKILL, so
            # its presence means this process is the post-kill resume:
            # disarm instead of dying in a loop.
            self._kill_at = None
            return
        with open(self._kill_marker, "w", encoding="utf-8") as fh:
            fh.write(f"{os.getpid()} {self.system.engine.now}\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    def write(self):
        """Write a snapshot now; returns its header.

        Counters and the schedule are advanced *before* pickling so the
        state inside the snapshot is the post-checkpoint state: a
        restored run resumes with this write already on the books and
        the next one due a full interval later.
        """
        now = self.system.engine.now
        self.writes += 1
        self.last_cycle = now
        self.last_path = self.path
        self._write_due = now + self.interval
        self._rearm()
        started = time.perf_counter()
        header = save_snapshot(
            self.system, self.path,
            meta={"interval": self.interval, "ordinal": self.writes},
        )
        self.write_seconds += time.perf_counter() - started
        self.last_write_bytes = header["payload_bytes"]
        return header

    def replay_command(self):
        """The ready-to-run CLI command replaying the last snapshot."""
        if self.last_path is None:
            return None
        return f"python -m repro replay {self.last_path}"


def restore_system(path):
    """Load the snapshot at *path*; returns ``(system, header)``.

    The system comes back mid-iteration with its engine, channels,
    in-flight tokens, hooks, and checkpointer exactly as pickled; call
    ``system.resume_run()`` to continue it to completion.
    """
    return load_snapshot(path)


def replay_snapshot(path):
    """Resume the snapshot at *path* to completion.

    Returns ``(result, header)`` where ``result`` is the same
    :class:`~repro.accel.system.RunResult` the uninterrupted run would
    have produced -- bit-identical cycle counts, stats, and values;
    that contract is enforced by ``tests/checkpoint/``.
    """
    system, header = load_snapshot(path)
    return system.resume_run(), header
