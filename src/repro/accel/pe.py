"""The processing element (paper Fig. 9 and Section IV-C/D).

Each PE processes one destination-interval job at a time:

1. pull a job from the scheduler;
2. DMA the interval's initial node values (and V_const for PageRank)
   from DRAM into BRAM -- one outstanding burst, 4 node writes/cycle;
3. fetch the job's edge pointers, then stream the active shards'
   compressed edges with multiple outstanding tagged bursts (beats may
   return out of order across DRAM channels; the shard tag supplies
   the implicit high source bits);
4. for every edge, fetch the source value through the MOMS -- treating
   each in-flight edge as a suspended hardware thread.  Unweighted
   graphs use the destination offset itself as the request ID
   (Fig. 10b: the MOMS stores the whole thread state); weighted graphs
   allocate IDs from a free queue and park (offset, weight) in a state
   memory (Fig. 10a).  use_local_src short-circuits sources resident
   in the current interval to BRAM;
5. run gather() through a pipeline of configurable depth with
   stall-on-RAW (the 4-cycle floating-point PageRank pipeline is what
   throttles the high-locality graphs in Fig. 11);
6. apply() and write the interval back, then notify the scheduler.
"""

import struct
from collections import deque

import numpy as np

from repro.graph.encoding import EDGE_DST_BITS, EDGE_SRC_BITS, TERMINATOR_BIT
from repro.mem.dram import LINE_BYTES, MemResponse, _acquire_request
from repro.sim import Component
from repro.sim.kernels import kernels_mode

IDLE = "idle"
INIT_CONST = "init_const"
INIT_VIN = "init_vin"
POINTERS = "pointers"
STREAM = "stream"
WRITEBACK = "writeback"

_SRC_MASK = (1 << EDGE_SRC_BITS) - 1
_DST_MASK = (1 << EDGE_DST_BITS) - 1
_U32 = struct.Struct("=I")  # native-endian u32, same layout numpy views use


class BurstRequester:
    """Issues (possibly channel-spanning) bursts into per-channel ports.

    Works directly off the address interleaver's piece list, so the
    capacity probe and beat count allocate nothing; ``issue`` draws its
    piece requests from the :class:`MemRequest` freelist.
    """

    def __init__(self, mem, channel_ports, respond_to):
        self.mem = mem
        self.interleaver = mem.interleaver
        self.channel_ports = channel_ports
        self.respond_to = respond_to

    def can_issue(self, addr, nbytes, is_write=False):
        pieces = self.interleaver.split(addr, nbytes)
        ports = self.channel_ports
        if len(pieces) == 1:
            return ports[pieces[0][0]].can_push()
        needed = {}
        for channel, _local, _nbytes, _global_addr in pieces:
            needed[channel] = needed.get(channel, 0) + 1
        # simlint: disable=R1 -- filled in piece order just above, and
        # dict iteration is insertion-ordered; also order-insensitive
        # (an all-must-pass capacity check), so no cycle decision rides
        # on it.
        for channel, count in needed.items():
            if not ports[channel].can_push_n(count):
                return False
        return True

    def beats_for(self, addr, nbytes):
        """Total response beats a read burst will produce.

        A burst split across interleave granules yields one piece per
        channel, and an unaligned piece rounds up to whole lines -- the
        sum can exceed ceil(nbytes / 64).
        """
        return sum(
            -(-piece_bytes // LINE_BYTES)
            for _c, _l, piece_bytes, _g in self.interleaver.split(addr, nbytes)
        )

    def issue(self, addr, nbytes, tag, is_write=False, data=None):
        pieces = self.interleaver.split(addr, nbytes)
        ports = self.channel_ports
        respond_to = self.respond_to
        if is_write:
            data = np.asarray(data, dtype=np.uint8)
        for channel, _local, piece_bytes, global_addr in pieces:
            piece_data = None
            if is_write:
                offset = global_addr - addr
                piece_data = data[offset:offset + piece_bytes]
            request = _acquire_request(global_addr, piece_bytes, "burst",
                                       is_write, tag, respond_to, piece_data)
            ports[channel].push(request)
        return len(pieces)


class _EdgeColumns:
    """Columnar decoded-edge backlog (``REPRO_KERNELS=vector``).

    The scalar path queues one (src, dst, weight) tuple per edge; the
    vector path decodes a whole DMA beat with numpy and lands the
    results here as parallel columns, including two precomputed ones
    the scalar path derives per edge at dispatch time: the BRAM-local
    mask and the MOMS byte address of each source value.  Consumption
    stays one edge per cycle (an architectural rate), so the head is an
    index that advances and periodically compacts instead of a popleft.

    ``len()``/truthiness report the undispatched count -- telemetry and
    the stream bookkeeping use it exactly like the scalar deque's.
    """

    __slots__ = ("src", "dst", "w", "local", "addr", "head")

    _COMPACT_AT = 1024  # amortized O(1): drop the consumed prefix

    def __init__(self):
        self.src = []
        self.dst = []
        self.w = []
        self.local = []
        self.addr = []
        self.head = 0

    def __len__(self):
        return len(self.src) - self.head

    def advance(self):
        """Consume the head edge."""
        head = self.head + 1
        if head >= self._COMPACT_AT:
            del self.src[:head]
            del self.dst[:head]
            del self.w[:head]
            del self.local[:head]
            del self.addr[:head]
            head = 0
        self.head = head


class PEStats:
    def __init__(self):
        self.edges_processed = 0
        self.raw_stalls = 0
        self.moms_request_stalls = 0
        self.id_stalls = 0
        self.jobs_completed = 0
        self.local_reads = 0
        self.moms_reads = 0
        self.busy_cycles = 0
        self.cycles_by_phase = {}

    def note_phase(self, phase):
        self.cycles_by_phase[phase] = self.cycles_by_phase.get(phase, 0) + 1


class ProcessingElement(Component):
    """One out-of-order multithreaded PE."""

    demand_driven = True
    # Opt-in invariant ledger; class attribute so the unchecked path
    # pays one "is None" test per MOMS event (see repro.faults).
    _ledger = None
    # Opt-in telemetry collector (repro.telemetry), same gating: one
    # "is None" test per tick / phase change / MOMS event when unset.
    _tele = None
    # Opt-in span tracer (repro.tracing), same gating: one "is None"
    # test per MOMS issue/retire when unset.
    _trace = None

    def __init__(self, pe_index, spec, layout, mem, config,
                 moms_req, moms_resp, burst_ports, dma_resp,
                 job_channel, done_channel):
        self.pe_index = pe_index
        self.spec = spec
        self.layout = layout
        self.mem = mem
        self.config = config
        self.moms_req = moms_req
        self.moms_resp = moms_resp
        self.dma = BurstRequester(mem, burst_ports, dma_resp)
        self.dma_resp = dma_resp
        self.job_channel = job_channel
        self.done_channel = done_channel
        self.stats = PEStats()

        # Wake on anything that can unblock the state machine: a new
        # job, returned DMA beats / write acks, and MOMS responses.
        # Purely internal progress (BRAM applies, gather commits, burst
        # issue slots) is re-armed per tick in _arm(), which also spins
        # while a burst port is full; a full MOMS request port arms a
        # one-shot space wake at the stall site instead of a static
        # subscription, so bank-side pops stop waking PEs with nothing
        # to send.
        job_channel.subscribe_data(self)
        dma_resp.subscribe_data(self)
        moms_resp.subscribe_data(self)

        part = layout.partitioning
        self._nd = part.n_dst
        self._ns = part.n_src
        self._bram = np.zeros(self._nd, dtype=np.float64)
        self._const_bram = np.zeros(self._nd, dtype=np.float64)
        self._base_const = 0.0  # global scalar constant (set per run)

        # Weighted-graph MOMS interface (Fig. 10a).
        self._free_ids = deque(range(config.id_pool_size))
        self._id_state = {}

        self._phase = IDLE
        self._job = None
        self._engine = None
        self._pipeline = deque()  # (commit_cycle, dst_off, new, old)
        # Columnar engine v2: resolved at construction (like the bank
        # kernels and REPRO_ENGINE), so one process can race both modes.
        self._vec = kernels_mode() == "vector"
        if self._vec:
            self._edge_queue = _EdgeColumns()
        else:
            self._edge_queue = deque()  # (src_node, dst_off, weight)
        self._decode_step = (self._decode_edge_beats_vec if self._vec
                             else self._decode_edge_beats)
        self._dispatch_step = (self._process_edges_vec if self._vec
                               else self._process_edges)
        # Mirror of len(self._edge_queue), maintained at the decode and
        # dispatch sites.  The stream loop and _arm() test the backlog
        # every tick; a plain int keeps that off the _EdgeColumns
        # __len__ path (a Python-level call, ~5x a deque's C check).
        self._edges_queued = 0
        self._decoded_backlog_limit = config.dma_queue_beats * 16
        self._outstanding_moms = 0

    # -- per-run configuration --------------------------------------------

    def configure_run(self, base_const):
        self._base_const = base_const

    # -- main tick ----------------------------------------------------------

    def tick(self, engine):
        self._engine = engine
        if self._tele is not None:
            self._tele.pe_before_tick(self, engine.now)
        phase = self._phase
        if phase == IDLE:
            self._tick_idle(engine)
        elif phase in (INIT_CONST, INIT_VIN):
            self._tick_init(engine)
        elif phase == POINTERS:
            self._tick_pointers(engine)
        elif phase == STREAM:
            self._tick_stream(engine)
        elif phase == WRITEBACK:
            self._tick_writeback(engine)
        if phase != IDLE:
            self.stats.busy_cycles += 1
            self.stats.note_phase(phase)
            # A busy PE's state machine can always progress on a later
            # cycle (e.g. phase transitions, rate budgets); never let the
            # engine declare the system dead while a job is in flight.
            engine.mark_active()
        self._arm(engine)

    def _arm(self, engine):
        """Self-schedule the next tick for progress no channel signals.

        Channel subscriptions cover externally-triggered progress (new
        jobs, DMA beats, MOMS responses, freed port space); this
        re-arm covers the internal kind: BRAM apply/read-out budgets,
        burst issue slots freeing up, decoded edges awaiting dispatch,
        and gather-pipeline commits (a precise timer, so a PE blocked
        only on its arithmetic pipeline sleeps until the commit cycle).
        """
        phase = self._phase
        if phase == IDLE:
            # A job may already be sitting in the channel from before
            # this PE went idle (pushed while we were busy, so its data
            # wake ticked us mid-job and won't fire again).
            if self.job_channel._visible:
                engine.wake(self)
            return
        if phase in (INIT_CONST, INIT_VIN):
            if self._apply_backlog or (
                self._rd_burst_outstanding == 0
                and self._rd_requested < self._rd_total
            ):
                engine.wake(self)
            return
        if phase == POINTERS:
            if not self._ptr_requested:
                engine.wake(self)
            return
        if phase == STREAM:
            if self._pipeline:
                engine.wake_at(self, self._pipeline[0][0])
            if (self.dma_resp._visible or self.moms_resp._visible
                    or self._can_stream_more()):
                # Beats to decode, responses to serve (or spin on a RAW
                # hazard, matching the all-tick stall cadence), or a
                # burst slot worth retrying.
                engine.wake(self)
                return
            if self._edges_queued:
                # Progress on the head edge is all that remains; wake
                # only if it can move without an external event.
                queue = self._edge_queue
                if self._vec:
                    local_head = queue.local[queue.head]
                else:
                    src_node = queue[0][0]
                    local_head = (self.spec.use_local_src
                                  and self._lo <= src_node < self._hi)
                if local_head:
                    engine.wake(self)  # local read, gated only on gather
                elif self.spec.weighted and not self._free_ids:
                    pass  # IDs free only via responses -> moms_resp wake
                elif self.moms_req.free_slots() > 0:
                    engine.wake(self)
                else:
                    # Request port full: one-shot wake from its next
                    # commit with free space (usually already armed by
                    # the _process_edges stall this tick; dedup'd).
                    self.moms_req.request_space_wake(self)
            elif self._stream_done():
                # The POINTERS->STREAM transition tick never ran
                # _tick_stream; an already-empty stream (no active
                # shards) still needs one tick to enter writeback.
                engine.wake(self)
            return
        # WRITEBACK: keep stepping while node values remain to send;
        # once everything is issued, the write acks wake us.  The
        # acks-complete clause only matters for empty intervals, whose
        # first writeback tick must still fire to report completion.
        if self._wb_sent < self._n_local * 4 \
                or self._wb_acks_received >= self._wb_acks_expected:
            engine.wake(self)

    def _set_phase(self, phase):
        tele = self._tele
        if tele is not None:
            engine = self._engine
            tele.pe_phase(self.pe_index, phase,
                          engine.now if engine is not None else 0)
        self._phase = phase

    def _can_stream_more(self):
        """True if _request_edge_bursts could issue on a later cycle."""
        if self._stream_cursor >= len(self._shards):
            return False
        if self._bursts_outstanding >= self.config.max_outstanding_edge_bursts:
            return False
        backlog = self._edges_queued + self._beats_outstanding * 16
        return backlog <= self._decoded_backlog_limit

    def step_n(self, engine, budget):
        """Fused-tick protocol (see ``repro.sim.Component.step_n``).

        Two PE runs are silently repeatable under a stable singleton
        wake set: the INIT apply tail (draining the BRAM-apply backlog
        at the port rate with no DMA traffic this window) and the
        STREAM decode-under-stall run (one beat decoded per cycle
        while the head edge stalls on a full MOMS port, an empty ID
        pool, or a RAW hazard).  Everything else -- burst issue, MOMS
        dispatch, response serving, phase transitions -- does real
        per-cycle work and falls through to normal ticks.
        """
        if self._tele is not None:
            return 0
        phase = self._phase
        if phase == STREAM:
            return self._step_n_stream(engine, budget)
        if phase in (INIT_CONST, INIT_VIN):
            return self._step_n_init(budget)
        return 0

    def _step_n_init(self, budget):
        """Fused INIT run: apply backlog words at the BRAM port rate.

        Fusable only while no beat is waiting in the DMA queue and the
        next burst cannot issue yet (one in flight, or all requested),
        so each cycle's whole effect is ``init_nodes_per_cycle`` words
        applied plus the busy/phase counters.  At least one word is
        left behind: the completion transition and the possibly
        partial final apply happen on the real tick that follows.
        """
        if self.dma_resp._visible:
            return 0
        if (self._rd_burst_outstanding == 0
                and self._rd_requested < self._rd_total):
            return 0  # this cycle would issue the next DMA burst
        backlog = self._apply_backlog
        if not backlog:
            return 0
        per = self.config.init_nodes_per_cycle
        total = 0
        for _, chunk in backlog:
            total += len(chunk)
        m = (total - 1) // per
        if budget < m:
            m = budget
        if m < 1:
            return 0
        # The per-cycle apply loop with an m-cycle budget: identical
        # word order and chunk trimming, one loop instead of m.
        budget_words = m * per
        if self._apply_vec:
            target = (self._const_bram if self._phase == INIT_CONST
                      else self._bram)
            while budget_words > 0 and backlog:
                start, vals = backlog[0]
                take = min(budget_words, len(vals))
                target[start:start + take] = vals[:take]
                self._applied += take
                budget_words -= take
                if take == len(vals):
                    backlog.popleft()
                else:
                    backlog[0] = (start + take, vals[take:])
        else:
            decode = self.spec.decode
            init = self.spec.init
            while budget_words > 0 and backlog:
                start, words = backlog[0]
                take = min(budget_words, len(words))
                if self._phase == INIT_CONST:
                    for i in range(take):
                        self._const_bram[start + i] = float(words[i])
                else:
                    for i in range(take):
                        index = start + i
                        self._bram[index] = init(
                            self._const_bram[index], decode(words[i])
                        )
                self._applied += take
                budget_words -= take
                if take == len(words):
                    backlog.popleft()
                else:
                    backlog[0] = (start + take, words[take:])
        stats = self.stats
        stats.busy_cycles += m
        phase = self._phase
        stats.cycles_by_phase[phase] = \
            stats.cycles_by_phase.get(phase, 0) + m
        return m

    def _step_n_stream(self, engine, budget):
        """Fused STREAM run: whole-run edge decode under a head stall.

        Each silent cycle pops and decodes exactly one DMA beat into
        the edge backlog while the head edge re-stalls the dispatcher
        -- MOMS request port full, ID pool empty, or RAW hazard -- all
        conditions nothing can clear during the window (the blocking
        structures drain only through components that are asleep, and
        the gather pipeline's next commit is past the engine's timer
        horizon).  One beat stays in the queue and the run stops
        before any burst issue could resume, so the real tick that
        follows sees exactly the state the per-cycle path would.
        """
        dma_resp = self.dma_resp
        visible = dma_resp._visible
        if visible < 2 or dma_resp._space_subs or dma_resp._space_requests:
            return 0
        if self.moms_resp._visible or not self._edges_queued:
            return 0
        if self._stream_cursor < len(self._shards):
            return 0  # _request_edge_bursts could do real work mid-run
        m = visible - 1
        if budget < m:
            m = budget
        pipeline = self._pipeline
        if pipeline:
            # Belt and braces: _arm's wake_at already put this commit
            # cycle in the engine's timer heap, which bounds the
            # budget -- but don't depend on that invariant here.
            h = pipeline[0][0] - engine.now
            if h < m:
                m = h
        if m < 1:
            return 0
        if self._vec:
            cols = self._edge_queue
            head = cols.head
            local = cols.local[head]
            dst_off = cols.dst[head]
        else:
            src_node, dst_off, _ = self._edge_queue[0]
            local = (self.spec.use_local_src
                     and self._lo <= src_node < self._hi)
        moms_full = False
        if local:
            if not self._raw_hazard(dst_off):
                return 0  # head would dispatch into the gather slot
        else:
            moms_req = self.moms_req
            moms_full = (moms_req._occ + moms_req._staged_n
                         >= moms_req.capacity)
            if not moms_full and not (self.spec.weighted
                                      and not self._free_ids):
                return 0  # head would issue into the MOMS
        decode = self._decode_step
        for _ in range(m):
            decode()
        stats = self.stats
        if local:
            stats.raw_stalls += m
        elif moms_full:
            # Same precedence as _process_edges: a full request port
            # is counted before the ID pool is even consulted.  The
            # space-wake re-registrations those cycles would perform
            # are deferred to the real tick, which runs the same stall
            # before any commit can fire the one-shot.
            stats.moms_request_stalls += m
        else:
            stats.id_stalls += m
        stats.busy_cycles += m
        stats.cycles_by_phase[STREAM] = \
            stats.cycles_by_phase.get(STREAM, 0) + m
        return m

    def is_idle(self):
        return self._phase == IDLE

    # -- idle: pull the next job ---------------------------------------------

    def _tick_idle(self, engine):
        if not self.job_channel._visible:
            return
        job = self.job_channel.pop()
        self._job = job
        lo, hi = self.layout.partitioning.dst_interval_bounds(job.d)
        self._lo, self._hi = lo, hi
        self._n_local = hi - lo
        self._job_updated = False
        self._edges_this_job = 0
        if self.spec.use_const:
            self._start_array_read(
                INIT_CONST, self.layout.v_const_interval_addr(job.d)
            )
        else:
            self._start_array_read(
                INIT_VIN, self.layout.v_in_interval_addr(job.d)
            )

    # -- init: burst-read node arrays into BRAM -------------------------------

    def _start_array_read(self, phase, base_addr):
        self._set_phase(phase)
        self._rd_base = base_addr
        self._rd_total = self._n_local * 4
        self._rd_requested = 0
        self._rd_received = 0
        self._rd_burst_outstanding = 0
        self._apply_backlog = deque()  # (start_index, words array)
        self._applied = 0
        # Vector mode lands each beat as ready-to-store float64 values
        # (init already folded in), so the budgeted apply loop becomes
        # a slice assignment.  INIT_VIN needs the spec's columnar init;
        # a spec without one keeps the scalar per-word path.
        self._apply_vec = self._vec and (
            phase == INIT_CONST or self.spec.init_vec is not None
        )

    def _tick_init(self, engine):
        # One outstanding initialization burst at a time (Section IV-D).
        if (
            self._rd_burst_outstanding == 0
            and self._rd_requested < self._rd_total
        ):
            nbytes = min(self.config.burst_bytes,
                         self._rd_total - self._rd_requested)
            addr = self._rd_base + self._rd_requested
            if self.dma.can_issue(addr, nbytes):
                beats = self.dma.beats_for(addr, nbytes)
                self.dma.issue(addr, nbytes, tag=("init", self._phase))
                self._rd_requested += nbytes
                self._rd_burst_outstanding = beats
        # Drain all arriving beats into the apply backlog in one bulk
        # pop; the beats are fully consumed here, so they recycle to
        # the freelist immediately.
        beats = self.dma_resp.pop_all()
        if beats:
            pool = MemResponse._pool
            base = self._rd_base
            n_local = self._n_local
            backlog = self._apply_backlog
            if self._apply_vec:
                # One numpy pass per 16-word beat: widen (and for
                # INIT_VIN, init) the whole beat now; the budget loop
                # below only slices.  astype/init_vec copy, so the
                # beat recycles immediately.
                const_phase = self._phase == INIT_CONST
                init_vec = self.spec.init_vec
                const_bram = self._const_bram
                for beat in beats:
                    start = (beat.addr - base) // 4
                    count = min(16, n_local - start)
                    words = beat.data[:4 * count].view(np.uint32)
                    if const_phase:
                        vals = words.astype(np.float64)
                    else:
                        vals = init_vec(
                            const_bram[start:start + count], words
                        )
                    backlog.append((start, vals))
                    if pool is not None:
                        beat.data = None
                        pool.append(beat)
            else:
                for beat in beats:
                    start = (beat.addr - base) // 4
                    count = min(16, n_local - start)
                    backlog.append(
                        (start, beat.data[:4 * count].view(np.uint32).tolist())
                    )
                    if pool is not None:
                        beat.data = None
                        pool.append(beat)
            self._rd_burst_outstanding -= len(beats)
            self._rd_received += len(beats)
        if self._apply_backlog:
            engine.mark_active()  # BRAM writes advance without channel traffic
        # Apply at the BRAM port rate (4 node writes per cycle).
        budget = self.config.init_nodes_per_cycle
        if self._apply_vec:
            target = (self._const_bram if self._phase == INIT_CONST
                      else self._bram)
            while budget > 0 and self._apply_backlog:
                start, vals = self._apply_backlog[0]
                take = min(budget, len(vals))
                target[start:start + take] = vals[:take]
                self._applied += take
                budget -= take
                if take == len(vals):
                    self._apply_backlog.popleft()
                else:
                    self._apply_backlog[0] = (start + take, vals[take:])
        else:
            decode = self.spec.decode
            init = self.spec.init
            while budget > 0 and self._apply_backlog:
                start, words = self._apply_backlog[0]
                take = min(budget, len(words))
                if self._phase == INIT_CONST:
                    for i in range(take):
                        self._const_bram[start + i] = float(words[i])
                else:
                    for i in range(take):
                        index = start + i
                        self._bram[index] = init(
                            self._const_bram[index], decode(words[i])
                        )
                self._applied += take
                budget -= take
                if take == len(words):
                    self._apply_backlog.popleft()
                else:
                    self._apply_backlog[0] = (start + take, words[take:])
        if self._applied == self._n_local and \
                self._rd_requested == self._rd_total and \
                self._rd_burst_outstanding == 0:
            if self._phase == INIT_CONST:
                self._start_array_read(
                    INIT_VIN, self.layout.v_in_interval_addr(self._job.d)
                )
            else:
                self._start_pointers()

    # -- edge pointers ---------------------------------------------------------

    def _start_pointers(self):
        self._set_phase(POINTERS)
        self._ptr_beats_expected = None  # known once the burst is issued
        self._ptr_beats_received = 0
        self._ptr_requested = False

    def _tick_pointers(self, engine):
        part = self.layout.partitioning
        base = self.layout.edge_ptr_addr(self._job.d, 0)
        nbytes = part.q_src * 8
        if not self._ptr_requested:
            if self.dma.can_issue(base, nbytes):
                # The pointer array is not line-aligned per job, so the
                # beat count must come from the actual piece split.
                self._ptr_beats_expected = self.dma.beats_for(base, nbytes)
                self.dma.issue(base, nbytes, tag=("ptrs",))
                self._ptr_requested = True
            return
        beats = self.dma_resp.pop_all()
        if beats:
            self._ptr_beats_received += len(beats)
            pool = MemResponse._pool
            if pool is not None:
                for beat in beats:
                    beat.data = None
                    pool.append(beat)
        if self._ptr_beats_received < self._ptr_beats_expected:
            return
        # Parse the pointers (bit-identical to the transferred beats).
        shards = []
        for s in range(part.q_src):
            addr, count, active = self.layout.read_pointer(
                self.mem, self._job.d, s
            )
            if active and count:
                shards.append({
                    "s": s,
                    "addr": addr,
                    "count": count,
                    "bytes_total": self.layout.codec.shard_bytes(count),
                    "bytes_requested": 0,
                    "edges_decoded": 0,
                })
        self._shards = shards
        self._shard_by_s = {shard["s"]: shard for shard in shards}
        self._stream_cursor = 0
        self._bursts_outstanding = 0
        self._beats_outstanding = 0
        self._set_phase(STREAM)

    # -- edge streaming + gather ------------------------------------------------

    def _tick_stream(self, engine):
        # The five stream sub-stages run every cycle in hardware, but in
        # simulation most are no-ops on any given tick; guard each one
        # inline so an idle stage costs a branch, not a function call.
        pipeline = self._pipeline
        if pipeline:
            now = engine.now
            if pipeline[0][0] <= now:
                bram = self._bram
                always_active = self.spec.always_active
                while pipeline and pipeline[0][0] <= now:
                    _, dst_off, new, old = pipeline.popleft()
                    bram[dst_off] = new
                    if always_active or new != old:
                        self._job_updated = True
            if pipeline:
                engine.mark_active()  # internal state is advancing
        if self._stream_cursor < len(self._shards):
            self._request_edge_bursts()
        if self.dma_resp._visible:
            self._decode_step()
        if self.moms_resp._visible:
            gather_free = self._process_response()
        else:
            gather_free = True
        if self._edges_queued:
            self._dispatch_step(gather_free)
        if not (self._bursts_outstanding or self._edges_queued
                or self._pipeline or self._outstanding_moms):
            if self._stream_done():
                self._start_writeback()

    def _request_edge_bursts(self):
        config = self.config
        if self._bursts_outstanding >= config.max_outstanding_edge_bursts:
            return
        backlog = self._edges_queued + self._beats_outstanding * 16
        if backlog > self._decoded_backlog_limit:
            return
        while self._stream_cursor < len(self._shards):
            shard = self._shards[self._stream_cursor]
            if shard["bytes_requested"] >= shard["bytes_total"]:
                self._stream_cursor += 1
                continue
            nbytes = min(config.burst_bytes,
                         shard["bytes_total"] - shard["bytes_requested"])
            addr = shard["addr"] + shard["bytes_requested"]
            if not self.dma.can_issue(addr, nbytes):
                return
            # A burst spanning an interleave granule becomes one piece
            # per channel; each piece ends with its own last-beat.
            beats = self.dma.beats_for(addr, nbytes)
            pieces = self.dma.issue(addr, nbytes, tag=("edges", shard["s"]))
            shard["bytes_requested"] += nbytes
            self._bursts_outstanding += pieces
            self._beats_outstanding += beats
            return  # one burst issued per cycle

    def _decode_edge_beats(self):
        # Pull up to one beat per cycle from the DMA queue (512-bit
        # port) -- an architectural rate, not a simulator artifact.
        if not self.dma_resp._visible:
            return
        beat = self.dma_resp.pop()
        tag = beat.tag
        if tag[0] != "edges":
            raise AssertionError(f"unexpected DMA beat {tag} in stream")
        s = tag[1]
        if beat.last:
            self._bursts_outstanding -= 1
        self._beats_outstanding -= 1
        # Decode over plain Python ints (one bulk conversion) -- numpy
        # scalar iteration costs ~10x per word on this hot path.  The
        # conversion copies, so the beat recycles before the decode.
        words = beat.data.view(np.uint32).tolist()
        pool = MemResponse._pool
        if pool is not None:
            beat.data = None
            pool.append(beat)
        weighted = self.spec.weighted
        src_base = s * self._ns
        shard = self._shard_by_s[s]
        if weighted:
            edge_words = words[0::2]
            weight_words = words[1::2]
        else:
            edge_words = words
            weight_words = None
        append = self._edge_queue.append
        decoded = 0
        for i, word in enumerate(edge_words):
            if word & TERMINATOR_BIT:
                break
            append((
                src_base + ((word >> EDGE_DST_BITS) & _SRC_MASK),
                word & _DST_MASK,
                weight_words[i] if weighted else 0,
            ))
            decoded += 1
        self._edges_queued += decoded
        shard["edges_decoded"] += decoded
        if shard["edges_decoded"] > shard["count"]:
            # Padding within the final line is cut by the
            # terminator; exceeding the count means corruption.
            raise AssertionError("decoded more edges than the shard has")

    def _decode_edge_beats_vec(self):
        """Columnar beat decode (``REPRO_KERNELS=vector``).

        Same one-beat-per-cycle rate as the scalar decoder, but the
        terminator cut, src/dst field extraction, local-source mask,
        and MOMS byte address are whole-beat numpy passes landing
        straight into the :class:`_EdgeColumns` backlog -- the scalar
        dispatcher's per-edge bound checks and address arithmetic are
        precomputed here once.
        """
        if not self.dma_resp._visible:
            return
        beat = self.dma_resp.pop()
        tag = beat.tag
        if tag[0] != "edges":
            raise AssertionError(f"unexpected DMA beat {tag} in stream")
        s = tag[1]
        if beat.last:
            self._bursts_outstanding -= 1
        self._beats_outstanding -= 1
        words = beat.data.view(np.uint32)
        weighted = self.spec.weighted
        if weighted:
            edge_words = words[0::2]
            weight_words = words[1::2]
        else:
            edge_words = words
        term = np.flatnonzero(edge_words & TERMINATOR_BIT)
        n = int(term[0]) if term.size else len(edge_words)
        cols = self._edge_queue
        if n:
            # .tolist() copies out of the beat's buffer, so the beat
            # recycles below with the columns already materialized.
            ew = edge_words[:n].astype(np.int64)
            srcs = (s * self._ns) + ((ew >> EDGE_DST_BITS) & _SRC_MASK)
            cols.src.extend(srcs.tolist())
            cols.dst.extend((ew & _DST_MASK).tolist())
            if weighted:
                cols.w.extend(weight_words[:n].tolist())
            else:
                cols.w.extend([0] * n)
            if self.spec.use_local_src:
                cols.local.extend(
                    ((srcs >= self._lo) & (srcs < self._hi)).tolist()
                )
            else:
                cols.local.extend([False] * n)
            cols.addr.extend((self.layout.v_in_addr + srcs * 4).tolist())
        pool = MemResponse._pool
        if pool is not None:
            beat.data = None
            pool.append(beat)
        self._edges_queued += n
        shard = self._shard_by_s[s]
        shard["edges_decoded"] += n
        if shard["edges_decoded"] > shard["count"]:
            raise AssertionError("decoded more edges than the shard has")

    def _raw_hazard(self, dst_off):
        for _, entry_dst, _, _ in self._pipeline:
            if entry_dst == dst_off:
                return True
        return False

    def _commit_pipeline(self, engine):
        pipeline = self._pipeline
        while pipeline and pipeline[0][0] <= engine.now:
            _, dst_off, new, old = pipeline.popleft()
            self._bram[dst_off] = new
            if self.spec.always_active or new != old:
                self._job_updated = True
        if pipeline:
            engine.mark_active()  # internal state is advancing

    def _enter_pipeline(self, engine, dst_off, u_value, weight):
        old = self._bram[dst_off]
        new = self.spec.gather(u_value, old, weight)
        self._pipeline.append(
            (engine.now + self.spec.gather_latency, dst_off, new, old)
        )
        self.stats.edges_processed += 1
        self._edges_this_job += 1

    def _process_response(self):
        """Serve one MOMS response; returns True if the gather slot is free."""
        moms_resp = self.moms_resp
        if not moms_resp._visible:
            return True
        req_id, _addr, data, _port = moms_resp.front_response()
        if self._ledger is not None:
            # Peek-time check: a corrupted or misrouted ID is flagged
            # here, before it indexes the thread-state memory below.
            self._ledger.verify(("pe", self.pe_index), req_id)
        if self.spec.weighted:
            dst_off, weight = self._id_state[req_id]
        else:
            dst_off, weight = req_id, 0
        if self._raw_hazard(dst_off):
            self.stats.raw_stalls += 1
            return False  # gather slot wasted on the stall
        # unpack copies the word out, so the peeked data slice is done
        # with before drop() consumes (and recycles) the response.
        word = _U32.unpack_from(data)[0]
        moms_resp.drop()
        self._outstanding_moms -= 1
        if self._ledger is not None:
            self._ledger.retire(("pe", self.pe_index), req_id)
        if self._tele is not None:
            self._tele.moms_retire(self.pe_index, req_id, self._engine.now)
        if self._trace is not None:
            self._trace.moms_retire(self.pe_index, req_id, _addr,
                                    self._engine.now)
        if self.spec.weighted:
            del self._id_state[req_id]
            self._free_ids.append(req_id)
        self._enter_pipeline(self._engine, dst_off, self.spec.decode(word),
                             weight)
        return False

    def _process_edges(self, gather_free):
        if not self._edges_queued:
            return
        src_node, dst_off, weight = self._edge_queue[0]
        local = self.spec.use_local_src and self._lo <= src_node < self._hi
        if local:
            if not gather_free:
                return
            if self._raw_hazard(dst_off):
                self.stats.raw_stalls += 1
                return
            self._edge_queue.popleft()
            self._edges_queued -= 1
            u_value = self._bram[src_node - self._lo]
            self._enter_pipeline(self._engine, dst_off, u_value, weight)
            self.stats.local_reads += 1
            return
        # Remote source: suspend the edge into the MOMS.
        moms_req = self.moms_req
        if moms_req._occ + moms_req._staged_n >= moms_req.capacity:
            self.stats.moms_request_stalls += 1
            moms_req.request_space_wake(self)
            return
        if self.spec.weighted:
            if not self._free_ids:
                self.stats.id_stalls += 1
                return
            req_id = self._free_ids.popleft()
            self._id_state[req_id] = (dst_off, weight)
        else:
            req_id = dst_off
        self._edge_queue.popleft()
        self._edges_queued -= 1
        addr = self.layout.v_in_addr + src_node * 4
        moms_req.push_request(addr, 4, req_id, self.pe_index)
        if self._ledger is not None:
            self._ledger.issue(("pe", self.pe_index), req_id)
        if self._tele is not None:
            self._tele.moms_issue(self.pe_index, req_id, self._engine.now)
        if self._trace is not None:
            self._trace.moms_issue(self.pe_index, req_id, addr,
                                   self._engine.now)
        self._outstanding_moms += 1
        self.stats.moms_reads += 1

    def _process_edges_vec(self, gather_free):
        """Dispatch the head edge from the columnar backlog.

        Mirrors :meth:`_process_edges` decision-for-decision (same
        stalls, same stats) but reads the precomputed local mask and
        MOMS address columns instead of re-deriving them per edge.
        """
        if not self._edges_queued:
            return
        cols = self._edge_queue
        h = cols.head
        dst_off = cols.dst[h]
        if cols.local[h]:
            if not gather_free:
                return
            if self._raw_hazard(dst_off):
                self.stats.raw_stalls += 1
                return
            u_value = self._bram[cols.src[h] - self._lo]
            weight = cols.w[h]
            cols.advance()
            self._edges_queued -= 1
            self._enter_pipeline(self._engine, dst_off, u_value, weight)
            self.stats.local_reads += 1
            return
        # Remote source: suspend the edge into the MOMS.
        moms_req = self.moms_req
        if moms_req._occ + moms_req._staged_n >= moms_req.capacity:
            self.stats.moms_request_stalls += 1
            moms_req.request_space_wake(self)
            return
        if self.spec.weighted:
            if not self._free_ids:
                self.stats.id_stalls += 1
                return
            req_id = self._free_ids.popleft()
            self._id_state[req_id] = (dst_off, cols.w[h])
        else:
            req_id = dst_off
        addr = cols.addr[h]
        cols.advance()
        self._edges_queued -= 1
        moms_req.push_request(addr, 4, req_id, self.pe_index)
        if self._ledger is not None:
            self._ledger.issue(("pe", self.pe_index), req_id)
        if self._tele is not None:
            self._tele.moms_issue(self.pe_index, req_id, self._engine.now)
        if self._trace is not None:
            self._trace.moms_issue(self.pe_index, req_id, addr,
                                   self._engine.now)
        self._outstanding_moms += 1
        self.stats.moms_reads += 1

    def _stream_done(self):
        if self._bursts_outstanding or self._edges_queued or self._pipeline:
            return False
        if self._outstanding_moms > 0:
            return False
        return all(
            sh["bytes_requested"] >= sh["bytes_total"]
            and sh["edges_decoded"] == sh["count"]
            for sh in self._shards
        )

    # -- writeback -----------------------------------------------------------

    def _start_writeback(self):
        self._set_phase(WRITEBACK)
        n = self._n_local
        apply_enc_vec = self.spec.apply_enc_vec
        if self._vec and apply_enc_vec is not None:
            # Whole-interval apply+encode in one columnar pass; the
            # hooks keep the scalar operation order so the resulting
            # words are bit-identical (float64 elementwise IEEE ops,
            # then the same f32/u32 narrowing per lane).
            words = apply_enc_vec(
                self._bram[:n], self._const_bram[:n], self._base_const
            )
        else:
            apply_fn = self.spec.apply
            encode = self.spec.encode
            words = np.zeros(n, dtype=np.uint32)
            for i in range(n):
                words[i] = encode(
                    apply_fn(self._bram[i], self._const_bram[i],
                             self._base_const)
                )
        self._wb_words = words
        self._wb_sent = 0
        self._wb_acks_expected = 0
        self._wb_acks_received = 0
        # Model the 4-values/cycle BRAM read rate as a head start delay.
        self._wb_ready_budget = 0

    def _tick_writeback(self, engine):
        acks = self.dma_resp.pop_all()
        if acks:
            pool = MemResponse._pool
            for ack in acks:
                if not ack.is_write_ack:
                    raise AssertionError("unexpected read beat in writeback")
                if pool is not None:
                    pool.append(ack)
            self._wb_acks_received += len(acks)
        total_bytes = self._n_local * 4
        if self._wb_sent < total_bytes:
            engine.mark_active()  # BRAM reads advance without channel traffic
        # The BRAM read port feeds 4 node values per cycle into the DMA.
        self._wb_ready_budget = min(
            self._wb_ready_budget + self.config.init_nodes_per_cycle * 4,
            self._n_local * 4,
        )
        total = self._n_local * 4
        if self._wb_sent < total:
            ready = self._wb_ready_budget - self._wb_sent
            nbytes = min(self.config.burst_bytes, total - self._wb_sent,
                         ready)
            if nbytes >= 4:
                addr = self.layout.v_out_interval_addr(self._job.d) + \
                    self._wb_sent
                if self.dma.can_issue(addr, nbytes, is_write=True):
                    data = self._wb_words.view(np.uint8)[
                        self._wb_sent:self._wb_sent + nbytes
                    ]
                    pieces = self.dma.issue(addr, nbytes, tag=("wb",),
                                            is_write=True, data=data)
                    self._wb_acks_expected += pieces
                    self._wb_sent += nbytes
        if (
            self._wb_sent == total
            and self._wb_acks_received == self._wb_acks_expected
        ):
            self.done_channel.push((self._job.d, self._job_updated))
            self.stats.jobs_completed += 1
            self._set_phase(IDLE)
            self._job = None
