"""Template 1: the configurable edge-centric programming model.

A graph algorithm is described by three functions -- ``init()``,
``gather()``, ``apply()`` -- plus initial node values, an optional
per-node constant vector (V_const), a global constant, and two control
flags (``use_local_src``, ``always_active``), exactly as in the paper's
Table I.  Values cross four representations:

* DRAM words: raw uint32 bit patterns (what the MOMS returns),
* BRAM scalars: the working value held per destination node,
* V_const scalars: read-only per-node constants loaded at init,
* host values: what :meth:`finalize` reports to the user.

The same spec drives both the cycle-accurate accelerator and the pure
software reference executor (:mod:`repro.baselines.reference`), so
functional equivalence is checked end to end.
"""

import pickle
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np


@dataclass
class AlgorithmSpec:
    """Algorithm-specific parameters of Template 1 (paper Table I)."""

    name: str
    weighted: bool
    use_local_src: bool
    always_active: bool
    synchronous: bool
    gather_latency: int  # pipeline depth; 4 for fp PageRank, 1 for int ops
    use_const: bool
    node_bytes: int = 4
    bram_node_bits: int = 32  # 64 for PageRank (score + out-degree)

    # Functional hooks (scalar domain).
    init: Callable = None          # (const_c, v_dram) -> bram value
    gather: Callable = None        # (u, v_bram, w) -> new bram value
    apply: Callable = None         # (v_bram, const_c) -> dram value
    decode: Callable = None        # uint32 word -> scalar
    encode: Callable = None        # scalar -> uint32 word
    initial_values: Callable = None  # (graph, **kw) -> uint32 array
    const_values: Optional[Callable] = None  # (graph) -> uint32 array
    finalize: Callable = None      # (dram uint32 array, graph) -> host array
    global_const: Callable = None  # (graph) -> scalar passed to init

    # Columnar kernels (``REPRO_KERNELS=vector``): whole-array forms of
    # the scalar hooks, bit-identical element-for-element.  Optional --
    # a spec that omits them runs the scalar hooks even under the
    # vector engine.
    init_vec: Optional[Callable] = None
    """(const float64 slice, dram uint32 words) -> float64 BRAM values."""
    apply_enc_vec: Optional[Callable] = None
    """(bram float64, const float64, base scalar) -> uint32 DRAM words."""

    # Rebuild recipe for serialization: ``(name, kwargs)`` resolvable by
    # :func:`repro.accel.algorithms.get_spec`.  The functional hooks are
    # closures and lambdas, which do not pickle, so snapshots store the
    # recipe and rebuild the spec on load instead (the factories are
    # deterministic, so the rebuilt hooks are behaviourally identical).
    # ``get_spec`` fills this in; hand-built specs stay unpicklable and
    # get a clear error at snapshot time.
    recipe: Optional[tuple] = None

    def __reduce__(self):
        if not self.recipe:
            raise pickle.PicklingError(
                f"AlgorithmSpec {self.name!r} carries closure hooks and no "
                f"rebuild recipe; build it via "
                f"repro.accel.algorithms.get_spec (or set spec.recipe to "
                f"(name, kwargs)) to make it snapshot-safe"
            )
        name, kwargs = self.recipe
        return (_rebuild_spec, (name, tuple(sorted(kwargs.items()))))

    def initial_dram_image(self, graph, **kwargs):
        """V_DRAM,in as a uint32 array (raw bits)."""
        values = self.initial_values(graph, **kwargs)
        if values.dtype != np.uint32:
            raise TypeError("initial_values must return raw uint32 words")
        return values

    def const_dram_image(self, graph):
        if not self.use_const:
            return None
        values = self.const_values(graph)
        if values.dtype != np.uint32:
            raise TypeError("const_values must return raw uint32 words")
        return values

    def const_scalar(self, graph):
        return self.global_const(graph) if self.global_const else 0.0


def _rebuild_spec(name, items):
    """Unpickle helper: rebuild a spec from its ``get_spec`` recipe."""
    from repro.accel.algorithms import get_spec

    return get_spec(name, **dict(items))


def updated_flag(spec, old_bram, new_bram):
    """Line 16 of Template 1: did this gather change the destination?"""
    if spec.always_active:
        return True
    return new_bram != old_bram
