"""The graph accelerator: programming model, PEs, scheduler, system.

Implements the paper's Template 1 execution framework (Section III-B)
on out-of-order multithreaded processing elements (Section IV-C) with
dynamic job scheduling (Section IV-E), assembled over the MOMS
hierarchy, burst interconnect, and DRAM substrate (Fig. 6).
"""

from repro.accel.template import AlgorithmSpec
from repro.accel.algorithms import bfs_spec, pagerank_spec, scc_spec, sssp_spec
from repro.accel.config import (
    ArchitectureConfig,
    SCALED_DEFAULTS,
    named_architectures,
)
from repro.accel.system import AcceleratorSystem, RunResult

__all__ = [
    "AcceleratorSystem",
    "AlgorithmSpec",
    "ArchitectureConfig",
    "RunResult",
    "SCALED_DEFAULTS",
    "bfs_spec",
    "named_architectures",
    "pagerank_spec",
    "scc_spec",
    "sssp_spec",
]
