"""Dynamic job scheduler (paper Fig. 6 and Section IV-E).

One job per destination interval; PEs pull the next job whenever they
go idle, through a single-slot job channel (one grant per cycle, like
the paper's arbiter).  Dynamic pulling is what lets the paper skip
hash-based relabeling: with jobs 1-2 orders of magnitude more numerous
than PEs, work balances itself as long as no job exceeds M / N_PE
edges.

The scheduler also owns the iteration bookkeeping of Template 1:
per-source-interval active flags, completion collection with updated
flags, and convergence detection.
"""

from dataclasses import dataclass

import numpy as np

from repro.sim import Component


@dataclass(slots=True)
class Job:
    """One destination interval's worth of work."""

    d: int
    iteration: int


class Scheduler(Component):
    """Issues jobs to PEs and collects their completions."""

    demand_driven = True

    def __init__(self, job_channel, done_channel, partitioning):
        self.job_channel = job_channel
        self.done_channel = done_channel
        self.part = partitioning
        # Wake on PE completions; a full job slot arms a one-shot space
        # wake at the stall site, and while jobs are queued and the
        # slot is free, tick() re-arms itself below.
        done_channel.subscribe_data(self)
        self._pending = []
        self._outstanding = 0
        self.iteration = 0
        self.active_srcs = np.ones(partitioning.q_src, dtype=bool)
        self._next_active = np.zeros(partitioning.q_src, dtype=bool)
        self.any_update = False
        self.jobs_issued = 0
        self.jobs_completed = 0

    def start_iteration(self, always_active):
        """Queue the jobs of one iteration given current active sources.

        Returns the number of jobs queued (0 means converged).
        """
        self.iteration += 1
        self._next_active[:] = False
        self.any_update = False
        sizes = self.part.shard_sizes()  # (q_src, q_dst)
        if always_active:
            self.active_srcs[:] = True
        active_rows = sizes[self.active_srcs]
        live = (
            active_rows.sum(axis=0) > 0
            if len(active_rows)
            else np.zeros(self.part.q_dst, dtype=bool)
        )
        self._pending = [
            Job(d=int(d), iteration=self.iteration)
            for d in np.nonzero(live)[0]
        ]
        self._issued_this_iteration = len(self._pending)
        if self._pending:
            self.request_wake()
        return len(self._pending)

    def tick(self, engine):
        pending = self._pending
        if pending:
            job_channel = self.job_channel
            if job_channel._occ + job_channel._staged_n < job_channel.capacity:
                job_channel.push(pending.pop(0))
                self._outstanding += 1
                self.jobs_issued += 1
                if pending:
                    engine.wake(self)
            else:
                job_channel.request_space_wake(self)
        completions = self.done_channel.pop_all()
        if completions:
            self._outstanding -= len(completions)
            self.jobs_completed += len(completions)
            for d, updated in completions:
                if updated:
                    self.any_update = True
                    lo, hi = self.part.dst_interval_bounds(d)
                    first = lo // self.part.n_src
                    last = (hi - 1) // self.part.n_src
                    self._next_active[first:last + 1] = True

    def iteration_done(self):
        return not self._pending and self._outstanding == 0 \
            and not self.job_channel.pending

    def finish_iteration(self):
        """Commit the next-iteration active flags; True if work remains."""
        self.active_srcs, self._next_active = (
            self._next_active, self.active_srcs
        )
        return self.any_update

    def is_idle(self):
        return self.iteration_done()
