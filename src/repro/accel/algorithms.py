"""Algorithm definitions for Template 1 (paper Table I).

* PageRank with ForeGraph's normalization trick: DRAM stores the
  pre-normalized score ``y[i] = d * PR[i] / OD[i]`` so each irregular
  read is 32 bits and normalization happens once per node in apply()
  instead of once per edge.  Synchronous, floating point, always
  active, 4-cycle gather pipeline.  Sink nodes (OD = 0) store y = 0 --
  they are never read as sources -- so, like the paper's scheme, the
  reported score of a sink is its teleport term.
* SCC -- min-label propagation (the coloring kernel FPGA graph
  processors call SCC): every node converges to the smallest label
  among its ancestors.  Asynchronous, integer min, uses local sources.
* SSSP -- Bellman-Ford relaxation over weighted edges with saturating
  uint32 distances.  Asynchronous, uses local sources.
* BFS -- extension (not in Table I): SSSP with unit weights.

The scalar hooks run identically in the cycle-level PE and in the
software reference executor, so functional equality is checkable.
"""

import numpy as np

from repro.accel.template import AlgorithmSpec

DAMPING = 0.85
INFINITY = int(np.uint32(0xFFFFFFFF))


def f32_to_bits(value):
    """Raw uint32 bit pattern of a float32 scalar."""
    return int(np.float32(value).view(np.uint32))


def bits_to_f32(word):
    """float32 scalar from a raw uint32 bit pattern."""
    return float(np.uint32(word).view(np.float32))


def pagerank_spec():
    """PageRank per Table I: V_const = OD, DRAM holds normalized scores."""

    def initial_values(graph):
        degrees = graph.out_degrees().astype(np.float64)
        scores = np.full(graph.n_nodes, 1.0 / graph.n_nodes)
        with np.errstate(divide="ignore", invalid="ignore"):
            normalized = np.where(degrees > 0,
                                  DAMPING * scores / degrees, 0.0)
        return normalized.astype(np.float32).view(np.uint32)

    def const_values(graph):
        return graph.out_degrees().astype(np.uint32)

    def apply(v_bram, const_c, base):
        """y_out = d * (base + accumulated) / OD; 0 for sinks."""
        if const_c == 0:
            return 0.0
        return DAMPING * (base + v_bram) / const_c

    def finalize(dram_words, graph):
        """PR[i] = y[i] * OD[i] / d; sinks report the teleport term."""
        y = dram_words.view(np.float32).astype(np.float64)
        degrees = graph.out_degrees().astype(np.float64)
        base = 0.15 / graph.n_nodes
        return np.where(degrees > 0, y * degrees / DAMPING, base)

    def apply_enc_vec(bram, const, base):
        """Columnar apply+encode: same IEEE ops as apply(), elementwise.

        The expression keeps apply()'s association -- d * (base + v) / c
        -- so float64 intermediates match the scalar path bit for bit;
        the f32 cast then matches f32_to_bits exactly.  Sink lanes
        (OD = 0) are masked to 0.0 after the division, whose inf/nan
        lanes are discarded.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            # simlint: disable=R5 -- not cycle math: the sink test
            # compares V_const lanes that hold exact integer
            # out-degrees, mirroring apply()'s `const_c == 0`.
            y = np.where(const != 0.0, DAMPING * (base + bram) / const, 0.0)
        return y.astype(np.float32).view(np.uint32)

    return AlgorithmSpec(
        name="pagerank",
        weighted=False,
        use_local_src=False,   # partial sums must not be read early
        always_active=True,
        synchronous=True,
        gather_latency=4,      # HLS floating-point accumulator
        use_const=True,
        node_bytes=4,
        bram_node_bits=64,     # accumulator + out-degree
        init=lambda c, v: 0.0,  # accumulator cleared; base added in apply
        gather=lambda u, v, w: v + u,
        apply=apply,
        decode=bits_to_f32,
        encode=f32_to_bits,
        initial_values=initial_values,
        const_values=const_values,
        finalize=finalize,
        global_const=lambda graph: 0.15 / graph.n_nodes,
        init_vec=lambda c, words: np.zeros(len(words)),
        apply_enc_vec=apply_enc_vec,
    )


def _identity_init_vec(const, words):
    """Columnar init(c, v) = v: uint32 words widen exactly to float64."""
    return words.astype(np.float64)


def _identity_apply_enc_vec(bram, const, base):
    """Columnar apply/encode = int(v): BRAM holds exact uint32 values."""
    return bram.astype(np.uint32)


def scc_spec():
    """Min-label propagation (Table I's SCC column)."""

    def initial_values(graph):
        return np.arange(graph.n_nodes, dtype=np.uint32)

    return AlgorithmSpec(
        name="scc",
        weighted=False,
        use_local_src=True,
        always_active=False,
        synchronous=False,
        gather_latency=1,      # combinational integer min
        use_const=False,
        node_bytes=4,
        init=lambda c, v: v,
        gather=lambda u, v, w: min(u, v),
        apply=lambda v, c, base: v,
        decode=int,
        encode=lambda value: int(value),
        initial_values=initial_values,
        finalize=lambda words, graph: words.copy(),
        init_vec=_identity_init_vec,
        apply_enc_vec=_identity_apply_enc_vec,
    )


def sssp_spec(source=0):
    """Single-source shortest paths with saturating uint32 distances."""

    def initial_values(graph):
        values = np.full(graph.n_nodes, INFINITY, dtype=np.uint32)
        values[source] = 0
        return values

    def gather(u, v, w):
        candidate = u + w if u < INFINITY else INFINITY
        return min(candidate, v, INFINITY)

    return AlgorithmSpec(
        name="sssp",
        weighted=True,
        use_local_src=True,
        always_active=False,
        synchronous=False,
        gather_latency=1,
        use_const=False,
        node_bytes=4,
        init=lambda c, v: v,
        gather=gather,
        apply=lambda v, c, base: v,
        decode=int,
        encode=lambda value: int(value),
        initial_values=initial_values,
        finalize=lambda words, graph: words.copy(),
        init_vec=_identity_init_vec,
        apply_enc_vec=_identity_apply_enc_vec,
    )


def bfs_spec(source=0):
    """Breadth-first search distances (unit-weight SSSP); an extension."""

    def initial_values(graph):
        values = np.full(graph.n_nodes, INFINITY, dtype=np.uint32)
        values[source] = 0
        return values

    def gather(u, v, w):
        candidate = u + 1 if u < INFINITY else INFINITY
        return min(candidate, v)

    return AlgorithmSpec(
        name="bfs",
        weighted=False,
        use_local_src=True,
        always_active=False,
        synchronous=False,
        gather_latency=1,
        use_const=False,
        node_bytes=4,
        init=lambda c, v: v,
        gather=gather,
        apply=lambda v, c, base: v,
        decode=int,
        encode=lambda value: int(value),
        initial_values=initial_values,
        finalize=lambda words, graph: words.copy(),
        init_vec=_identity_init_vec,
        apply_enc_vec=_identity_apply_enc_vec,
    )


def get_spec(name, **kwargs):
    """Look up an algorithm spec by name ('pagerank' | 'scc' | 'sssp' | 'bfs')."""
    makers = {
        "pagerank": pagerank_spec,
        "scc": scc_spec,
        "sssp": sssp_spec,
        "bfs": bfs_spec,
    }
    if name not in makers:
        raise ValueError(f"unknown algorithm {name!r}")
    spec = makers[name](**kwargs)
    # The recipe lets snapshots rebuild the spec (its hooks are
    # closures, which do not pickle); see AlgorithmSpec.__reduce__.
    spec.recipe = (name, dict(kwargs))
    return spec
