"""Architecture configuration: paper design points + simulator scaling.

An :class:`ArchitectureConfig` couples the *paper-scale* structural
description (used by the area and frequency models, e.g. 4,096 MSHRs
and 256 KiB caches per bank) with the simulator-scale parameters the
cycle model actually instantiates (scaled by ``structure_scale``, with
1,024-node destination intervals instead of 32,768 -- see DESIGN.md
Section 5).

:func:`named_architectures` provides the design points of paper
Fig. 11: shared, private, two-level MOMSes and the traditional
non-blocking cache baseline, at several PE/bank counts.
"""

from dataclasses import dataclass, field

from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
    DesignDescription,
)
from repro.mem.dram import DramTimings


@dataclass
class ArchitectureConfig:
    """One runnable design point."""

    design: DesignDescription
    # Simulator scaling of MSHR/subentry structures; cache arrays are
    # scaled further (see HierarchySizes.from_design) so they stay much
    # smaller than the node set, as in the paper.
    structure_scale: float = 1 / 64
    cache_scale: float = None
    # Interval sizes (paper: 32,768 dst nodes per PE buffer).  Scaled
    # so jobs stay 1-2 orders of magnitude more numerous than PEs.
    nodes_per_dst_interval: int = 256
    nodes_per_src_interval: int = 1024
    # Weighted-graph MOMS interface (paper: 8,192-slot state memory).
    id_pool_size: int = 512
    # PE DMA parameters.
    max_outstanding_edge_bursts: int = 4
    burst_bytes: int = 2048
    dma_queue_beats: int = 64
    init_nodes_per_cycle: int = 4
    dram_timings: DramTimings = field(default_factory=DramTimings)
    use_floorplan: bool = True
    # Interval clamp: keep at least this many jobs per PE on small
    # graphs (dynamic balancing needs job surplus).  Set to 1 to study
    # the scarce-job regime where hash relabeling becomes critical.
    min_jobs_per_pe: int = 4

    @property
    def name(self):
        return self.design.label

    def scaled_for(self, graph):
        """Clamp interval sizes so jobs stay plentiful on small graphs.

        The paper relies on jobs being 1-2 orders of magnitude more
        numerous than PEs for dynamic load balancing; we guarantee at
        least ~4 jobs per PE (power-of-two intervals, multiples of a
        16-node cache line).
        """
        per_pe_target = max(
            16,
            graph.n_nodes // (self.min_jobs_per_pe * self.design.n_pes),
        )
        nd = min(
            self.nodes_per_dst_interval,
            _pow2_at_most(per_pe_target),
            _pow2_at_least(graph.n_nodes),
        )
        ns = min(self.nodes_per_src_interval,
                 max(4 * nd, _pow2_at_least(graph.n_nodes) // 4))
        ns = max(ns, nd)
        if nd == self.nodes_per_dst_interval and \
                ns == self.nodes_per_src_interval:
            return self
        clone = ArchitectureConfig(**{**self.__dict__})
        clone.nodes_per_dst_interval = nd
        clone.nodes_per_src_interval = ns
        return clone


def _pow2_at_least(n):
    power = 16
    while power < n:
        power *= 2
    return power


def _pow2_at_most(n):
    power = 16
    while power * 2 <= n:
        power *= 2
    return power


SCALED_DEFAULTS = dict(
    structure_scale=1 / 64,
    nodes_per_dst_interval=256,
    nodes_per_src_interval=1024,
)


def _design(n_pes, n_banks, organization, algorithm, n_channels=4,
            private_cache_kib=0, shared_cache_kib=256, **extra):
    node_bits = 64 if algorithm == "pagerank" else 32
    return DesignDescription(
        n_pes=n_pes,
        n_banks=n_banks,
        organization=organization,
        algorithm=algorithm,
        n_channels=n_channels,
        weighted=algorithm == "sssp",
        private_cache_kib=private_cache_kib,
        shared_cache_kib=shared_cache_kib,
        node_bits=node_bits,
        **extra,
    )


def named_architectures(algorithm="pagerank", n_channels=4):
    """The design points explored in paper Fig. 11.

    Labels follow the paper's X/Y Zk convention: X PEs, Y shared MOMS
    banks, Z KiB of private cache per PE.
    """
    architectures = {
        "16/16 shared": ArchitectureConfig(
            _design(16, 16, MOMS_SHARED, algorithm, n_channels),
            **SCALED_DEFAULTS,
        ),
        "16 private 256k": ArchitectureConfig(
            _design(16, 0, MOMS_PRIVATE, algorithm, n_channels,
                    private_cache_kib=256),
            **SCALED_DEFAULTS,
        ),
        "16/16 two-level": ArchitectureConfig(
            _design(16, 16, MOMS_TWO_LEVEL, algorithm, n_channels),
            **SCALED_DEFAULTS,
        ),
        "18/16 two-level 64k": ArchitectureConfig(
            _design(18, 16, MOMS_TWO_LEVEL, algorithm, n_channels,
                    private_cache_kib=64),
            **SCALED_DEFAULTS,
        ),
        "20/8 two-level": ArchitectureConfig(
            _design(20, 8, MOMS_TWO_LEVEL, algorithm, n_channels),
            **SCALED_DEFAULTS,
        ),
        "18/16 traditional": ArchitectureConfig(
            _design(18, 16, MOMS_TRADITIONAL, algorithm, n_channels,
                    private_cache_kib=256),
            **SCALED_DEFAULTS,
        ),
    }
    return architectures
