"""Top-level accelerator system (paper Fig. 6) and the run loop.

Assembles DRAM channels, the burst interconnect (with per-channel
arbiters and die crossings), the MOMS hierarchy, the PEs, and the
scheduler for one (graph, algorithm, architecture) triple; then runs
Template 1 iterations to convergence or an iteration budget, and
reports functional results plus cycle-accurate statistics converted to
wall-clock throughput with the design's modeled frequency.
"""

import os
from dataclasses import dataclass, field

import numpy as np

from repro.accel.algorithms import get_spec
from repro.accel.pe import ProcessingElement
from repro.accel.scheduler import Scheduler
from repro.accel.template import AlgorithmSpec
from repro.core.hierarchy import build_hierarchy
from repro.fabric.arbiter import RoundRobinArbiter
from repro.fabric.crossing import cross_link
from repro.fabric.design import MOMS_TRADITIONAL
from repro.fabric.floorplan import AWS_F1_FLOORPLAN
from repro.fabric.frequency import FrequencyModel
from repro.graph.layout import GraphLayout
from repro.graph.partition import partition_edges
from repro.graph.reorder import compose, dbg_reorder, hash_cache_lines
from repro.mem.system import MemorySystem
from repro.sim import Channel, make_engine


@dataclass
class RunResult:
    """Outcome of one accelerator run."""

    values: np.ndarray
    iterations: int
    cycles: int
    frequency_mhz: float
    edges_processed: int
    dram_bytes_read: int
    dram_bytes_written: int
    hit_rate: float
    stats: dict = field(default_factory=dict)

    @property
    def seconds(self):
        return self.cycles / (self.frequency_mhz * 1e6)

    @property
    def gteps(self):
        """Billions of traversed edges per second (processed edges)."""
        if self.cycles == 0:
            return 0.0
        return self.edges_processed / self.seconds / 1e9

    @property
    def bandwidth_gb_s(self):
        total = self.dram_bytes_read + self.dram_bytes_written
        return total / self.seconds / 1e9 if self.cycles else 0.0


def _round_up_pow2(value):
    power = 1
    while power < value:
        power *= 2
    return power


class AcceleratorSystem:
    """One fully assembled accelerator instance."""

    def __init__(self, graph, algorithm, config, use_hashing=True,
                 use_dbg=False, source=0, seed=0, checks=False,
                 fault_plan=None, watchdog_window=200_000,
                 telemetry=None, checkpoint=None, spans=None):
        self.original_graph = graph
        if isinstance(algorithm, AlgorithmSpec):
            self.spec = algorithm
        elif algorithm in ("sssp", "bfs"):
            self.spec = get_spec(algorithm, source=source)
        else:
            self.spec = get_spec(algorithm)
        self.config = config.scaled_for(graph)
        self.use_hashing = use_hashing
        self.use_dbg = use_dbg

        working = graph
        if self.spec.weighted and not working.weighted:
            working = working.with_weights(np.random.default_rng(42))
        permutation = None
        if use_dbg:
            permutation = dbg_reorder(working)
        if use_hashing:
            hashing = hash_cache_lines(
                working.n_nodes, self.config.nodes_per_dst_interval,
                seed=11 + seed,
            )
            permutation = (
                hashing if permutation is None
                else compose(permutation, hashing)
            )
        self._preperm_graph = working
        if permutation is not None:
            working = working.relabel(permutation)
        self.graph = working
        self.permutation = permutation

        self._build()

        # Opt-in robustness instrumentation (repro.faults).  Imported
        # lazily so the default path never touches the package.
        self.ledger = None
        self.fault_state = None
        if checks:
            from repro.faults import TokenLedger, Watchdog
            self.ledger = TokenLedger()
            for element in self.pes:
                element._ledger = self.ledger
            for bank in self.hierarchy.banks:
                bank._ledger = self.ledger
            for channel in self.mem.channels:
                channel._ledger = self.ledger
            self.engine.watchdog = Watchdog(window=watchdog_window)
        if fault_plan is not None:
            from repro.faults import install_faults
            install_faults(self, fault_plan)

        # Opt-in cycle-resolved telemetry (repro.telemetry): accepts a
        # TelemetryConfig, an attached-elsewhere Telemetry, or True for
        # defaults.  Also lazily imported; the default path pays only
        # the "is None" hook gates.
        self.telemetry = None
        if telemetry:
            from repro.telemetry import Telemetry, TelemetryConfig
            if isinstance(telemetry, Telemetry):
                collector = telemetry
            elif telemetry is True:
                collector = Telemetry()
            elif isinstance(telemetry, TelemetryConfig):
                collector = Telemetry(telemetry)
            else:
                raise TypeError(
                    f"telemetry must be a Telemetry, TelemetryConfig, or "
                    f"True; got {telemetry!r}"
                )
            self.telemetry = collector.attach(self)

        # Opt-in request-level span tracing (repro.tracing): accepts a
        # SpansConfig, an attached-elsewhere SpanTracer, or True for
        # defaults.  Same lazy-import + "is None" hook-gate story as
        # telemetry; also installed as engine.tracer so stall reports
        # can embed the flight-recorder tail.
        self.tracer = None
        if spans:
            from repro.tracing import SpanTracer, SpansConfig
            if isinstance(spans, SpanTracer):
                tracer = spans
            elif spans is True:
                tracer = SpanTracer()
            elif isinstance(spans, SpansConfig):
                tracer = SpanTracer(spans)
            else:
                raise TypeError(
                    f"spans must be a SpanTracer, SpansConfig, or True; "
                    f"got {spans!r}"
                )
            self.tracer = tracer.attach(self)

        # Opt-in periodic checkpointing (repro.checkpoint): accepts a
        # Checkpointer, a "path[:interval]" spec string, or nothing --
        # in which case the REPRO_CHECKPOINT environment spec applies.
        # Lazily imported like the other robustness hooks; disabled
        # runs pay only the engine's "is None" gate.
        self.checkpointer = None
        if checkpoint is None:
            checkpoint = os.environ.get("REPRO_CHECKPOINT", "").strip() \
                or None
        if checkpoint is not None:
            from repro.checkpoint import Checkpointer
            if isinstance(checkpoint, Checkpointer):
                checkpointer = checkpoint
            else:
                checkpointer = Checkpointer.from_spec(checkpoint)
            checkpointer.attach(self)
            self.checkpointer = checkpointer

    # -- construction --------------------------------------------------------

    def _build(self):
        config = self.config
        design = config.design
        spec = self.spec
        self.engine = make_engine()
        self.partitioning = partition_edges(
            self.graph, config.nodes_per_src_interval,
            config.nodes_per_dst_interval,
        )
        self.layout = GraphLayout(
            self.partitioning,
            node_bytes=spec.node_bytes,
            use_const=spec.use_const,
            synchronous=spec.synchronous,
        )
        mem_bytes = _round_up_pow2(self.layout.required_bytes + (1 << 16))
        self.mem = MemorySystem(
            self.engine, mem_bytes, n_channels=design.n_channels,
            timings=config.dram_timings,
        )
        floorplan = AWS_F1_FLOORPLAN if config.use_floorplan else None
        self.floorplan = floorplan
        self.hierarchy = build_hierarchy(
            self.engine, self.mem, design, scale=config.structure_scale,
            cache_scale=config.cache_scale, floorplan=floorplan,
        )
        self.frequency_model = FrequencyModel()
        self.frequency_mhz = self.frequency_model.frequency_mhz(design)

        # Burst interconnect: per-PE DMA ports into per-channel arbiters,
        # with die crossings where PE and controller sit on different SLRs.
        pe_dies = (floorplan.assign_pes(design.n_pes)
                   if floorplan is not None else [None] * design.n_pes)
        burst_ports = [[None] * design.n_channels
                       for _ in range(design.n_pes)]
        for channel_index, channel in enumerate(self.mem.channels):
            inputs = []
            for pe in range(design.n_pes):
                hops = 0
                if floorplan is not None:
                    hops = floorplan.hops(
                        pe_dies[pe], floorplan.die_of_channel(channel_index)
                    )
                near, far = cross_link(
                    self.engine, 4, hops,
                    name=f"burst.pe{pe}.ch{channel_index}",
                )
                burst_ports[pe][channel_index] = near
                inputs.append(far)
            self.engine.add_component(
                RoundRobinArbiter(inputs, channel.req,
                                  name=f"burst.arb{channel_index}")
            )

        job_channel = self.engine.add_channel(Channel(1, name="jobs"))
        done_channel = self.engine.add_channel(
            Channel(max(2, design.n_pes), name="done")
        )
        self.scheduler = Scheduler(job_channel, done_channel,
                                   self.partitioning)
        self.engine.add_component(self.scheduler)

        self.pes = []
        for pe in range(design.n_pes):
            dma_resp = self.engine.add_channel(
                Channel(config.dma_queue_beats, name=f"pe{pe}.dma")
            )
            element = ProcessingElement(
                pe, spec, self.layout, self.mem, config,
                moms_req=self.hierarchy.pe_req_ports[pe],
                moms_resp=self.hierarchy.pe_resp_ports[pe],
                burst_ports=burst_ports[pe],
                dma_resp=dma_resp,
                job_channel=job_channel,
                done_channel=done_channel,
            )
            self.engine.add_component(element)
            self.pes.append(element)

        # Materialize the graph image.  Initial values are defined in the
        # *original* labeling (e.g. SCC labels are node ids, SSSP's source
        # is an original id) and scattered through the reordering
        # permutation into the working label space.
        v_in = spec.initial_dram_image(self._preperm_graph)
        v_const = spec.const_dram_image(self._preperm_graph)
        if self.permutation is not None:
            v_in = self._scatter(v_in)
            v_const = self._scatter(v_const) if v_const is not None else None
        self.layout.materialize(self.mem, v_in, v_const)
        base = spec.const_scalar(self.graph)
        for element in self.pes:
            element.configure_run(base)

    def _scatter(self, values):
        """Move a per-node array from original into working label space."""
        out = np.empty_like(values)
        out[self.permutation] = values
        return out

    # -- execution -----------------------------------------------------------

    def _update_active_flags(self):
        part = self.partitioning
        active = self.scheduler.active_srcs
        for d in range(part.q_dst):
            for s in range(part.q_src):
                self.layout.set_active(self.mem, d, s, bool(active[s]))

    # The outer run loop keeps its state in ``_run_*`` instance
    # attributes instead of local variables so a snapshot taken
    # mid-iteration (repro.checkpoint) captures it: Python frames do
    # not pickle, but the attributes do, and resume_run() re-enters
    # the loop from them.
    _run_in_iteration = False

    def run(self, max_iterations=None, max_cycles_per_iteration=5_000_000):
        """Run to convergence (or the iteration budget); returns RunResult."""
        spec = self.spec
        if max_iterations is None:
            max_iterations = 10 if spec.always_active else 1_000
        self._run_iterations = 0
        self._run_max_iterations = max_iterations
        self._run_budget = max_cycles_per_iteration
        self._run_start_cycle = self.engine.now
        self._run_iter_start = self.engine.now
        self._run_in_iteration = False
        if self.telemetry is not None:
            self.telemetry.begin(self.engine)
        return self._drive(resume=False)

    def resume_run(self):
        """Continue a snapshot-restored run to completion.

        Only valid on a system restored mid-run by
        :func:`repro.checkpoint.restore_system`; the interrupted
        iteration finishes first (with the remaining slice of its cycle
        budget), then the outer loop proceeds as if never interrupted.
        The returned RunResult is bit-identical to the uninterrupted
        run's.
        """
        if not self._run_in_iteration:
            raise RuntimeError(
                "resume_run() needs a run interrupted mid-iteration; "
                "this system has none (snapshots are only written "
                "inside engine.run, so any loaded snapshot has one)"
            )
        return self._drive(resume=True)

    def _drive(self, resume):
        spec = self.spec
        while True:
            if resume:
                resume = False
                engine_resume = True  # finish the interrupted iteration
            else:
                if self._run_iterations >= self._run_max_iterations:
                    break
                if not spec.always_active:
                    self._update_active_flags()
                queued = self.scheduler.start_iteration(spec.always_active)
                if queued == 0:
                    break
                self._run_iterations += 1
                self._run_iter_start = self.engine.now
                self._run_in_iteration = True
                engine_resume = False
            # raise_on_limit: a busted budget raises CycleLimitError
            # with the activity counters and a stall report attached.
            # A resumed iteration gets only the unused remainder of its
            # budget, so interrupting cannot extend the allowance.
            # stable_done: _iteration_done reads scheduler queues and
            # PE phases, all of which flip only through channel pushes
            # or phase transitions on real ticks -- never inside a
            # silent cycle -- so macro-tick fusion (REPRO_FUSION) is
            # licensed for the accelerator run loop.
            self.engine.run(
                done=self._iteration_done,
                max_cycles=self._run_budget
                - (self.engine.now - self._run_iter_start),
                raise_on_limit=True,
                resume=engine_resume,
                stable_done=True,
            )
            self._run_in_iteration = False
            if self.ledger is not None:
                self._check_iteration_drained(self._run_iterations)
            work_remains = self.scheduler.finish_iteration()
            if spec.synchronous:
                self.layout.swap_in_out()
            if not spec.always_active and not work_remains:
                break
        return self._finish_run()

    def _finish_run(self):
        spec = self.spec
        iterations = self._run_iterations
        cycles = self.engine.now - self._run_start_cycle
        if self.telemetry is not None:
            self.telemetry.finalize(self.engine)
        words = self.layout.read_values(self.mem, "in")
        if spec.node_bytes == 4:
            words = np.asarray(words, dtype=np.uint32)
        values = spec.finalize(words, self.graph)
        if self.permutation is not None:
            # Report results in the original labeling.
            values = values[self.permutation]
        return RunResult(
            values=values,
            iterations=iterations,
            cycles=cycles,
            frequency_mhz=self.frequency_mhz,
            edges_processed=sum(pe.stats.edges_processed for pe in self.pes),
            dram_bytes_read=self.mem.total_bytes_read(),
            dram_bytes_written=self.mem.total_bytes_written(),
            hit_rate=self.hierarchy.hit_rate(),
            stats=self._collect_stats(),
        )

    def _check_iteration_drained(self, iteration):
        """End-of-iteration invariants: ledger + structural drain."""
        from repro.faults import check_drained
        context = f"end of iteration {iteration}"
        if self.ledger is not None:
            self.ledger.assert_drained(context)
        check_drained(self, context)
        for channel in self.engine._channels:
            channel.validate()

    @property
    def use_active_flags(self):
        return not self.spec.always_active

    def _iteration_done(self):
        return (
            self.scheduler.iteration_done()
            and all(pe.is_idle() for pe in self.pes)
        )

    def _collect_stats(self):
        design = self.config.design
        # Macro-tick bookkeeping (fused_runs & co.) describes how the
        # engine advanced time, and legitimately varies with hook
        # cadence: a checkpointer or sampler clamps fusion horizons, so
        # a checkpointed run fuses differently from a bare one while
        # computing the exact same model.  Per-run stats are an
        # architectural fingerprint (replay and chaos compare them
        # across hook configurations bit for bit), so the bookkeeping
        # stays out of them; it is surfaced through EngineActivity
        # (profile) and the telemetry summary instead.
        engine_activity = self.engine.activity()
        for key in self.engine.FUSION_BOOKKEEPING_KEYS:
            engine_activity.pop(key, None)
        stats = {
            "raw_stalls": sum(pe.stats.raw_stalls for pe in self.pes),
            "moms_request_stalls": sum(
                pe.stats.moms_request_stalls for pe in self.pes
            ),
            "id_stalls": sum(pe.stats.id_stalls for pe in self.pes),
            "local_reads": sum(pe.stats.local_reads for pe in self.pes),
            "moms_reads": sum(pe.stats.moms_reads for pe in self.pes),
            "jobs": self.scheduler.jobs_completed,
            "dram_lines_single": sum(
                ch.stats.lines_single for ch in self.mem.channels
            ),
            "dram_single_line_fraction": self.mem.single_line_fraction(),
            "dram_effective_bw_ratio": self.mem.effective_bandwidth_ratio(),
            "stall_breakdown": self.hierarchy.stall_breakdown(),
            "organization": design.organization,
            "cycles_skipped": self.engine.cycles_skipped,
            "engine": engine_activity,
        }
        # MSHR merge rate -- merged (secondary) misses over all misses,
        # the paper's key coalescing-efficiency figure (Fig. 12).
        merge_by_bank = {}
        secondary_total = miss_total = 0
        for bank in self.hierarchy.banks:
            secondary = bank.stats.secondary_misses
            misses = secondary + bank.stats.primary_misses
            secondary_total += secondary
            miss_total += misses
            merge_by_bank[bank.name] = (
                round(secondary / misses, 4) if misses else 0.0
            )
        stats["mshr_merge_rate"] = (
            round(secondary_total / miss_total, 4) if miss_total else 0.0
        )
        stats["mshr_merge_rate_by_bank"] = merge_by_bank
        if self.telemetry is not None:
            stats["telemetry"] = self.telemetry.summary()
        # getattr: systems restored from pre-tracing snapshots have no
        # tracer attribute (older snapshots are accepted, DESIGN 6.7).
        tracer = getattr(self, "tracer", None)
        if tracer is not None:
            stats["spans"] = tracer.summary()
        return stats


def run_algorithm(graph, algorithm, config, **kwargs):
    """Convenience one-shot: build a system and run it."""
    run_kwargs = {}
    if "max_iterations" in kwargs:
        run_kwargs["max_iterations"] = kwargs.pop("max_iterations")
    system = AcceleratorSystem(graph, algorithm, config, **kwargs)
    return system.run(**run_kwargs)
