"""FIFO channels and fixed-latency delay lines.

These are the only two communication primitives in the simulator.  Both
are *registered*: a token pushed in cycle ``t`` is first visible to the
consumer in cycle ``t + 1`` (channel) or ``t + latency`` (delay line).
Capacity accounting is also registered -- a slot freed by a pop in cycle
``t`` can only be reused in cycle ``t + 1`` -- so simulation results do
not depend on the order in which components are ticked within a cycle.

Channels are preallocated power-of-two ring buffers.  Three integers
describe the whole FIFO state -- ``_head`` (ring index of the oldest
visible token), ``_visible`` (committed tokens), ``_staged_n`` (tokens
pushed this cycle) -- which makes :meth:`Channel.commit`, the single
hottest function in the simulator, integer bookkeeping instead of list
copying.  Staged tokens live at ``(head + visible + staged_n) & mask``;
a pop advances ``head`` and shrinks ``visible`` together, so the staging
region never moves mid-cycle.  Slots are not cleared on pop (popped
references are retained until the slot is overwritten, bounded by the
ring size) -- measurably cheaper and harmless for the token objects the
simulator moves.

On top of the generic object FIFO sits a *fields API*
(:meth:`push_request` / :meth:`front_request` / :meth:`pop_request`,
the ``response`` equivalents, :meth:`pop_line` and :meth:`drop`): hot
producers and consumers exchange plain field values instead of token
objects.  On a plain :class:`Channel` the fields API recycles pooled
``MomsRequest`` / ``MomsResponse`` objects (see
:mod:`repro.core.messages`); on a :class:`SoaChannel` the fields go
straight into struct-of-arrays columns and no token object exists at
all.  Both ends of a channel must agree on the convention, which the
hierarchy builder guarantees by only using :class:`SoaChannel` on
direct point-to-point PE<->bank paths.

For the demand-driven engine, channels are also the wake fabric:
components subscribe to *data* (tokens visible) and *space* (capacity
free) conditions, and every end-of-cycle :meth:`Channel.commit` wakes
the subscribers whose condition holds.  Because commits only run on
channels touched during the cycle, wake traffic is proportional to
actual token movement.
"""

from collections import deque

# Token classes and freelists for the object-mode fields API.  Bound by
# repro.core.messages at its import time (a direct import here would be
# circular: repro.core.bank imports repro.sim).  While unbound, the
# fresh-construction fallback below performs the import, which triggers
# the binding as a side effect.
_MomsRequest = None
_MomsResponse = None
_request_pool = None
_response_pool = None


def _new_request(addr, size, req_id, port):
    cls = _MomsRequest
    if cls is None:
        import repro.core.messages  # noqa: F401  (binds the globals)
        cls = _MomsRequest
    cls._fresh += 1
    return cls(addr, size, req_id, port)


def _new_response(req_id, addr, data, port):
    cls = _MomsResponse
    if cls is None:
        import repro.core.messages  # noqa: F401  (binds the globals)
        cls = _MomsResponse
    cls._fresh += 1
    return cls(req_id, addr, data, port)


def _ring_size_for(capacity):
    size = 1
    while size < capacity:
        size *= 2
    return size


class Channel:
    """A capacity-limited FIFO with next-cycle visibility.

    The producer calls :meth:`can_push` / :meth:`push`; the consumer
    calls :meth:`can_pop` / :meth:`front` / :meth:`pop`.  The engine
    calls :meth:`commit` at the end of every cycle to make staged pushes
    visible and to refresh the registered occupancy used for capacity
    checks.
    """

    # Backpressure fault hook: original capacity while throttled.  A
    # class attribute so unthrottled channels pay nothing.
    _base_capacity = None

    def __init__(self, capacity, name=""):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        size = _ring_size_for(capacity)
        self._ring = [None] * size
        self._mask = size - 1
        self._head = 0  # ring index of the oldest visible token
        self._visible = 0  # committed tokens the consumer may pop
        self._staged_n = 0  # tokens pushed this cycle (visible next)
        self._occ = 0  # registered occupancy at cycle start
        self._engine = None
        self._dirty = False  # touched this cycle -> needs commit
        self._data_subs = []  # consumers woken when tokens are visible
        self._space_subs = []  # producers woken when capacity is free
        self._space_requests = []  # one-shot space wakes
        # Lifetime statistics, useful for utilization reports.
        self.total_pushed = 0
        self.total_popped = 0

    def bind(self, engine):
        """Attach this channel to an engine (done by Engine.add_channel)."""
        self._engine = engine

    # -- wake wiring --------------------------------------------------------

    def subscribe_data(self, component):
        """Wake *component* whenever a commit leaves tokens visible."""
        if component not in self._data_subs:
            self._data_subs.append(component)
        return self

    def subscribe_space(self, component):
        """Wake *component* whenever a commit leaves free capacity."""
        if component not in self._space_subs:
            self._space_subs.append(component)
        return self

    def request_space_wake(self, component):
        """One-shot: wake *component* at the next commit with free space.

        The workhorse of the demand engine's backpressure handling: a
        producer that found this channel full arms exactly one wake
        instead of subscribing statically, so commits with free space
        stop waking producers that have nothing to send.
        """
        if component not in self._space_requests:
            self._space_requests.append(component)

    # -- fault hooks --------------------------------------------------------

    def throttle(self, capacity):
        """Clamp the effective capacity (backpressure fault window).

        All producers -- including the arbiters and crossbars that
        inline their capacity arithmetic -- read ``capacity``, so the
        clamp back-pressures every path uniformly.  Tokens already in
        flight stay poppable.  :meth:`restore` undoes the clamp.
        """
        if self._base_capacity is None:
            self._base_capacity = self.capacity
        if capacity > self._mask + 1:
            self._grow_ring(capacity)
        self.capacity = capacity

    def restore(self):
        """Undo :meth:`throttle`; no-op if not throttled."""
        if self._base_capacity is not None:
            self.capacity = self._base_capacity
            self._base_capacity = None

    def _grow_ring(self, capacity):
        """Re-lay the ring for a larger capacity (throttle above base)."""
        count = self._visible + self._staged_n
        old_ring, old_mask, head = self._ring, self._mask, self._head
        size = _ring_size_for(capacity)
        ring = [None] * size
        for i in range(count):
            ring[i] = old_ring[(head + i) & old_mask]
        self._ring = ring
        self._mask = size - 1
        self._head = 0

    def validate(self):
        """Assert occupancy accounting invariants (checked mode only).

        Total in-flight tokens can never exceed the channel's true
        capacity (throttling only lowers the limit for *new* pushes),
        and visible tokens can only shrink within a cycle (pops), never
        grow past the registered occupancy.
        """
        limit = self.capacity if self._base_capacity is None \
            else self._base_capacity
        if self.pending > limit:
            raise AssertionError(
                f"channel {self.name!r}: {self.pending} tokens in flight "
                f"exceeds capacity {limit}"
            )
        if self._visible > self._occ:
            raise AssertionError(
                f"channel {self.name!r}: visible tokens "
                f"({self._visible}) exceed registered occupancy "
                f"({self._occ}) mid-cycle"
            )

    # -- producer side ------------------------------------------------------

    def can_push(self):
        """True if a push this cycle would not exceed capacity."""
        return self._occ + self._staged_n < self.capacity

    def can_push_n(self, n):
        """True if *n* pushes this cycle would not exceed capacity."""
        return self._occ + self._staged_n + n <= self.capacity

    def free_slots(self):
        """Number of pushes still accepted this cycle."""
        return self.capacity - self._occ - self._staged_n

    def _touch(self, engine):
        if not self._dirty:
            self._dirty = True
            engine._dirty_channels.append(self)

    def push(self, item):
        """Stage *item*; it becomes poppable next cycle."""
        staged = self._staged_n
        if self._occ + staged >= self.capacity:
            raise OverflowError(f"push to full channel {self.name!r}")
        self._ring[(self._head + self._visible + staged) & self._mask] = item
        self._staged_n = staged + 1
        self.total_pushed += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)

    def push_many(self, items):
        """Stage several tokens in one call (one capacity check).

        The hot-path variant of :meth:`push` for producers that emit
        bursts -- e.g. a DRAM channel delivering several beats to one
        requester per cycle -- saving per-token bookkeeping.
        """
        n = len(items)
        if n == 0:
            return
        staged = self._staged_n
        if self._occ + staged + n > self.capacity:
            raise OverflowError(
                f"push of {n} tokens to full channel {self.name!r}"
            )
        ring = self._ring
        mask = self._mask
        base = self._head + self._visible + staged
        first = base & mask
        if first + n <= mask + 1:
            ring[first:first + n] = items
        else:
            for i, item in enumerate(items):
                ring[(base + i) & mask] = item
        self._staged_n = staged + n
        self.total_pushed += n
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)

    # -- consumer side ------------------------------------------------------

    def can_pop(self):
        """True if a token is available this cycle."""
        return self._visible > 0

    def front(self):
        """Peek at the next token without consuming it."""
        if not self._visible:
            raise IndexError(f"front of empty channel {self.name!r}")
        return self._ring[self._head]

    def pop(self):
        """Consume and return the next token."""
        visible = self._visible
        if not visible:
            raise IndexError(f"pop from empty channel {self.name!r}")
        head = self._head
        item = self._ring[head]
        self._head = (head + 1) & self._mask
        self._visible = visible - 1
        self.total_popped += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)
        return item

    def pop_many(self, limit=None):
        """Consume up to *limit* visible tokens (all of them by default).

        One bookkeeping update for the whole batch -- the consumer-side
        mirror of :meth:`push_many` for components that drain a queue
        in a single tick (DMA beats, write acks).
        """
        n = self._visible
        if limit is not None and limit < n:
            n = limit
        if n <= 0:
            return []
        ring = self._ring
        mask = self._mask
        head = self._head
        if head + n <= mask + 1:
            items = ring[head:head + n]
        else:
            items = [ring[(head + i) & mask] for i in range(n)]
        self._head = (head + n) & mask
        self._visible -= n
        self.total_popped += n
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)
        return items

    def pop_all(self):
        """Consume every visible token (see :meth:`pop_many`)."""
        return self.pop_many()

    def drop(self):
        """Consume the head token and recycle it to its freelist.

        For consumers that already read everything they need via
        :meth:`front` / :meth:`front_request` / :meth:`front_response`:
        the token returns to its pool without another field round trip.
        """
        item = self.pop()
        pool = getattr(type(item), "_pool", None)
        if pool is not None:
            pool.append(item)

    # -- fields API (see module docstring) ----------------------------------

    def push_request(self, addr, size, req_id, port):
        """Stage a MOMS request given as plain fields (pooled token)."""
        pool = _request_pool
        if pool:
            token = pool.pop()
            token.addr = addr
            token.size = size
            token.req_id = req_id
            token.port = port
        else:
            token = _new_request(addr, size, req_id, port)
        self.push(token)

    def front_request(self):
        """Peek the head request as an ``(addr, size, req_id, port)`` tuple."""
        token = self.front()
        return (token.addr, token.size, token.req_id, token.port)

    def pop_request(self):
        """Consume the head request; returns its field tuple."""
        token = self.pop()
        fields = (token.addr, token.size, token.req_id, token.port)
        pool = _request_pool
        if pool is not None:
            pool.append(token)
        return fields

    def push_response(self, req_id, addr, data, port):
        """Stage a MOMS response given as plain fields (pooled token)."""
        pool = _response_pool
        if pool:
            token = pool.pop()
            token.req_id = req_id
            token.addr = addr
            token.data = data
            token.port = port
        else:
            token = _new_response(req_id, addr, data, port)
        self.push(token)

    def front_response(self):
        """Peek the head response as a ``(req_id, addr, data, port)`` tuple."""
        token = self.front()
        return (token.req_id, token.addr, token.data, token.port)

    def pop_response(self):
        """Consume the head response; returns its field tuple."""
        token = self.pop()
        fields = (token.req_id, token.addr, token.data, token.port)
        pool = _response_pool
        if pool is not None:
            pool.append(token)
        return fields

    def pop_line(self):
        """Consume a returned memory line as ``(addr, data)``.

        Line fills arrive as either ``MemResponse`` (from DRAM) or
        ``MomsResponse`` (from a next-level MOMS); both are recycled to
        their own freelists by type, so the bank never needs to know
        which kind it received.
        """
        token = self.pop()
        fields = (token.addr, token.data)
        pool = getattr(type(token), "_pool", None)
        if pool is not None:
            pool.append(token)
        return fields

    # -- end of cycle -------------------------------------------------------

    def commit(self):
        """End-of-cycle update; called by the engine on dirty channels."""
        engine = self._engine
        staged = self._staged_n
        if staged:
            self._visible += staged
            self._staged_n = 0
            if engine is not None:
                # Newly visible tokens enable progress next cycle even if
                # nothing else happened; don't let the engine fast-forward
                # or declare deadlock past them.
                engine._active = True
        occupancy = self._visible
        self._occ = occupancy
        self._dirty = False
        # The all-tick legacy engine never reads the wake set, so the
        # whole wake loop is demand-engine-only work.
        if engine is None or not engine._demand_enabled:
            return
        # Engine.wake() inlined: this loop runs for every token movement
        # in the system, so the call and dedup cost is worth flattening.
        wake = engine._wake_next
        if occupancy and self._data_subs:
            for component in self._data_subs:
                order = component._engine_order
                if order not in wake:
                    wake[order] = component
                    engine.component_wakes += 1
                    component.wakes += 1
        if occupancy < self.capacity:
            for component in self._space_subs:
                order = component._engine_order
                if order not in wake:
                    wake[order] = component
                    engine.component_wakes += 1
                    component.wakes += 1
            requests = self._space_requests
            if requests:
                for component in requests:
                    order = component._engine_order
                    if order not in wake:
                        wake[order] = component
                        engine.component_wakes += 1
                        component.wakes += 1
                requests.clear()

    def __len__(self):
        """Number of tokens currently visible to the consumer."""
        return self._visible

    @property
    def pending(self):
        """Total tokens in flight (visible + staged)."""
        return self._visible + self._staged_n

    @property
    def fill_fraction(self):
        """Occupancy as a fraction of capacity (telemetry gauge).

        Uses in-flight tokens against the *true* capacity, so a
        throttled channel reports >1.0-free rather than pretending the
        clamp shrank the hardware FIFO.
        """
        limit = self.capacity if self._base_capacity is None \
            else self._base_capacity
        return (self._visible + self._staged_n) / limit

    def telemetry_row(self):
        """Occupancy snapshot for samplers; never mutates state."""
        return {
            "pending": self.pending,
            "visible": self._visible,
            "capacity": self.capacity,
            "total_pushed": self.total_pushed,
            "total_popped": self.total_popped,
        }


class SoaChannel(Channel):
    """Struct-of-arrays channel for direct point-to-point token paths.

    Field values live in parallel preallocated columns (``addr`` /
    ``size`` / ``port`` integers, plus object columns for ``req_id``
    and response ``data``), indexed by the same ring arithmetic as the
    base class; no token object exists between producer and consumer.
    Used by the hierarchy builder for the PE<->L1 request and response
    ports of the private and two-level organizations, where one bank
    owns both ends.  Paths through arbiters, crossbars, or die
    crossings move tokens opaquely and stay on plain channels.

    The generic object API (:meth:`push` / :meth:`front` / :meth:`pop`)
    still works -- tokens are decomposed into, and rebuilt from, the
    columns -- so harness code and fault tooling see a normal channel.
    ``kind`` ("request" or "response") only matters to that compat
    layer; the fields API addresses the columns directly.
    """

    def __init__(self, capacity, name="", kind="request"):
        if kind not in ("request", "response"):
            raise ValueError(f"unknown SoA channel kind {kind!r}")
        super().__init__(capacity, name)
        self.kind = kind
        size = self._mask + 1
        self._ring = None  # the object ring is replaced by columns
        self._col_addr = [0] * size
        self._col_size = [0] * size
        self._col_rid = [None] * size
        self._col_port = [0] * size
        self._col_data = [None] * size

    def _grow_ring(self, capacity):
        count = self._visible + self._staged_n
        old_mask, head = self._mask, self._head
        size = _ring_size_for(capacity)
        for attr in ("_col_addr", "_col_size", "_col_rid", "_col_port",
                     "_col_data"):
            old = getattr(self, attr)
            fresh = ([0] * size if attr in ("_col_addr", "_col_size",
                                            "_col_port") else [None] * size)
            for i in range(count):
                fresh[i] = old[(head + i) & old_mask]
            setattr(self, attr, fresh)
        self._mask = size - 1
        self._head = 0

    # -- fields API against the columns -------------------------------------

    def _stage_slot(self):
        staged = self._staged_n
        if self._occ + staged >= self.capacity:
            raise OverflowError(f"push to full channel {self.name!r}")
        self._staged_n = staged + 1
        self.total_pushed += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)
        return (self._head + self._visible + staged) & self._mask

    def _advance(self):
        visible = self._visible
        if not visible:
            raise IndexError(f"pop from empty channel {self.name!r}")
        head = self._head
        self._head = (head + 1) & self._mask
        self._visible = visible - 1
        self.total_popped += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)
        return head

    def push_request(self, addr, size, req_id, port):
        i = self._stage_slot()
        self._col_addr[i] = addr
        self._col_size[i] = size
        self._col_rid[i] = req_id
        self._col_port[i] = port

    def front_request(self):
        if not self._visible:
            raise IndexError(f"front of empty channel {self.name!r}")
        i = self._head
        return (self._col_addr[i], self._col_size[i],
                self._col_rid[i], self._col_port[i])

    def pop_request(self):
        i = self._advance()
        return (self._col_addr[i], self._col_size[i],
                self._col_rid[i], self._col_port[i])

    def push_response(self, req_id, addr, data, port):
        i = self._stage_slot()
        self._col_rid[i] = req_id
        self._col_addr[i] = addr
        self._col_data[i] = data
        self._col_port[i] = port

    def front_response(self):
        if not self._visible:
            raise IndexError(f"front of empty channel {self.name!r}")
        i = self._head
        return (self._col_rid[i], self._col_addr[i],
                self._col_data[i], self._col_port[i])

    def pop_response(self):
        i = self._advance()
        return (self._col_rid[i], self._col_addr[i],
                self._col_data[i], self._col_port[i])

    def drop(self):
        self._advance()

    def pop_line(self):
        i = self._advance()
        return (self._col_addr[i], self._col_data[i])

    # -- object-API compatibility layer --------------------------------------

    def push(self, item):
        if self.kind == "request":
            self.push_request(item.addr, item.size, item.req_id, item.port)
        else:
            self.push_response(item.req_id, item.addr, item.data, item.port)

    def push_many(self, items):
        if not self.can_push_n(len(items)):
            raise OverflowError(
                f"push of {len(items)} tokens to full channel {self.name!r}"
            )
        for item in items:
            # simlint: disable=R2 -- this IS the bulk API: one capacity
            # check above, then self.push routes each token into the
            # SoA field columns (object-API compatibility shim).
            self.push(item)

    def _rebuild(self, i):
        if self.kind == "request":
            return _new_request(self._col_addr[i], self._col_size[i],
                                self._col_rid[i], self._col_port[i])
        return _new_response(self._col_rid[i], self._col_addr[i],
                             self._col_data[i], self._col_port[i])

    def front(self):
        if not self._visible:
            raise IndexError(f"front of empty channel {self.name!r}")
        return self._rebuild(self._head)

    def pop(self):
        return self._rebuild(self._advance())

    def pop_many(self, limit=None):
        n = self._visible
        if limit is not None and limit < n:
            n = limit
        return [self.pop() for _ in range(n)]


class DelayLine:
    """An unbounded pipe that delivers each token ``latency`` cycles later.

    Used for memory access latency and die-crossing register stages.
    Tokens keep FIFO order because the latency is constant.  When a
    consumer is subscribed, every push schedules a wake timer for the
    token's maturity cycle, so the consumer sleeps through the whole
    latency window.
    """

    def __init__(self, latency, name=""):
        if latency < 1:
            raise ValueError("delay line latency must be >= 1")
        self.latency = latency
        self.name = name
        self._in_flight = deque()  # (ready_time, item)
        self._engine = None
        self._consumer = None
        self.total_pushed = 0

    def bind(self, engine):
        self._engine = engine

    def subscribe_data(self, component):
        """Wake *component* when each token matures (one consumer)."""
        self._consumer = component
        return self

    def push(self, item):
        """Insert *item*; it becomes poppable ``latency`` cycles from now."""
        engine = self._engine
        now = engine.now if engine is not None else 0
        ready = now + self.latency
        self._in_flight.append((ready, item))
        self.total_pushed += 1
        if engine is not None:
            engine.mark_active()
            if self._consumer is not None:
                engine.wake_at(self._consumer, ready)
            else:
                engine.note_event_at(ready)

    def can_pop(self):
        if not self._in_flight:
            return False
        now = self._engine.now if self._engine is not None else 0
        return self._in_flight[0][0] <= now

    def front(self):
        return self._in_flight[0][1]

    def pop(self):
        if not self.can_pop():
            raise IndexError(f"pop from not-ready delay line {self.name!r}")
        _, item = self._in_flight.popleft()
        if self._engine is not None:
            self._engine.mark_active()
        return item

    def next_event_time(self):
        """Cycle at which the head token becomes ready, or None if empty."""
        if not self._in_flight:
            return None
        return self._in_flight[0][0]

    def commit(self):
        """Delay lines need no end-of-cycle action; kept for uniformity."""

    def __len__(self):
        return len(self._in_flight)

    @property
    def pending(self):
        return len(self._in_flight)
