"""FIFO channels and fixed-latency delay lines.

These are the only two communication primitives in the simulator.  Both
are *registered*: a token pushed in cycle ``t`` is first visible to the
consumer in cycle ``t + 1`` (channel) or ``t + latency`` (delay line).
Capacity accounting is also registered -- a slot freed by a pop in cycle
``t`` can only be reused in cycle ``t + 1`` -- so simulation results do
not depend on the order in which components are ticked within a cycle.
"""

from collections import deque


class Channel:
    """A capacity-limited FIFO with next-cycle visibility.

    The producer calls :meth:`can_push` / :meth:`push`; the consumer
    calls :meth:`can_pop` / :meth:`front` / :meth:`pop`.  The engine
    calls :meth:`commit` at the end of every cycle to make staged pushes
    visible and to refresh the registered occupancy used for capacity
    checks.
    """

    def __init__(self, capacity, name=""):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._ready = deque()
        self._staged = []
        self._occupancy_at_cycle_start = 0
        self._engine = None
        self._dirty = False  # touched this cycle -> needs commit
        # Lifetime statistics, useful for utilization reports.
        self.total_pushed = 0
        self.total_popped = 0

    def bind(self, engine):
        """Attach this channel to an engine (done by Engine.add_channel)."""
        self._engine = engine

    def can_push(self):
        """True if a push this cycle would not exceed capacity."""
        occupancy = self._occupancy_at_cycle_start + len(self._staged)
        return occupancy < self.capacity

    def can_push_n(self, n):
        """True if *n* pushes this cycle would not exceed capacity."""
        occupancy = self._occupancy_at_cycle_start + len(self._staged)
        return occupancy + n <= self.capacity

    def push(self, item):
        """Stage *item*; it becomes poppable next cycle."""
        if not self.can_push():
            raise OverflowError(f"push to full channel {self.name!r}")
        self._staged.append(item)
        self.total_pushed += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)

    def can_pop(self):
        """True if a token is available this cycle."""
        return bool(self._ready)

    def front(self):
        """Peek at the next token without consuming it."""
        return self._ready[0]

    def pop(self):
        """Consume and return the next token."""
        item = self._ready.popleft()
        self.total_popped += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)
        return item

    def commit(self):
        """End-of-cycle update; called by the engine on dirty channels."""
        if self._staged:
            self._ready.extend(self._staged)
            self._staged.clear()
            if self._engine is not None:
                # Newly visible tokens enable progress next cycle even if
                # nothing else happened; don't let the engine fast-forward
                # or declare deadlock past them.
                self._engine.mark_active()
        self._occupancy_at_cycle_start = len(self._ready)
        self._dirty = False

    def __len__(self):
        """Number of tokens currently visible to the consumer."""
        return len(self._ready)

    @property
    def pending(self):
        """Total tokens in flight (visible + staged)."""
        return len(self._ready) + len(self._staged)


class DelayLine:
    """An unbounded pipe that delivers each token ``latency`` cycles later.

    Used for memory access latency and die-crossing register stages.
    Tokens keep FIFO order because the latency is constant.
    """

    def __init__(self, latency, name=""):
        if latency < 1:
            raise ValueError("delay line latency must be >= 1")
        self.latency = latency
        self.name = name
        self._in_flight = deque()  # (ready_time, item)
        self._engine = None
        self.total_pushed = 0

    def bind(self, engine):
        self._engine = engine

    def push(self, item):
        """Insert *item*; it becomes poppable ``latency`` cycles from now."""
        now = self._engine.now if self._engine is not None else 0
        self._in_flight.append((now + self.latency, item))
        self.total_pushed += 1
        if self._engine is not None:
            self._engine.mark_active()

    def can_pop(self):
        if not self._in_flight:
            return False
        now = self._engine.now if self._engine is not None else 0
        return self._in_flight[0][0] <= now

    def front(self):
        return self._in_flight[0][1]

    def pop(self):
        if not self.can_pop():
            raise IndexError(f"pop from not-ready delay line {self.name!r}")
        _, item = self._in_flight.popleft()
        if self._engine is not None:
            self._engine.mark_active()
        return item

    def next_event_time(self):
        """Cycle at which the head token becomes ready, or None if empty."""
        if not self._in_flight:
            return None
        return self._in_flight[0][0]

    def commit(self):
        """Delay lines need no end-of-cycle action; kept for uniformity."""

    def __len__(self):
        return len(self._in_flight)

    @property
    def pending(self):
        return len(self._in_flight)
