"""FIFO channels and fixed-latency delay lines.

These are the only two communication primitives in the simulator.  Both
are *registered*: a token pushed in cycle ``t`` is first visible to the
consumer in cycle ``t + 1`` (channel) or ``t + latency`` (delay line).
Capacity accounting is also registered -- a slot freed by a pop in cycle
``t`` can only be reused in cycle ``t + 1`` -- so simulation results do
not depend on the order in which components are ticked within a cycle.

For the demand-driven engine, channels are also the wake fabric:
components subscribe to *data* (tokens visible) and *space* (capacity
free) conditions, and every end-of-cycle :meth:`Channel.commit` wakes
the subscribers whose condition holds.  Because commits only run on
channels touched during the cycle, wake traffic is proportional to
actual token movement.
"""

from collections import deque


class Channel:
    """A capacity-limited FIFO with next-cycle visibility.

    The producer calls :meth:`can_push` / :meth:`push`; the consumer
    calls :meth:`can_pop` / :meth:`front` / :meth:`pop`.  The engine
    calls :meth:`commit` at the end of every cycle to make staged pushes
    visible and to refresh the registered occupancy used for capacity
    checks.
    """

    # Backpressure fault hook: original capacity while throttled.  A
    # class attribute so unthrottled channels pay nothing.
    _base_capacity = None

    def __init__(self, capacity, name=""):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._ready = deque()
        self._staged = []
        self._occupancy_at_cycle_start = 0
        self._engine = None
        self._dirty = False  # touched this cycle -> needs commit
        self._data_subs = []  # consumers woken when tokens are visible
        self._space_subs = []  # producers woken when capacity is free
        self._space_requests = []  # one-shot space wakes
        # Lifetime statistics, useful for utilization reports.
        self.total_pushed = 0
        self.total_popped = 0

    def bind(self, engine):
        """Attach this channel to an engine (done by Engine.add_channel)."""
        self._engine = engine

    # -- wake wiring --------------------------------------------------------

    def subscribe_data(self, component):
        """Wake *component* whenever a commit leaves tokens visible."""
        if component not in self._data_subs:
            self._data_subs.append(component)
        return self

    def subscribe_space(self, component):
        """Wake *component* whenever a commit leaves free capacity."""
        if component not in self._space_subs:
            self._space_subs.append(component)
        return self

    def request_space_wake(self, component):
        """One-shot: wake *component* at the next commit with free space.

        For producers with data-dependent targets (e.g. a DRAM channel
        delivering to whichever requester is at the head of its
        schedule) where a static subscription would over-wake.
        """
        if component not in self._space_requests:
            self._space_requests.append(component)

    # -- fault hooks --------------------------------------------------------

    def throttle(self, capacity):
        """Clamp the effective capacity (backpressure fault window).

        All producers -- including the arbiters and crossbars that
        inline their capacity arithmetic -- read ``capacity``, so the
        clamp back-pressures every path uniformly.  Tokens already in
        flight stay poppable.  :meth:`restore` undoes the clamp.
        """
        if self._base_capacity is None:
            self._base_capacity = self.capacity
        self.capacity = capacity

    def restore(self):
        """Undo :meth:`throttle`; no-op if not throttled."""
        if self._base_capacity is not None:
            self.capacity = self._base_capacity
            self._base_capacity = None

    def validate(self):
        """Assert occupancy accounting invariants (checked mode only).

        Total in-flight tokens can never exceed the channel's true
        capacity (throttling only lowers the limit for *new* pushes),
        and visible tokens can only shrink within a cycle (pops), never
        grow past the registered occupancy.
        """
        limit = self.capacity if self._base_capacity is None \
            else self._base_capacity
        if self.pending > limit:
            raise AssertionError(
                f"channel {self.name!r}: {self.pending} tokens in flight "
                f"exceeds capacity {limit}"
            )
        if len(self._ready) > self._occupancy_at_cycle_start:
            raise AssertionError(
                f"channel {self.name!r}: visible tokens "
                f"({len(self._ready)}) exceed registered occupancy "
                f"({self._occupancy_at_cycle_start}) mid-cycle"
            )

    # -- producer side ------------------------------------------------------

    def can_push(self):
        """True if a push this cycle would not exceed capacity."""
        occupancy = self._occupancy_at_cycle_start + len(self._staged)
        return occupancy < self.capacity

    def can_push_n(self, n):
        """True if *n* pushes this cycle would not exceed capacity."""
        occupancy = self._occupancy_at_cycle_start + len(self._staged)
        return occupancy + n <= self.capacity

    def free_slots(self):
        """Number of pushes still accepted this cycle."""
        return self.capacity - self._occupancy_at_cycle_start \
            - len(self._staged)

    def _touch(self, engine):
        if not self._dirty:
            self._dirty = True
            engine._dirty_channels.append(self)

    def push(self, item):
        """Stage *item*; it becomes poppable next cycle."""
        staged = self._staged
        if self._occupancy_at_cycle_start + len(staged) >= self.capacity:
            raise OverflowError(f"push to full channel {self.name!r}")
        staged.append(item)
        self.total_pushed += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)

    def push_many(self, items):
        """Stage several tokens in one call (one capacity check).

        The hot-path variant of :meth:`push` for producers that emit
        bursts -- e.g. a DRAM channel delivering several beats to one
        requester per cycle -- saving per-token bookkeeping.
        """
        n = len(items)
        if n == 0:
            return
        if not self.can_push_n(n):
            raise OverflowError(
                f"push of {n} tokens to full channel {self.name!r}"
            )
        self._staged.extend(items)
        self.total_pushed += n
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)

    # -- consumer side ------------------------------------------------------

    def can_pop(self):
        """True if a token is available this cycle."""
        return bool(self._ready)

    def front(self):
        """Peek at the next token without consuming it."""
        return self._ready[0]

    def pop(self):
        """Consume and return the next token."""
        item = self._ready.popleft()
        self.total_popped += 1
        engine = self._engine
        if engine is not None:
            engine._active = True
            if not self._dirty:
                self._dirty = True
                engine._dirty_channels.append(self)
        return item

    # -- end of cycle -------------------------------------------------------

    def commit(self):
        """End-of-cycle update; called by the engine on dirty channels."""
        engine = self._engine
        staged = self._staged
        if staged:
            self._ready.extend(staged)
            staged.clear()
            if engine is not None:
                # Newly visible tokens enable progress next cycle even if
                # nothing else happened; don't let the engine fast-forward
                # or declare deadlock past them.
                engine._active = True
        occupancy = len(self._ready)
        self._occupancy_at_cycle_start = occupancy
        self._dirty = False
        if engine is None:
            return
        # Engine.wake() inlined: this loop runs for every token movement
        # in the system, so the call and dedup cost is worth flattening.
        wake = engine._wake_next
        if occupancy and self._data_subs:
            for component in self._data_subs:
                order = component._engine_order
                if order not in wake:
                    wake[order] = component
                    engine.component_wakes += 1
                    component.wakes += 1
        if occupancy < self.capacity:
            for component in self._space_subs:
                order = component._engine_order
                if order not in wake:
                    wake[order] = component
                    engine.component_wakes += 1
                    component.wakes += 1
            if self._space_requests:
                for component in self._space_requests:
                    order = component._engine_order
                    if order not in wake:
                        wake[order] = component
                        engine.component_wakes += 1
                        component.wakes += 1
                self._space_requests.clear()

    def __len__(self):
        """Number of tokens currently visible to the consumer."""
        return len(self._ready)

    @property
    def pending(self):
        """Total tokens in flight (visible + staged)."""
        return len(self._ready) + len(self._staged)

    @property
    def fill_fraction(self):
        """Occupancy as a fraction of capacity (telemetry gauge).

        Uses in-flight tokens against the *true* capacity, so a
        throttled channel reports >1.0-free rather than pretending the
        clamp shrank the hardware FIFO.
        """
        limit = self.capacity if self._base_capacity is None \
            else self._base_capacity
        return self.pending / limit

    def telemetry_row(self):
        """Occupancy snapshot for samplers; never mutates state."""
        return {
            "pending": self.pending,
            "visible": len(self._ready),
            "capacity": self.capacity,
            "total_pushed": self.total_pushed,
            "total_popped": self.total_popped,
        }


class DelayLine:
    """An unbounded pipe that delivers each token ``latency`` cycles later.

    Used for memory access latency and die-crossing register stages.
    Tokens keep FIFO order because the latency is constant.  When a
    consumer is subscribed, every push schedules a wake timer for the
    token's maturity cycle, so the consumer sleeps through the whole
    latency window.
    """

    def __init__(self, latency, name=""):
        if latency < 1:
            raise ValueError("delay line latency must be >= 1")
        self.latency = latency
        self.name = name
        self._in_flight = deque()  # (ready_time, item)
        self._engine = None
        self._consumer = None
        self.total_pushed = 0

    def bind(self, engine):
        self._engine = engine

    def subscribe_data(self, component):
        """Wake *component* when each token matures (one consumer)."""
        self._consumer = component
        return self

    def push(self, item):
        """Insert *item*; it becomes poppable ``latency`` cycles from now."""
        engine = self._engine
        now = engine.now if engine is not None else 0
        ready = now + self.latency
        self._in_flight.append((ready, item))
        self.total_pushed += 1
        if engine is not None:
            engine.mark_active()
            if self._consumer is not None:
                engine.wake_at(self._consumer, ready)
            else:
                engine.note_event_at(ready)

    def can_pop(self):
        if not self._in_flight:
            return False
        now = self._engine.now if self._engine is not None else 0
        return self._in_flight[0][0] <= now

    def front(self):
        return self._in_flight[0][1]

    def pop(self):
        if not self.can_pop():
            raise IndexError(f"pop from not-ready delay line {self.name!r}")
        _, item = self._in_flight.popleft()
        if self._engine is not None:
            self._engine.mark_active()
        return item

    def next_event_time(self):
        """Cycle at which the head token becomes ready, or None if empty."""
        if not self._in_flight:
            return None
        return self._in_flight[0][0]

    def commit(self):
        """Delay lines need no end-of-cycle action; kept for uniformity."""

    def __len__(self):
        return len(self._in_flight)

    @property
    def pending(self):
        return len(self._in_flight)
