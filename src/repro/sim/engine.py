"""The cycle engine: demand-driven ticking, channel commits, idle skip.

Two scheduling modes share one code base:

* **Demand-driven** (production): a component is ticked only on cycles
  where it was *woken* -- by a channel delivering tokens or freeing
  space, by a delay-line token maturing (a timer), or by itself
  (``engine.wake(self)``) because it holds in-progress work.  Wall-clock
  cost is proportional to *work*, not cycles x components.  When no
  component is runnable the engine jumps straight to the earliest
  scheduled timer, so idle latency windows cost O(log timers).
* **Legacy** (compatibility): any component that does not declare
  ``demand_driven = True`` forces the seed behaviour -- every component
  is ticked every cycle and idle fast-forward happens only on globally
  inactive cycles.  Simple test harness components keep working
  unmodified, and :class:`LegacyEngine` forces this mode everywhere so
  the two kernels can be compared cycle-for-cycle.

Cycle *results* are identical in both modes: demand scheduling only
skips ticks that are provably no-ops (no visible input tokens, no
freed space, no matured timer, no declared internal work), so the
state trajectory over ``engine.now`` -- and therefore every cycle
count and GTEPS figure -- is bit-identical.  Only the activity
counters (``cycles_simulated``, ``component_ticks``) differ; they are
the measure of the saved work.
"""

import heapq
import os


class DeadlockError(RuntimeError):
    """Raised when no component can make progress but work remains.

    ``report`` (when set) carries the structured stall report built by
    :func:`repro.faults.report.build_stall_report`: which channels hold
    or block work, who subscribes to them, and which timers remain.
    """

    report = None


class CycleLimitError(RuntimeError):
    """A ``run()`` call exhausted its cycle budget with work remaining.

    Raised only when the caller opts in with ``raise_on_limit=True``;
    the message and the ``activity`` / ``report`` attributes carry the
    diagnosis context (cycle counters, scheduler activity, and the wait
    structure at the moment the budget ran out).
    """

    def __init__(self, message, activity=None, report=None):
        super().__init__(message)
        self.activity = activity or {}
        self.report = report


class Component:
    """Base class for everything ticked by the engine.

    Subclasses override :meth:`tick`.  Components that set
    ``demand_driven = True`` are ticked only when woken and must wire
    their wake conditions (channel subscriptions, timers, or
    ``engine.wake(self)`` re-arms).  Components that keep the default
    ``False`` are ticked every cycle, which preserves the seed engine's
    contract for simple harness components.
    """

    demand_driven = False
    # Activity counters (class attributes double as zero defaults; the
    # first increment creates the instance attribute).
    ticks = 0
    wakes = 0
    _engine_order = -1
    _engine = None  # back-reference, set by Engine.add_component

    def request_wake(self):
        """Ask to be ticked next cycle (no-op before registration).

        For code outside tick() that mutates component state directly
        (e.g. queueing jobs between run() calls) and must ensure the
        component notices even under manual _step() driving.
        """
        if self._engine is not None:
            self._engine.wake(self)

    def tick(self, engine):
        """Advance this component by one clock cycle."""
        raise NotImplementedError

    def is_idle(self):
        """True if this component holds no in-progress work.

        Used only for end-of-run sanity checks; the default is True so
        purely reactive components need not override it.
        """
        return True


class Engine:
    """Drives a set of components and channels cycle by cycle.

    The per-cycle order is: tick the runnable components in
    registration order, then commit every channel touched this cycle.
    Registered (next-cycle) channel semantics make results independent
    of the registration order; the fixed order merely keeps arbitration
    deterministic.
    """

    _demand_enabled = True
    # Optional no-progress monitor (repro.faults.watchdog.Watchdog);
    # the run loop pays a single "is None" test per step when unset.
    watchdog = None
    # Optional telemetry sampler (repro.telemetry.Telemetry): same
    # contract as the watchdog -- exposes ``next_sample`` and
    # ``sample(engine)``, costs one "is None" test per step when unset,
    # and never mutates simulated state (cycle results are identical
    # with sampling on or off).  Sampling happens after a simulated
    # step only; fast-forwarded idle windows hold no state changes, so
    # the skipped rows would have duplicated the previous one.
    sampler = None
    # Optional periodic checkpointer (repro.checkpoint.Checkpointer):
    # same hook contract again -- exposes ``next_checkpoint`` and
    # ``poll(engine)``, costs one "is None" test per step when unset.
    # Polled *last* among the hooks so a snapshot captures the step's
    # watchdog/sampler effects: a run resumed from the snapshot then
    # continues exactly where the uninterrupted run's loop would.
    checkpointer = None
    # Optional span tracer (repro.tracing.SpanTracer).  Unlike the
    # three hooks above it is purely event-driven -- component hooks
    # feed it and the run loop never polls it -- but it hangs here so
    # stall/fault reports can reach its flight recorder (see
    # repro.faults.report.build_stall_report).
    tracer = None

    def __init__(self):
        self.now = 0
        self.cycles_simulated = 0
        self.cycles_skipped = 0
        self.component_ticks = 0
        self.component_wakes = 0
        self._components = []
        self._demand_components = []
        self._always = []  # legacy components, ticked every cycle
        self._channels = []
        self._time_sources = []
        self._dirty_channels = []
        self._active = False
        self._wake_next = {}  # order -> component, armed for the next step
        self._timers = []  # heap of (time, order); order -1 = bare event

    # -- registration -------------------------------------------------------

    def add_component(self, component):
        component._engine_order = len(self._components)
        component._engine = self
        self._components.append(component)
        if self._demand_enabled and getattr(component, "demand_driven", False):
            self._demand_components.append(component)
        else:
            self._always.append(component)
        return component

    def add_channel(self, channel):
        channel.bind(self)
        self._channels.append(channel)
        return channel

    def add_delay_line(self, line):
        line.bind(self)
        self._time_sources.append(line)
        return line

    def add_time_source(self, source):
        """Register any object exposing next_event_time() and .pending.

        Time sources steer the legacy idle fast-forward and the
        deadlock diagnosis; demand-driven components additionally
        schedule their own timers via :meth:`wake_at`.
        """
        self._time_sources.append(source)
        return source

    # -- wake API -----------------------------------------------------------

    def wake(self, component):
        """Arm *component* to be ticked on the next simulated cycle."""
        order = component._engine_order
        wake = self._wake_next
        if order not in wake:
            wake[order] = component
            self.component_wakes += 1
            component.wakes += 1

    def wake_at(self, component, time):
        """Arm *component* to be ticked at cycle *time* (at the latest)."""
        if time <= self.now + 1:
            self.wake(component)
        else:
            heapq.heappush(self._timers, (time, component._engine_order))

    def note_event_at(self, time):
        """Record that *something* happens at cycle *time*.

        Used by delay lines with no subscribed consumer: the event
        cannot wake anyone, but it bounds how far idle fast-forward may
        jump.
        """
        if time > self.now:
            heapq.heappush(self._timers, (time, -1))

    def mark_active(self):
        """Called by channels on push/pop; marks the cycle as productive.

        Steers the legacy idle fast-forward only; the demand-driven
        path derives activity from the wake set instead.
        """
        self._active = True

    # -- stepping -----------------------------------------------------------

    def _merge_due_timers(self):
        """Move timers due at the current cycle into the wake set."""
        timers = self._timers
        now = self.now
        wake = self._wake_next
        components = self._components
        while timers and timers[0][0] <= now:
            _, order = heapq.heappop(timers)
            if order >= 0 and order not in wake:
                wake[order] = components[order]

    def _step(self):
        self._active = False
        timers = self._timers
        if timers and timers[0][0] <= self.now:
            self._merge_due_timers()
        wake = self._wake_next
        self._wake_next = {}
        if self._always:
            # Legacy mode: at least one component relies on being
            # ticked every cycle, so everything is (seed semantics).
            run_list = self._components
        elif wake:
            if len(wake) == 1:
                run_list = wake.values()
            else:
                run_list = [wake[order] for order in sorted(wake)]
        else:
            run_list = ()
        self.component_ticks += len(run_list)
        for component in run_list:
            component.ticks += 1
            component.tick(self)
        # Only channels touched this cycle need an end-of-cycle commit.
        dirty = self._dirty_channels
        if dirty:
            self._dirty_channels = []
            for channel in dirty:
                channel.commit()
        self.now += 1
        self.cycles_simulated += 1

    # -- diagnosis ----------------------------------------------------------

    def _pending_work(self):
        if any(ch.pending for ch in self._channels):
            return True
        if any(source.pending for source in self._time_sources):
            return True
        return False

    def _scan_next_event_time(self):
        """Earliest next event across registered time sources (legacy)."""
        next_time = None
        for line in self._time_sources:
            t = line.next_event_time()
            if t is not None and (next_time is None or t < next_time):
                next_time = t
        return next_time

    def _raise_idle(self, done):
        """Idle with no scheduled events: finish or diagnose a deadlock."""
        if done is None:
            return True  # globally idle: nothing will ever happen
        if done():
            return True
        if self._pending_work():
            raise self._deadlock(
                f"no progress at cycle {self.now} with work pending"
            )
        raise self._deadlock(
            f"run() not done at cycle {self.now} but system is idle"
        )

    def _deadlock(self, message):
        """Build a DeadlockError enriched with a structured stall report."""
        # Imported lazily: the happy path never touches repro.faults.
        from repro.faults.report import build_stall_report, \
            format_stall_report
        report = build_stall_report(self, reason="deadlock")
        error = DeadlockError(f"{message}\n{format_stall_report(report)}")
        error.report = report
        return error

    def _cycle_limit(self, max_cycles, start):
        """Build a CycleLimitError with activity + stall context."""
        from repro.faults.report import build_stall_report, \
            format_stall_report
        activity = self.activity()
        report = build_stall_report(self, reason="cycle budget exceeded")
        pending = sum(ch.pending for ch in self._channels) \
            + sum(source.pending for source in self._time_sources)
        summary = ", ".join(f"{k}={v}" for k, v in activity.items())
        return CycleLimitError(
            f"cycle budget of {max_cycles} exceeded at cycle {self.now} "
            f"(ran {self.now - start} cycles this call, {pending} tokens "
            f"in flight; {summary})\n{format_stall_report(report)}",
            activity=activity,
            report=report,
        )

    # -- the run loop -------------------------------------------------------

    def run(self, done=None, max_cycles=None, raise_on_limit=False,
            resume=False):
        """Run until *done()* is true (or until globally idle).

        Returns the number of cycles elapsed during this call.  When no
        component is runnable the engine jumps directly to the next
        scheduled event; if there is none and work is still pending,
        the system is deadlocked and :class:`DeadlockError` is raised.

        ``max_cycles`` bounds the call; by default hitting the bound
        just returns (callers that use it as a polling quantum rely on
        that), but with ``raise_on_limit=True`` it raises
        :class:`CycleLimitError` carrying the activity counters and a
        stall report so a busted budget is diagnosable.

        ``resume=True`` continues a run() call that was interrupted
        mid-flight and restored from a snapshot: the entry wake-all and
        the watchdog baseline reset are skipped, because the restored
        ``_wake_next``/``_timers``/watchdog state already encode them --
        re-applying either would perturb the wake counters (reported in
        run stats) away from the uninterrupted run.
        """
        start = self.now
        if not resume:
            # Callers mutate component state between run() calls
            # (queueing jobs, rewriting memory images); give every
            # demand-driven component one cycle to notice.
            for component in self._demand_components:
                self.wake(component)
        legacy = bool(self._always)
        watchdog = self.watchdog
        if watchdog is not None and not resume:
            watchdog.begin(self)
        sampler = self.sampler
        checkpointer = self.checkpointer
        while True:
            if done is not None and done():
                break
            if max_cycles is not None and self.now - start >= max_cycles:
                if raise_on_limit:
                    raise self._cycle_limit(max_cycles, start)
                break
            if not legacy:
                self._merge_due_timers()
                if not self._wake_next:
                    timers = self._timers
                    if not timers:
                        self._raise_idle(done)
                        break
                    target = timers[0][0]
                    if target > self.now:
                        self.cycles_skipped += target - self.now
                        self.now = target
                    self._merge_due_timers()
                    # Re-check done()/max_cycles at the new time before
                    # stepping; a bare event may have woken nobody.
                    continue
            self._step()
            if watchdog is not None and self.now >= watchdog.next_check:
                watchdog.check(self)
            if sampler is not None and self.now >= sampler.next_sample:
                sampler.sample(self)
            if checkpointer is not None \
                    and self.now >= checkpointer.next_checkpoint:
                checkpointer.poll(self)
            if legacy and not self._active:
                next_time = self._scan_next_event_time()
                if next_time is not None and next_time > self.now:
                    self.cycles_skipped += next_time - self.now
                    self.now = next_time
                elif next_time is None:
                    if self._raise_idle(done):
                        break
        return self.now - start

    # -- statistics ---------------------------------------------------------

    def activity(self):
        """Scheduler-efficiency counters as a plain dict.

        ``component_ticks`` versus ``cycles x components`` is the
        demand-driven win; ``cycles_skipped`` is the idle fast-forward
        win.  See :mod:`repro.core.stats` for aggregation helpers.
        """
        return {
            "cycles_simulated": self.cycles_simulated,
            "cycles_skipped": self.cycles_skipped,
            "component_ticks": self.component_ticks,
            "component_wakes": self.component_wakes,
            "n_components": len(self._components),
        }


class LegacyEngine(Engine):
    """The seed engine's schedule: every component, every cycle.

    Kept as the reference for cycle-accuracy regression tests and
    selectable with ``REPRO_ENGINE=legacy``; demand-driven wake wiring
    becomes inert no-ops under this engine.
    """

    _demand_enabled = False


def make_engine(kind=None):
    """Engine factory honouring the ``REPRO_ENGINE`` environment knob.

    ``demand`` (default) builds the demand-driven engine; ``legacy``
    (or ``seed``) builds the reference all-tick engine.
    """
    if kind is None:
        kind = os.environ.get("REPRO_ENGINE", "demand")
    if kind in ("", "demand", "event"):
        return Engine()
    if kind in ("legacy", "seed"):
        return LegacyEngine()
    raise ValueError(f"unknown engine kind {kind!r}")
