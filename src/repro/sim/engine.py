"""The cycle engine: ticks components, commits channels, skips idle time."""


class DeadlockError(RuntimeError):
    """Raised when no component can make progress but work remains."""


class Component:
    """Base class for everything ticked by the engine.

    Subclasses override :meth:`tick`.  A component that has nothing to do
    simply returns; the engine detects globally idle cycles through
    channel activity and fast-forwards over them.
    """

    def tick(self, engine):
        """Advance this component by one clock cycle."""
        raise NotImplementedError

    def is_idle(self):
        """True if this component holds no in-progress work.

        Used only for end-of-run sanity checks; the default is True so
        purely reactive components need not override it.
        """
        return True


class Engine:
    """Drives a set of components and channels cycle by cycle.

    The per-cycle order is: tick every component in registration order,
    then commit every channel.  Registered (next-cycle) channel semantics
    make results independent of the registration order; the fixed order
    merely keeps arbitration deterministic.
    """

    def __init__(self):
        self.now = 0
        self.cycles_simulated = 0
        self.cycles_skipped = 0
        self._components = []
        self._channels = []
        self._time_sources = []
        self._dirty_channels = []
        self._active = False

    def add_component(self, component):
        self._components.append(component)
        return component

    def add_channel(self, channel):
        channel.bind(self)
        self._channels.append(channel)
        return channel

    def add_delay_line(self, line):
        line.bind(self)
        self._time_sources.append(line)
        return line

    def add_time_source(self, source):
        """Register any object exposing next_event_time() and .pending.

        Time sources steer idle fast-forward: when a cycle passes with
        no channel activity the engine jumps to the earliest next event
        among all registered sources.
        """
        self._time_sources.append(source)
        return source

    def mark_active(self):
        """Called by channels on push/pop; marks the cycle as productive."""
        self._active = True

    def _step(self):
        self._active = False
        for component in self._components:
            component.tick(self)
        # Only channels touched this cycle need an end-of-cycle commit.
        dirty = self._dirty_channels
        if dirty:
            self._dirty_channels = []
            for channel in dirty:
                channel.commit()
        self.now += 1
        self.cycles_simulated += 1

    def _pending_work(self):
        if any(ch.pending for ch in self._channels):
            return True
        if any(source.pending for source in self._time_sources):
            return True
        return False

    def run(self, done=None, max_cycles=None):
        """Run until *done()* is true (or until globally idle).

        Returns the number of cycles elapsed during this call.  When a
        cycle passes with no channel activity, the engine jumps directly
        to the next delay-line event; if there is none and work is still
        pending, the system is deadlocked and :class:`DeadlockError` is
        raised.
        """
        start = self.now
        while True:
            if done is not None and done():
                break
            if max_cycles is not None and self.now - start >= max_cycles:
                break
            self._step()
            if not self._active:
                next_time = None
                for line in self._time_sources:
                    t = line.next_event_time()
                    if t is not None and (next_time is None or t < next_time):
                        next_time = t
                if next_time is not None and next_time > self.now:
                    self.cycles_skipped += next_time - self.now
                    self.now = next_time
                elif next_time is None:
                    if done is None:
                        break  # globally idle: nothing will ever happen
                    if done():
                        break
                    if self._pending_work():
                        raise DeadlockError(
                            f"no progress at cycle {self.now} with work pending"
                        )
                    raise DeadlockError(
                        f"run() not done at cycle {self.now} but system is idle"
                    )
        return self.now - start
