"""The cycle engine: demand-driven ticking, channel commits, idle skip.

Two scheduling modes share one code base:

* **Demand-driven** (production): a component is ticked only on cycles
  where it was *woken* -- by a channel delivering tokens or freeing
  space, by a delay-line token maturing (a timer), or by itself
  (``engine.wake(self)``) because it holds in-progress work.  Wall-clock
  cost is proportional to *work*, not cycles x components.  When no
  component is runnable the engine jumps straight to the earliest
  scheduled timer, so idle latency windows cost O(log timers).
* **Legacy** (compatibility): any component that does not declare
  ``demand_driven = True`` forces the seed behaviour -- every component
  is ticked every cycle and idle fast-forward happens only on globally
  inactive cycles.  Simple test harness components keep working
  unmodified, and :class:`LegacyEngine` forces this mode everywhere so
  the two kernels can be compared cycle-for-cycle.

Cycle *results* are identical in both modes: demand scheduling only
skips ticks that are provably no-ops (no visible input tokens, no
freed space, no matured timer, no declared internal work), so the
state trajectory over ``engine.now`` -- and therefore every cycle
count and GTEPS figure -- is bit-identical.  Only the activity
counters (``cycles_simulated``, ``component_ticks``) differ; they are
the measure of the saved work.

On top of demand scheduling sits **macro-tick fusion**
(``REPRO_FUSION``, DESIGN 6.9): when exactly one component is woken
and the stability oracle proves the next cycles are free of timer
maturities, hook points, and cycle-budget edges, the engine offers the
component one ``step_n(engine, budget)`` call that may advance m
provably *silent* cycles in a single batch, then runs a completely
normal tick for the cycle after the batch.  Silent means: the exact
per-cycle state and stat effects, but no channel pushes, no pops from
channels with space watchers, no wakes of other components, and no
hook side effects -- so anything observable happens on the ordinary
per-cycle path and the state trajectory stays bit-identical with
fusion on or off.
"""

import heapq
import os

#: Default cap on the length of one fused run (``REPRO_FUSION=on``).
#: The stability oracle usually clamps far below this; the cap only
#: bounds pathological cases (a component that could run silently
#: forever would otherwise starve the done() check).
FUSION_DEFAULT_CAP = 4096


def fusion_cap_from_env():
    """Parse ``REPRO_FUSION`` into a run-length cap (0 = disabled).

    ``on`` (the default) enables fusion with :data:`FUSION_DEFAULT_CAP`;
    ``off`` disables it; an integer K caps fused runs at K cycles
    (values below 2 cannot amortize anything and disable fusion).
    """
    spec = os.environ.get("REPRO_FUSION", "on").strip().lower()
    if spec in ("", "on", "true", "default"):
        return FUSION_DEFAULT_CAP
    if spec in ("off", "false", "0"):
        return 0
    try:
        cap = int(spec)
    except ValueError:
        raise ValueError(
            f"REPRO_FUSION={spec!r}: expected on, off, or an integer cap"
        ) from None
    return cap if cap >= 2 else 0


class DeadlockError(RuntimeError):
    """Raised when no component can make progress but work remains.

    ``report`` (when set) carries the structured stall report built by
    :func:`repro.faults.report.build_stall_report`: which channels hold
    or block work, who subscribes to them, and which timers remain.
    """

    report = None


class CycleLimitError(RuntimeError):
    """A ``run()`` call exhausted its cycle budget with work remaining.

    Raised only when the caller opts in with ``raise_on_limit=True``;
    the message and the ``activity`` / ``report`` attributes carry the
    diagnosis context (cycle counters, scheduler activity, and the wait
    structure at the moment the budget ran out).
    """

    def __init__(self, message, activity=None, report=None):
        super().__init__(message)
        self.activity = activity or {}
        self.report = report


class Component:
    """Base class for everything ticked by the engine.

    Subclasses override :meth:`tick`.  Components that set
    ``demand_driven = True`` are ticked only when woken and must wire
    their wake conditions (channel subscriptions, timers, or
    ``engine.wake(self)`` re-arms).  Components that keep the default
    ``False`` are ticked every cycle, which preserves the seed engine's
    contract for simple harness components.
    """

    demand_driven = False
    # Activity counters (class attributes double as zero defaults; the
    # first increment creates the instance attribute).
    ticks = 0
    wakes = 0
    _engine_order = -1
    _engine = None  # back-reference, set by Engine.add_component
    # Macro-tick fusion opt-in.  Components that can batch a run of
    # provably *silent* cycles override this with a method
    # ``step_n(engine, budget) -> int`` returning how many cycles m
    # (0 <= m <= budget) were advanced.  The contract (DESIGN 6.9):
    # the m covered cycles must be exactly the state/stat effects the
    # per-cycle ticks would have had, with NO channel pushes, pops
    # from channels that have space watchers, wakes of other
    # components, hook side effects, or per-cycle ``engine.now``
    # reads (the engine advances ``now`` only after step_n returns).
    # The engine then executes a completely normal tick for the next
    # cycle, so anything non-silent happens on the ordinary path.
    step_n = None

    def request_wake(self):
        """Ask to be ticked next cycle (no-op before registration).

        For code outside tick() that mutates component state directly
        (e.g. queueing jobs between run() calls) and must ensure the
        component notices even under manual _step() driving.
        """
        if self._engine is not None:
            self._engine.wake(self)

    def tick(self, engine):
        """Advance this component by one clock cycle."""
        raise NotImplementedError

    def is_idle(self):
        """True if this component holds no in-progress work.

        Used only for end-of-run sanity checks; the default is True so
        purely reactive components need not override it.
        """
        return True


class Engine:
    """Drives a set of components and channels cycle by cycle.

    The per-cycle order is: tick the runnable components in
    registration order, then commit every channel touched this cycle.
    Registered (next-cycle) channel semantics make results independent
    of the registration order; the fixed order merely keeps arbitration
    deterministic.
    """

    _demand_enabled = True
    # Optional no-progress monitor (repro.faults.watchdog.Watchdog);
    # the run loop pays a single "is None" test per step when unset.
    watchdog = None
    # Optional telemetry sampler (repro.telemetry.Telemetry): same
    # contract as the watchdog -- exposes ``next_sample`` and
    # ``sample(engine)``, costs one "is None" test per step when unset,
    # and never mutates simulated state (cycle results are identical
    # with sampling on or off).  Sampling happens after a simulated
    # step only; fast-forwarded idle windows hold no state changes, so
    # the skipped rows would have duplicated the previous one.
    sampler = None
    # Optional periodic checkpointer (repro.checkpoint.Checkpointer):
    # same hook contract again -- exposes ``next_checkpoint`` and
    # ``poll(engine)``, costs one "is None" test per step when unset.
    # Polled *last* among the hooks so a snapshot captures the step's
    # watchdog/sampler effects: a run resumed from the snapshot then
    # continues exactly where the uninterrupted run's loop would.
    checkpointer = None
    # Optional span tracer (repro.tracing.SpanTracer).  Unlike the
    # three hooks above it is purely event-driven -- component hooks
    # feed it and the run loop never polls it -- but it hangs here so
    # stall/fault reports can reach its flight recorder (see
    # repro.faults.report.build_stall_report).
    tracer = None
    # Macro-tick fusion counters (class attributes double as zero
    # defaults for engines unpickled from pre-fusion snapshots, which
    # also resume with fusion disabled: their snapshotted wake/timer
    # state predates the silent-cycle bookkeeping).
    fused_runs = 0
    fused_cycles = 0
    _fusion_cap = 0

    def __init__(self):
        self.now = 0
        self.cycles_simulated = 0
        self.cycles_skipped = 0
        self.component_ticks = 0
        self.component_wakes = 0
        self.fused_runs = 0
        self.fused_cycles = 0
        self.fusion_abort_reasons = {}
        # Read at construction (like REPRO_KERNELS) so one process can
        # race fused vs unfused systems; snapshots carry the cap, so a
        # resumed run replays with the original's fusion decisions.
        self._fusion_cap = fusion_cap_from_env() if self._demand_enabled \
            else 0
        self._components = []
        self._demand_components = []
        self._always = []  # legacy components, ticked every cycle
        self._channels = []
        self._time_sources = []
        self._dirty_channels = []
        self._active = False
        self._wake_next = {}  # order -> component, armed for the next step
        self._timers = []  # heap of (time, order); order -1 = bare event

    # -- registration -------------------------------------------------------

    def add_component(self, component):
        component._engine_order = len(self._components)
        component._engine = self
        self._components.append(component)
        if self._demand_enabled and getattr(component, "demand_driven", False):
            self._demand_components.append(component)
        else:
            self._always.append(component)
        return component

    def add_channel(self, channel):
        channel.bind(self)
        self._channels.append(channel)
        return channel

    def add_delay_line(self, line):
        line.bind(self)
        self._time_sources.append(line)
        return line

    def add_time_source(self, source):
        """Register any object exposing next_event_time() and .pending.

        Time sources steer the legacy idle fast-forward and the
        deadlock diagnosis; demand-driven components additionally
        schedule their own timers via :meth:`wake_at`.
        """
        self._time_sources.append(source)
        return source

    # -- wake API -----------------------------------------------------------

    def wake(self, component):
        """Arm *component* to be ticked on the next simulated cycle."""
        order = component._engine_order
        wake = self._wake_next
        if order not in wake:
            wake[order] = component
            self.component_wakes += 1
            component.wakes += 1

    def wake_at(self, component, time):
        """Arm *component* to be ticked at cycle *time* (at the latest)."""
        if time <= self.now + 1:
            self.wake(component)
        else:
            heapq.heappush(self._timers, (time, component._engine_order))

    def note_event_at(self, time):
        """Record that *something* happens at cycle *time*.

        Used by delay lines with no subscribed consumer: the event
        cannot wake anyone, but it bounds how far idle fast-forward may
        jump.
        """
        if time > self.now:
            heapq.heappush(self._timers, (time, -1))

    def mark_active(self):
        """Called by channels on push/pop; marks the cycle as productive.

        Steers the legacy idle fast-forward only; the demand-driven
        path derives activity from the wake set instead.
        """
        self._active = True

    # -- stepping -----------------------------------------------------------

    def _merge_due_timers(self):
        """Move timers due at the current cycle into the wake set."""
        timers = self._timers
        now = self.now
        wake = self._wake_next
        components = self._components
        while timers and timers[0][0] <= now:
            _, order = heapq.heappop(timers)
            if order >= 0 and order not in wake:
                wake[order] = components[order]

    def _step(self):
        self._active = False
        timers = self._timers
        if timers and timers[0][0] <= self.now:
            self._merge_due_timers()
        wake = self._wake_next
        self._wake_next = {}
        if self._always:
            # Legacy mode: at least one component relies on being
            # ticked every cycle, so everything is (seed semantics).
            run_list = self._components
        elif wake:
            if len(wake) == 1:
                run_list = wake.values()
            else:
                run_list = [wake[order] for order in sorted(wake)]
        else:
            run_list = ()
        self.component_ticks += len(run_list)
        for component in run_list:
            component.ticks += 1
            component.tick(self)
        # Only channels touched this cycle need an end-of-cycle commit.
        dirty = self._dirty_channels
        if dirty:
            self._dirty_channels = []
            for channel in dirty:
                channel.commit()
        self.now += 1
        self.cycles_simulated += 1

    # -- macro-tick fusion --------------------------------------------------

    def _fuse_abort(self, reason):
        counts = self.fusion_abort_reasons
        counts[reason] = counts.get(reason, 0) + 1

    def _try_fuse(self, stable, start, max_cycles):
        """Attempt a fused run for the lone woken component.

        The stability oracle: the wake set over the next ``budget``
        cycles is exactly {component} as long as no timer matures
        inside the silent window (m <= first_timer - now keeps the
        maturing cycle on the real-step path, where ``_step`` merges
        due timers itself), no watchdog / sampler / checkpoint hook
        point lands inside it (each fires when post-step ``now``
        reaches ``next_*``, so m <= next - now - 1), and the caller's
        cycle budget is not overrun (the real step must land within
        it: m <= start + max_cycles - 1 - now).  Channel deliveries
        need no engine-side clamp: a silent cycle by definition makes
        no channel push, and pops are only allowed from channels with
        no space watchers, so no commit inside the window could wake
        anyone -- the component's own ``step_n`` guards enforce that
        (and return 0 otherwise).
        """
        component = next(iter(self._wake_next.values()))
        if component.step_n is None:
            self._fuse_abort("no_step_n")
            return
        if not stable:
            self._fuse_abort("unstable_done")
            return
        now = self.now
        budget = self._fusion_cap
        timers = self._timers
        if timers:
            h = timers[0][0] - now
            if h < budget:
                budget = h
        watchdog = self.watchdog
        if watchdog is not None:
            h = watchdog.next_check - now - 1
            if h < budget:
                budget = h
        sampler = self.sampler
        if sampler is not None:
            h = sampler.next_sample - now - 1
            if h < budget:
                budget = h
        checkpointer = self.checkpointer
        if checkpointer is not None:
            h = checkpointer.next_checkpoint - now - 1
            if h < budget:
                budget = h
        if max_cycles is not None:
            h = start + max_cycles - 1 - now
            if h < budget:
                budget = h
        if budget < 1:
            self._fuse_abort("horizon")
            return
        m = component.step_n(self, budget)
        if not m:
            self._fuse_abort("component")
            return
        # The m covered cycles each executed one tick of *component*
        # and would each have re-armed it for the next cycle (self
        # wake or its input channel's commit-time data wake); the
        # preserved _wake_next singleton feeds the real step that
        # follows.  Counter accounting keeps activity stats identical
        # to the per-cycle schedule.
        self.now = now + m
        self.cycles_simulated += m
        self.component_ticks += m
        component.ticks += m
        self.component_wakes += m
        component.wakes += m
        self.fused_runs += 1
        self.fused_cycles += m

    # -- diagnosis ----------------------------------------------------------

    def _pending_work(self):
        if any(ch.pending for ch in self._channels):
            return True
        if any(source.pending for source in self._time_sources):
            return True
        return False

    def _scan_next_event_time(self):
        """Earliest next event across registered time sources (legacy)."""
        next_time = None
        for line in self._time_sources:
            t = line.next_event_time()
            if t is not None and (next_time is None or t < next_time):
                next_time = t
        return next_time

    def _raise_idle(self, done):
        """Idle with no scheduled events: finish or diagnose a deadlock."""
        if done is None:
            return True  # globally idle: nothing will ever happen
        if done():
            return True
        if self._pending_work():
            raise self._deadlock(
                f"no progress at cycle {self.now} with work pending"
            )
        raise self._deadlock(
            f"run() not done at cycle {self.now} but system is idle"
        )

    def _deadlock(self, message):
        """Build a DeadlockError enriched with a structured stall report."""
        # Imported lazily: the happy path never touches repro.faults.
        from repro.faults.report import build_stall_report, \
            format_stall_report
        report = build_stall_report(self, reason="deadlock")
        error = DeadlockError(f"{message}\n{format_stall_report(report)}")
        error.report = report
        return error

    def _cycle_limit(self, max_cycles, start):
        """Build a CycleLimitError with activity + stall context."""
        from repro.faults.report import build_stall_report, \
            format_stall_report
        activity = self.activity()
        report = build_stall_report(self, reason="cycle budget exceeded")
        pending = sum(ch.pending for ch in self._channels) \
            + sum(source.pending for source in self._time_sources)
        summary = ", ".join(f"{k}={v}" for k, v in activity.items())
        return CycleLimitError(
            f"cycle budget of {max_cycles} exceeded at cycle {self.now} "
            f"(ran {self.now - start} cycles this call, {pending} tokens "
            f"in flight; {summary})\n{format_stall_report(report)}",
            activity=activity,
            report=report,
        )

    # -- the run loop -------------------------------------------------------

    def run(self, done=None, max_cycles=None, raise_on_limit=False,
            resume=False, stable_done=False):
        """Run until *done()* is true (or until globally idle).

        Returns the number of cycles elapsed during this call.  When no
        component is runnable the engine jumps directly to the next
        scheduled event; if there is none and work is still pending,
        the system is deadlocked and :class:`DeadlockError` is raised.

        ``max_cycles`` bounds the call; by default hitting the bound
        just returns (callers that use it as a polling quantum rely on
        that), but with ``raise_on_limit=True`` it raises
        :class:`CycleLimitError` carrying the activity counters and a
        stall report so a busted budget is diagnosable.

        ``resume=True`` continues a run() call that was interrupted
        mid-flight and restored from a snapshot: the entry wake-all and
        the watchdog baseline reset are skipped, because the restored
        ``_wake_next``/``_timers``/watchdog state already encode them --
        re-applying either would perturb the wake counters (reported in
        run stats) away from the uninterrupted run.

        ``stable_done=True`` declares that *done()* can only flip as a
        result of a component tick's channel effects -- never during a
        provably silent cycle -- which licenses macro-tick fusion
        (``REPRO_FUSION``): runs of same-component silent cycles are
        advanced with one ``step_n`` call instead of n ticks.  Callers
        with time- or state-probing done() predicates must leave it
        False (fusion then skips their run, counted under
        ``fusion_abort_reasons["unstable_done"]``).  ``done=None``
        (run to global idle) is always stable: silent cycles cannot
        empty the wake set.
        """
        start = self.now
        if not resume:
            # Callers mutate component state between run() calls
            # (queueing jobs, rewriting memory images); give every
            # demand-driven component one cycle to notice.
            for component in self._demand_components:
                self.wake(component)
        legacy = bool(self._always)
        watchdog = self.watchdog
        if watchdog is not None and not resume:
            watchdog.begin(self)
        sampler = self.sampler
        checkpointer = self.checkpointer
        fusion_cap = self._fusion_cap
        stable = done is None or stable_done
        while True:
            if done is not None and done():
                break
            if max_cycles is not None and self.now - start >= max_cycles:
                if raise_on_limit:
                    raise self._cycle_limit(max_cycles, start)
                break
            if not legacy:
                self._merge_due_timers()
                if not self._wake_next:
                    timers = self._timers
                    if not timers:
                        self._raise_idle(done)
                        break
                    target = timers[0][0]
                    if target > self.now:
                        self.cycles_skipped += target - self.now
                        self.now = target
                    self._merge_due_timers()
                    # Re-check done()/max_cycles at the new time before
                    # stepping; a bare event may have woken nobody.
                    continue
                if fusion_cap and len(self._wake_next) == 1:
                    self._try_fuse(stable, start, max_cycles)
            self._step()
            if watchdog is not None and self.now >= watchdog.next_check:
                watchdog.check(self)
            if sampler is not None and self.now >= sampler.next_sample:
                sampler.sample(self)
            if checkpointer is not None \
                    and self.now >= checkpointer.next_checkpoint:
                checkpointer.poll(self)
            if legacy and not self._active:
                next_time = self._scan_next_event_time()
                if next_time is not None and next_time > self.now:
                    self.cycles_skipped += next_time - self.now
                    self.now = next_time
                elif next_time is None:
                    if self._raise_idle(done):
                        break
        return self.now - start

    # -- statistics ---------------------------------------------------------

    # Execution-strategy bookkeeping inside activity(): how the engine
    # chose to advance time, not what the model computed.  These vary
    # with hook cadence (a checkpointer or sampler clamps fusion
    # horizons), so bit-identity contracts that compare runs across
    # hook configurations (replay, chaos) must exclude them; see
    # AcceleratorSystem._collect_stats.
    FUSION_BOOKKEEPING_KEYS = (
        "fused_runs", "fused_cycles", "mean_run_len",
        "fusion_abort_reasons",
    )

    def activity(self):
        """Scheduler-efficiency counters as a plain dict.

        ``component_ticks`` versus ``cycles x components`` is the
        demand-driven win; ``cycles_skipped`` is the idle fast-forward
        win; ``fused_runs``/``fused_cycles`` are the macro-tick win
        (cycles advanced through ``step_n`` batches instead of
        per-cycle ticks).  The fusion keys are always present --
        explicit zeros when ``REPRO_FUSION=off`` or under the legacy
        engine.  See :mod:`repro.core.stats` for aggregation helpers.
        """
        fused_runs = self.fused_runs
        fused_cycles = self.fused_cycles
        aborts = getattr(self, "fusion_abort_reasons", None) or {}
        return {
            "cycles_simulated": self.cycles_simulated,
            "cycles_skipped": self.cycles_skipped,
            "component_ticks": self.component_ticks,
            "component_wakes": self.component_wakes,
            "n_components": len(self._components),
            "fused_runs": fused_runs,
            "fused_cycles": fused_cycles,
            "mean_run_len": (
                round(fused_cycles / fused_runs, 2) if fused_runs else 0.0
            ),
            "fusion_abort_reasons": {
                reason: aborts[reason] for reason in sorted(aborts)
            },
        }


class LegacyEngine(Engine):
    """The seed engine's schedule: every component, every cycle.

    Kept as the reference for cycle-accuracy regression tests and
    selectable with ``REPRO_ENGINE=legacy``; demand-driven wake wiring
    becomes inert no-ops under this engine.
    """

    _demand_enabled = False


def make_engine(kind=None):
    """Engine factory honouring the ``REPRO_ENGINE`` environment knob.

    ``demand`` (default) builds the demand-driven engine; ``legacy``
    (or ``seed``) builds the reference all-tick engine.
    """
    if kind is None:
        kind = os.environ.get("REPRO_ENGINE", "demand")
    if kind in ("", "demand", "event"):
        return Engine()
    if kind in ("legacy", "seed"):
        return LegacyEngine()
    raise ValueError(f"unknown engine kind {kind!r}")
