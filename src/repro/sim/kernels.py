"""Columnar engine v2: kernel-mode selection and shared numpy kernels.

The hot structures of the simulator (MSHR files, subentry stores, the
DRAM response schedule, the PE's decoded-edge backlog) exist in two
implementations:

* ``scalar`` -- the original per-token Python loops, kept as the
  reference semantics path (the ``REPRO_ENGINE=legacy`` precedent);
* ``vector`` -- the same state held as parallel columns (plain lists
  or numpy arrays) and advanced by batch kernels where a whole cycle's
  worth of work is available at once.

Both paths are cycle-identical by construction: every vector kernel is
an elementwise transliteration of its scalar loop (integer arithmetic
wraps identically mod 2**64, IEEE float64/float32 elementwise ops are
bit-exact either way), and the differential tests in
``tests/core/test_kernels_diff.py`` assert state-for-state equality
over long randomized sequences.

The knob mirrors ``REPRO_ENGINE``: ``REPRO_KERNELS=scalar|vector``
(default ``vector``), read at *construction* time by each component,
so one process can build and compare systems in both modes (the bench
harness does exactly that).
"""

import os

_NUMPY_HELP = (
    "numpy is required by the repro core simulator: the functional "
    "memory store is a numpy byte buffer and the columnar engine's "
    "MOMS/DRAM/PE kernels operate on numpy arrays.  There is no "
    "numpy-free fallback (REPRO_KERNELS=scalar only changes the inner "
    "loops, not the storage).  Install it with `pip install numpy`."
)

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only sans numpy
    raise ImportError(_NUMPY_HELP) from exc

VALID_KERNEL_MODES = ("scalar", "vector")

#: splitmix64 finalizer constants (match repro.core.mshr's scalar chain).
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def kernels_mode():
    """The selected kernel mode: ``'scalar'`` or ``'vector'``.

    Read dynamically from ``REPRO_KERNELS`` (default ``vector``) so a
    harness can switch modes between system builds, exactly like
    ``repro.sim.engine.make_engine`` reads ``REPRO_ENGINE``.
    """
    mode = os.environ.get("REPRO_KERNELS", "vector").strip().lower()
    if mode not in VALID_KERNEL_MODES:
        raise ValueError(
            f"REPRO_KERNELS={mode!r}: expected one of {VALID_KERNEL_MODES}"
        )
    return mode


def vector_enabled():
    """True when components built now should use the vector kernels."""
    return kernels_mode() == "vector"


def splitmix64_slots(line_addrs, multipliers, way_size):
    """Cuckoo candidate slots for a batch of line addresses.

    Returns an ``(n_addrs, n_ways)`` uint64 array where row *i*, column
    *w* is the slot of ``line_addrs[i]`` in way *w* -- the batch form
    of ``CuckooMshrFile._slots``.  uint64 arithmetic wraps mod 2**64,
    which is exactly the scalar chain's ``& ((1 << 64) - 1)`` masking,
    so the results are bit-identical.
    """
    addrs = np.asarray(line_addrs, dtype=np.uint64)
    mults = np.asarray(multipliers, dtype=np.uint64)
    h = addrs[:, None] + mults[None, :]
    h = (h ^ (h >> _S30)) * _MIX1
    h = (h ^ (h >> _S27)) * _MIX2
    h ^= h >> _S31
    return h % np.uint64(way_size)


#: Victim-way LCG constants (match CuckooMshrFile's scalar chain).
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1

# Cached closed-form coefficients: state_i = A**i * seed + off_i where
# off_i = C * (A**(i-1) + ... + A + 1), everything mod 2**64.  They are
# seed-independent, so one incremental growth pass (scalar, amortized
# over the process lifetime) serves every lcg_batch call.
_lcg_pows = [_LCG_A]
_lcg_offs = [_LCG_C]
_lcg_pows_np = None
_lcg_offs_np = None


def lcg_batch(seed, n):
    """States 1..n of the cuckoo victim-way LCG from *seed* (uint64).

    The batch form of ``CuckooMshrFile``'s per-kick advance
    ``state = state * A + C mod 2**64``: two elementwise uint64 ops
    over cached coefficient arrays (numpy uint64 wraps mod 2**64
    exactly like the scalar chain's masking), so a fused retry run can
    precompute every victim-way draw it might need in one pass.
    """
    global _lcg_pows_np, _lcg_offs_np
    if n <= 0:
        return np.empty(0, dtype=np.uint64)
    if len(_lcg_pows) < n:
        pow_i = _lcg_pows[-1]
        off_i = _lcg_offs[-1]
        for _ in range(len(_lcg_pows), n):
            pow_i = (pow_i * _LCG_A) & _LCG_MASK
            off_i = (off_i * _LCG_A + _LCG_C) & _LCG_MASK
            _lcg_pows.append(pow_i)
            _lcg_offs.append(off_i)
        _lcg_pows_np = None
    if _lcg_pows_np is None or len(_lcg_pows_np) < n:
        _lcg_pows_np = np.array(_lcg_pows, dtype=np.uint64)
        _lcg_offs_np = np.array(_lcg_offs, dtype=np.uint64)
    return _lcg_pows_np[:n] * np.uint64(seed) + _lcg_offs_np[:n]


def lcg_jump(seed, n):
    """State after *n* draws of the victim-way LCG, in O(log n).

    Binary jump-ahead (Brown's algorithm): composing the affine map
    ``x -> A*x + C`` with itself squares ``A`` and folds the offset as
    ``C -> C * (A + 1)``, so any draw count is a walk over the bits of
    *n*.  Bit-identical to *n* scalar advances -- this is how a fused
    retry run on a *full* MSHR table commits thousands of guaranteed
    failing draws without generating any of them.
    """
    a, c = _LCG_A, _LCG_C
    ja, jc = 1, 0  # identity map, composed up to f^n
    while n > 0:
        if n & 1:
            # Apply the current power after the accumulated jump.
            ja = (ja * a) & _LCG_MASK
            jc = (jc * a + c) & _LCG_MASK
        c = (c * (a + 1)) & _LCG_MASK
        a = (a * a) & _LCG_MASK
        n >>= 1
    return (seed * ja + jc) & _LCG_MASK


def victim_ways_batch(seed, n, n_ways):
    """Victim-way draws 1..n of the cuckoo LCG from *seed*.

    Returns ``(ways, states)``: a Python list of way indices
    (``(state >> 33) % n_ways`` per draw, matching
    ``CuckooMshrFile.insert``'s scalar selection) and the underlying
    uint64 state array -- ``states[k-1]`` is the committed PRNG state
    after k draws, which a fused retry run writes back in one step.
    """
    states = lcg_batch(seed, n)
    ways = ((states >> np.uint64(33)) % np.uint64(n_ways)).tolist()
    return ways, states


def fifo_service_starts(next_free, services):
    """Service-start cycles for a FIFO batch on a backlogged pipe.

    Valid exactly when the pipe stays busy across the whole accept
    window (``next_free >= last accept cycle``): request *j* then
    starts at ``next_free + sum(services[:j])`` independent of its
    accept cycle, which is the scalar chain
    ``start = max(now, next_free); next_free = start + service``
    collapsed into one cumulative sum.  Returns an int64 array.
    """
    svc = np.asarray(services, dtype=np.int64)
    starts = np.empty(len(svc), dtype=np.int64)
    starts[0] = 0
    np.cumsum(svc[:-1], out=starts[1:])
    starts += next_free
    return starts


def channels_of_batch(addrs, granule, n_channels):
    """Owning DRAM channel for each global byte address in *addrs*.

    The batch form of ``AddressInterleaver.channel_of``: plain integer
    array arithmetic, one numpy pass for the whole batch.
    """
    a = np.asarray(addrs, dtype=np.int64)
    return (a // granule) % n_channels


def line_addrs_of_batch(addrs, line_bytes):
    """Cache-line index for each byte address in *addrs* (int64 array)."""
    return np.asarray(addrs, dtype=np.int64) // line_bytes
