"""Columnar engine v2: kernel-mode selection and shared numpy kernels.

The hot structures of the simulator (MSHR files, subentry stores, the
DRAM response schedule, the PE's decoded-edge backlog) exist in two
implementations:

* ``scalar`` -- the original per-token Python loops, kept as the
  reference semantics path (the ``REPRO_ENGINE=legacy`` precedent);
* ``vector`` -- the same state held as parallel columns (plain lists
  or numpy arrays) and advanced by batch kernels where a whole cycle's
  worth of work is available at once.

Both paths are cycle-identical by construction: every vector kernel is
an elementwise transliteration of its scalar loop (integer arithmetic
wraps identically mod 2**64, IEEE float64/float32 elementwise ops are
bit-exact either way), and the differential tests in
``tests/core/test_kernels_diff.py`` assert state-for-state equality
over long randomized sequences.

The knob mirrors ``REPRO_ENGINE``: ``REPRO_KERNELS=scalar|vector``
(default ``vector``), read at *construction* time by each component,
so one process can build and compare systems in both modes (the bench
harness does exactly that).
"""

import os

_NUMPY_HELP = (
    "numpy is required by the repro core simulator: the functional "
    "memory store is a numpy byte buffer and the columnar engine's "
    "MOMS/DRAM/PE kernels operate on numpy arrays.  There is no "
    "numpy-free fallback (REPRO_KERNELS=scalar only changes the inner "
    "loops, not the storage).  Install it with `pip install numpy`."
)

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only sans numpy
    raise ImportError(_NUMPY_HELP) from exc

VALID_KERNEL_MODES = ("scalar", "vector")

#: splitmix64 finalizer constants (match repro.core.mshr's scalar chain).
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def kernels_mode():
    """The selected kernel mode: ``'scalar'`` or ``'vector'``.

    Read dynamically from ``REPRO_KERNELS`` (default ``vector``) so a
    harness can switch modes between system builds, exactly like
    ``repro.sim.engine.make_engine`` reads ``REPRO_ENGINE``.
    """
    mode = os.environ.get("REPRO_KERNELS", "vector").strip().lower()
    if mode not in VALID_KERNEL_MODES:
        raise ValueError(
            f"REPRO_KERNELS={mode!r}: expected one of {VALID_KERNEL_MODES}"
        )
    return mode


def vector_enabled():
    """True when components built now should use the vector kernels."""
    return kernels_mode() == "vector"


def splitmix64_slots(line_addrs, multipliers, way_size):
    """Cuckoo candidate slots for a batch of line addresses.

    Returns an ``(n_addrs, n_ways)`` uint64 array where row *i*, column
    *w* is the slot of ``line_addrs[i]`` in way *w* -- the batch form
    of ``CuckooMshrFile._slots``.  uint64 arithmetic wraps mod 2**64,
    which is exactly the scalar chain's ``& ((1 << 64) - 1)`` masking,
    so the results are bit-identical.
    """
    addrs = np.asarray(line_addrs, dtype=np.uint64)
    mults = np.asarray(multipliers, dtype=np.uint64)
    h = addrs[:, None] + mults[None, :]
    h = (h ^ (h >> _S30)) * _MIX1
    h = (h ^ (h >> _S27)) * _MIX2
    h ^= h >> _S31
    return h % np.uint64(way_size)


def channels_of_batch(addrs, granule, n_channels):
    """Owning DRAM channel for each global byte address in *addrs*.

    The batch form of ``AddressInterleaver.channel_of``: plain integer
    array arithmetic, one numpy pass for the whole batch.
    """
    a = np.asarray(addrs, dtype=np.int64)
    return (a // granule) % n_channels


def line_addrs_of_batch(addrs, line_bytes):
    """Cache-line index for each byte address in *addrs* (int64 array)."""
    return np.asarray(addrs, dtype=np.int64) // line_bytes
