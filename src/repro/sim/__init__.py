"""Cycle-level simulation kernel.

The kernel models synchronous hardware: components are ticked once per
clock cycle and exchange tokens over capacity-limited :class:`Channel`
objects whose pushes become visible on the *next* cycle (registered-FIFO
semantics), which makes results independent of component tick order.
:class:`DelayLine` models fixed-latency pipes (e.g. DRAM access latency)
and drives the engine's idle fast-forward so cycles in which every
component is stalled on a pending latency are skipped in O(1).
"""

from repro.sim.channel import Channel, DelayLine, SoaChannel
from repro.sim.engine import (
    Component,
    CycleLimitError,
    DeadlockError,
    Engine,
    LegacyEngine,
    make_engine,
)

__all__ = [
    "Channel",
    "Component",
    "CycleLimitError",
    "DeadlockError",
    "DelayLine",
    "Engine",
    "LegacyEngine",
    "SoaChannel",
    "make_engine",
]
