"""No-progress watchdog for ``Engine.run``.

The demand-driven engine already diagnoses true deadlocks (empty wake
set, no timers, work pending), but a *livelock* -- components ticking
forever without moving a single token, e.g. a retry loop whose unblock
condition can never arrive -- runs until the cycle budget and then
fails with no evidence.  The watchdog samples a progress signature
(total channel token movement) every ``window`` cycles; a window in
which components kept ticking but no token moved raises
:class:`WatchdogError` carrying a structured stall report instead of
letting the run hang.

Attach with ``engine.watchdog = Watchdog(window=...)`` (or let
``AcceleratorSystem(checks=True)`` do it).  The engine's run loop only
pays an ``is None`` test when no watchdog is attached.
"""

from repro.faults.report import build_stall_report, format_stall_report


class WatchdogError(RuntimeError):
    """No token moved for a full watchdog window while work remained.

    ``report`` holds the structured stall report (see
    :func:`repro.faults.report.build_stall_report`); ``checkpoint`` is
    its last-checkpoint block (path, cycle, ready-to-run replay
    command) or ``None`` when the run was not checkpointing -- so a
    harness catching the error can point straight at a reproducer.
    """

    def __init__(self, message, report):
        super().__init__(message)
        self.report = report
        self.checkpoint = (report or {}).get("checkpoint")


class Watchdog:
    """Progress monitor polled by the engine's run loop.

    ``window`` is the no-progress tolerance in cycles; it must comfortably
    exceed the longest legitimate quiet stretch (DRAM latency, blackout
    windows under fault injection), which is why the default is large.
    ``min_ticks`` filters idle waits: a window with almost no component
    ticks is the engine sleeping on a timer, not a livelock.
    """

    def __init__(self, window=200_000, min_ticks=64):
        if window < 1:
            raise ValueError("watchdog window must be >= 1 cycle")
        self.window = window
        self.min_ticks = min_ticks
        self.next_check = 0
        self._last_movement = -1
        self._last_ticks = 0
        self.checks = 0

    def _movement(self, engine):
        total = 0
        for channel in engine._channels:
            total += channel.total_pushed + channel.total_popped
        for source in engine._time_sources:
            total += getattr(source, "total_pushed", 0)
        return total

    def begin(self, engine):
        """Reset the sampling baseline at the start of a run() call."""
        self.next_check = engine.now + self.window
        self._last_movement = self._movement(engine)
        self._last_ticks = engine.component_ticks

    def check(self, engine):
        """Poll progress; raise :class:`WatchdogError` on a dead window."""
        self.checks += 1
        movement = self._movement(engine)
        ticks_in_window = engine.component_ticks - self._last_ticks
        stalled = (
            movement == self._last_movement
            and ticks_in_window >= self.min_ticks
        )
        self._last_movement = movement
        self._last_ticks = engine.component_ticks
        self.next_check = engine.now + self.window
        if not stalled:
            return
        report = build_stall_report(
            engine,
            reason=f"no token movement for {self.window} cycles "
                   f"({ticks_in_window} ticks ran)",
        )
        raise WatchdogError(
            f"watchdog: no progress in {self.window} cycles at cycle "
            f"{engine.now}\n{format_stall_report(report)}",
            report,
        )
