"""Fault-injection smoke harness (the CI job and ``faultsmoke`` CLI).

Runs the quick graphs under every named fault plan with invariant
checks enabled and proves the two properties the robustness subsystem
promises:

* **graceful degradation** -- every faulted run completes, and for the
  idempotent integer fixpoint algorithms (BFS, SCC) the results are
  bit-identical to the no-fault baseline: faults may cost cycles but
  can never change an answer;
* **real detection** -- the mutation plan corrupts one response token
  and the run must die with :class:`InvariantViolation`; a mutation
  that sails through means the ledger is decorative.

On any failure carrying a structured stall report, the report is
written as JSON next to the summary so CI can upload it as an artifact.
"""

import json

import numpy as np

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.faults.ledger import InvariantViolation
from repro.faults.plan import NAMED_PLANS, FaultPlan
from repro.graph import web_graph

# Per-plan "did the fault actually engage" evidence: a plan whose
# windows never fired proves nothing, so the smoke fails loudly rather
# than passing vacuously.
_ENGAGEMENT = {
    "dram": ("latency_spiked_requests", "reorders", "blackout_cycles_entered"),
    "channel": ("backpressure_windows",),
    "mshr": ("mshr_forced_failures",),
}


def _build(algorithm, fault_plan=None, checks=True):
    graph = web_graph(900, 4500, seed=5)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    return AcceleratorSystem(
        graph, algorithm, config, checks=checks, fault_plan=fault_plan,
    )


def _extract_report(error):
    report = getattr(error, "report", None)
    if report is None:
        return {"error": repr(error)}
    return report


def run_fault_smoke(algorithms=("bfs", "scc"), report_path=None, log=print):
    """Run the full smoke matrix; returns a summary dict.

    ``summary["failures"]`` is empty on success.  When a run dies with
    an error carrying a stall report and ``report_path`` is given, the
    report is dumped there as JSON (the CI artifact).
    """
    failures = []
    runs = []
    reports = []
    for algorithm in algorithms:
        log(f"[faultsmoke] baseline {algorithm}")
        baseline = _build(algorithm).run()
        runs.append({"algorithm": algorithm, "plan": None,
                     "cycles": baseline.cycles})
        for plan_name, make_plan in NAMED_PLANS.items():
            log(f"[faultsmoke] {algorithm} under plan {plan_name!r}")
            system = _build(algorithm, fault_plan=make_plan())
            try:
                result = system.run()
            except Exception as error:  # noqa: BLE001 - recorded + reported
                failures.append(
                    f"{algorithm}/{plan_name}: run failed: {error!r}"
                )
                reports.append(_extract_report(error))
                continue
            stats = system.fault_state.stats
            engagement = {
                key: stats[key] for key in _ENGAGEMENT[plan_name]
            }
            triggered = any(engagement.values())
            if not triggered:
                failures.append(
                    f"{algorithm}/{plan_name}: no fault engaged "
                    f"(vacuous pass): {stats}"
                )
            if not np.array_equal(result.values, baseline.values):
                failures.append(
                    f"{algorithm}/{plan_name}: results diverged from the "
                    f"no-fault baseline (faults must never change answers)"
                )
            runs.append({
                "algorithm": algorithm,
                "plan": plan_name,
                "cycles": result.cycles,
                "baseline_cycles": baseline.cycles,
                "triggered": triggered,
                "engagement": engagement,
                "fault_stats": dict(stats),
            })

    log("[faultsmoke] mutation smoke (ledger must flag corruption)")
    caught = None
    try:
        _build("bfs", fault_plan=FaultPlan.mutation_plan(at=50)).run()
    except InvariantViolation as error:
        caught = str(error)
    except Exception as error:  # noqa: BLE001 - wrong failure mode
        failures.append(
            f"mutation: corrupted token produced {error!r} instead of "
            f"an InvariantViolation from the ledger"
        )
    else:
        failures.append(
            "mutation: corrupted response token was not flagged by the "
            "ledger (checks are decorative)"
        )
    runs.append({"algorithm": "bfs", "plan": "mutation",
                 "triggered": caught is not None,
                 "caught": caught is not None})

    # Untriggered plans are first-class evidence, not just a failure
    # string: harnesses (and the smoke test) assert on this list so a
    # plan that silently stopped engaging cannot pass vacuously.
    untriggered = [
        f"{run['algorithm']}/{run['plan']}"
        for run in runs
        if run["plan"] is not None and not run.get("triggered")
    ]
    summary = {"runs": runs, "failures": failures,
               "untriggered": untriggered}
    if report_path is not None and (failures or reports):
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(
                {"failures": failures, "stall_reports": reports},
                handle, indent=2, default=repr,
            )
        log(f"[faultsmoke] wrote failure report to {report_path}")
    for failure in failures:
        log(f"[faultsmoke] FAIL: {failure}")
    if not failures:
        log(f"[faultsmoke] OK: {len(runs)} runs, all invariants held")
    return summary
