"""Fault injection and invariant checking for the simulation core.

The paper's memory system only works because thousands of in-flight
misses are conserved exactly: every MSHR allocation, subentry append,
and DRAM response must drain without loss or deadlock.  This package
makes that conservation *checkable* and *attackable*:

* :mod:`repro.faults.ledger` -- a :class:`TokenLedger` that follows
  every request from PE issue to response delivery and proves
  ``issued == in_flight + retired`` per component, plus structural
  drain checks (MSHR/subentry leaks, stuck channel tokens).
* :mod:`repro.faults.plan` -- seeded, deterministic
  :class:`FaultPlan`\\ s that perturb DRAM timing (latency spikes,
  bounded response reorder, blackouts), channel capacity (backpressure
  bursts), and MSHR allocation (forced-full windows), so tests can
  prove the system degrades gracefully -- it stalls, it never corrupts.
* :mod:`repro.faults.watchdog` -- a no-progress watchdog for
  ``Engine.run`` that raises a structured stall report (who is waiting
  on which channel or timer) instead of hanging.
* :mod:`repro.faults.smoke` -- the CI smoke runner: all fault plans on
  the quick graphs plus the mutation-smoke check that the ledger
  actually catches seeded corruption.

Everything here is strictly opt-in: with no plan installed and checks
disabled, the hooks in the simulation core reduce to ``is None`` tests
on class-level attributes (see DESIGN.md Section 6.2).
"""

from repro.faults.ledger import InvariantViolation, TokenLedger, check_drained
from repro.faults.plan import FaultPlan, Window, install_faults
from repro.faults.report import build_stall_report, format_stall_report
from repro.faults.watchdog import Watchdog, WatchdogError

__all__ = [
    "FaultPlan",
    "InvariantViolation",
    "TokenLedger",
    "Watchdog",
    "WatchdogError",
    "Window",
    "build_stall_report",
    "check_drained",
    "format_stall_report",
    "install_faults",
]
