"""Seeded, deterministic fault plans for the simulation core.

A :class:`FaultPlan` describes *when* and *where* to perturb the
system; :func:`install_faults` wires it into a built
:class:`~repro.accel.system.AcceleratorSystem`.  Three fault families
map onto the three structures whose request-lifecycle corner cases the
paper's memory system lives or dies on:

* **DRAM** (:class:`~repro.mem.dram.DramChannel`): transient latency
  spikes, bounded response reorder (adjacent responses bound for
  *different* requesters swap delivery order -- each requester's own
  stream stays FIFO, so no protocol is violated), and temporary channel
  blackouts during which the channel neither accepts nor delivers.
* **Channels** (:class:`~repro.sim.channel.Channel`): backpressure
  bursts, implemented by clamping the channel's effective capacity to
  zero for a window.  Every producer in the code base -- including the
  arbiters and crossbars that inline their capacity checks -- reads
  ``capacity``, so the clamp is honoured uniformly and nothing can
  overflow.
* **MSHR files**: forced-full windows during which ``insert`` reports
  failure without touching table or PRNG state, exercising the paper's
  stall/retry path at will.

All windows are plain periodic ``(period, duration, phase)`` triples
and all randomness is a seeded splitmix64 chain, so a faulted run is a
deterministic function of (workload, plan): the same plan always
produces the same cycle count.

Faults are *recoverable by construction*: they delay and reorder work
but never drop or duplicate a token, so a run under any plan completes
with functionally correct results (bit-identical for the idempotent
integer algorithms; see ``tests/faults``).  The one deliberate
exception is the **mutation smoke** fault, which corrupts one response
token's ID so tests can prove the invariant ledger catches real
corruption instead of merely being plumbed through.
"""

from dataclasses import dataclass

from repro.sim import Component

_MASK64 = (1 << 64) - 1


def _splitmix64(state):
    """One step of the splitmix64 sequence; returns (new_state, value)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


@dataclass(frozen=True)
class Window:
    """A periodic fault window: active ``duration`` out of every
    ``period`` cycles, starting at ``phase``."""

    period: int
    duration: int
    phase: int = 0

    def __post_init__(self):
        if self.period < 1 or not 0 < self.duration < self.period:
            raise ValueError("need 0 < duration < period")

    def active(self, now):
        if now < self.phase:
            return False
        return (now - self.phase) % self.period < self.duration

    def next_boundary(self, now):
        """First cycle > now at which active() changes value."""
        if now < self.phase:
            return self.phase
        offset = (now - self.phase) % self.period
        if offset < self.duration:
            return now + (self.duration - offset)
        return now + (self.period - offset)


@dataclass
class FaultPlan:
    """Declarative fault schedule; see the module docstring.

    ``backpressure_fraction`` selects the seeded subset of eligible
    channels to throttle; the ``jobs``/``done`` scheduler channels are
    never throttled because their producers push unconditionally (their
    capacity is sized to the PE count by construction).
    """

    seed: int = 1
    dram_latency: Window = None
    dram_extra_latency: int = 250
    dram_blackout: Window = None
    dram_reorder_permille: int = 0  # per scheduled response, out of 1000
    backpressure: Window = None
    backpressure_fraction: float = 0.3
    mshr_full: Window = None
    mutate_moms_response_at: int = None  # nth drained response is corrupted

    # -- canned plans (the CI smoke matrix) ---------------------------------

    @classmethod
    def dram_plan(cls, seed=1):
        """Latency spikes + a blackout + bounded reorder on every channel."""
        return cls(
            seed=seed,
            dram_latency=Window(4096, 512, phase=257),
            dram_extra_latency=250,
            dram_blackout=Window(40_000, 1500, phase=11_003),
            dram_reorder_permille=200,
        )

    @classmethod
    def channel_plan(cls, seed=1):
        """Backpressure bursts on a seeded third of the interconnect."""
        return cls(seed=seed, backpressure=Window(2048, 256, phase=129))

    @classmethod
    def mshr_plan(cls, seed=1):
        """Forced-full MSHR windows (the paper's stall/retry path)."""
        return cls(seed=seed, mshr_full=Window(3072, 384, phase=517))

    @classmethod
    def mutation_plan(cls, at=100, seed=1):
        """Corrupt the ``at``-th MOMS response token (ledger smoke)."""
        return cls(seed=seed, mutate_moms_response_at=at)


NAMED_PLANS = {
    "dram": FaultPlan.dram_plan,
    "channel": FaultPlan.channel_plan,
    "mshr": FaultPlan.mshr_plan,
}


class FaultState:
    """Per-system runtime state shared by every fault hook.

    One instance is attached (as ``_fault``) to the DRAM channels, MSHR
    files, and banks a plan targets; the hooks call the narrow methods
    below.  Deterministic: all decisions derive from the cycle counter
    and the seeded splitmix chain.
    """

    def __init__(self, plan, engine):
        self.plan = plan
        self.engine = engine
        self._reorder_state = (plan.seed * 0x9E3779B97F4A7C15) & _MASK64 or 1
        self._drains_seen = 0
        self.stats = {
            "latency_spiked_requests": 0,
            "reorders": 0,
            "blackout_cycles_entered": 0,
            "backpressure_windows": 0,
            "mshr_forced_failures": 0,
            "mutations": 0,
        }

    # -- DRAM hooks ---------------------------------------------------------

    def dram_extra_latency(self, now):
        window = self.plan.dram_latency
        if window is not None and window.active(now):
            self.stats["latency_spiked_requests"] += 1
            return self.plan.dram_extra_latency
        return 0

    def dram_blackout_until(self, now):
        """End cycle of an active blackout window, or 0."""
        window = self.plan.dram_blackout
        if window is not None and window.active(now):
            self.stats["blackout_cycles_entered"] += 1
            return window.next_boundary(now)
        return 0

    def dram_maybe_reorder(self, scheduled):
        """Swap the payloads of the two newest scheduled responses.

        Ready times stay in place (the schedule remains monotonic); only
        the (response, respond_to) payloads swap, and only when the two
        entries target different requesters -- each requester's own
        response stream therefore stays in order, which is the bound the
        PEs are designed for (beats interleave across channels anyway).
        """
        permille = self.plan.dram_reorder_permille
        if not permille or len(scheduled) < 2:
            return
        self._reorder_state, value = _splitmix64(self._reorder_state)
        if value % 1000 >= permille:
            return
        t_prev, resp_prev, to_prev = scheduled[-2]
        t_new, resp_new, to_new = scheduled[-1]
        if to_prev is None or to_new is None or to_prev is to_new:
            return
        scheduled[-2] = (t_prev, resp_new, to_new)
        scheduled[-1] = (t_new, resp_prev, to_prev)
        self.stats["reorders"] += 1

    # -- MSHR hook ----------------------------------------------------------

    def mshr_blocked(self):
        window = self.plan.mshr_full
        if window is not None and window.active(self.engine.now):
            self.stats["mshr_forced_failures"] += 1
            return True
        return False

    # -- mutation smoke -----------------------------------------------------

    def corrupt_moms_token(self, req_id):
        """Flip the nth drained response's ID to an impossible value."""
        self._drains_seen += 1
        if self._drains_seen == self.plan.mutate_moms_response_at:
            self.stats["mutations"] += 1
            return (req_id if isinstance(req_id, int) else 0) | (1 << 30)
        return req_id


class FaultController(Component):
    """Drives window transitions that need an active participant.

    Backpressure clamps/restores channel capacities at window edges and
    re-wakes the producers that went to sleep on a throttled channel;
    MSHR windows re-wake the banks whose forced-full stall was
    idempotent (associative files sleep instead of retrying).  DRAM
    faults need no controller: the channel model self-arms around its
    own blackout and latency state.
    """

    demand_driven = True

    def __init__(self, state, throttled, banks):
        self.state = state
        self.throttled = throttled  # channels selected for backpressure
        self.banks = banks
        self._backpressure_on = False

    def _wake_channel_waiters(self, engine, channel):
        for component in channel._space_subs:
            engine.wake(component)
        if channel._space_requests:
            for component in channel._space_requests:
                engine.wake(component)
            channel._space_requests.clear()

    def tick(self, engine):
        plan = self.state.plan
        now = engine.now
        next_events = []
        window = plan.backpressure
        if window is not None and self.throttled:
            active = window.active(now)
            if active and not self._backpressure_on:
                for channel in self.throttled:
                    channel.throttle(0)
                self.state.stats["backpressure_windows"] += 1
                self._backpressure_on = True
            elif not active and self._backpressure_on:
                for channel in self.throttled:
                    channel.restore()
                    self._wake_channel_waiters(engine, channel)
                self._backpressure_on = False
            next_events.append(window.next_boundary(now))
        window = plan.mshr_full
        if window is not None:
            if not window.active(now):
                # A window just closed (or is yet to open): banks whose
                # forced-full stall was idempotent are asleep; re-arm
                # them so the retry happens promptly.
                for bank in self.banks:
                    engine.wake(bank)
            next_events.append(window.next_boundary(now))
        for event in next_events:
            engine.wake_at(self, event)

    def is_idle(self):
        return not self._backpressure_on


_SAFE_THROTTLE_EXCLUDE = ("jobs", "done")


def _select_throttled(plan, engine):
    """Seeded subset of channels eligible for backpressure."""
    if plan.backpressure is None:
        return []
    state = (plan.seed * 0x2545F4914F6CDD1D) & _MASK64 or 1
    selected = []
    cut = int(plan.backpressure_fraction * 1000)
    for channel in engine._channels:
        if channel.name in _SAFE_THROTTLE_EXCLUDE:
            continue
        state, value = _splitmix64(state)
        if value % 1000 < cut:
            selected.append(channel)
    return selected


def install_faults(system, plan):
    """Attach *plan* to a built system; returns the FaultState.

    Must run before ``system.run()``: it appends the fault controller
    component and sets the ``_fault`` hooks on the targeted DRAM
    channels, MSHR files, and banks.
    """
    engine = system.engine
    state = FaultState(plan, engine)
    if (plan.dram_latency is not None or plan.dram_blackout is not None
            or plan.dram_reorder_permille):
        for channel in system.mem.channels:
            channel._fault = state
    banks = list(system.hierarchy.banks)
    if plan.mshr_full is not None:
        for bank in banks:
            bank.mshrs._fault = state
    if plan.mutate_moms_response_at is not None:
        for bank in banks:
            bank._fault = state
    throttled = _select_throttled(plan, engine)
    if throttled or plan.mshr_full is not None:
        controller = FaultController(state, throttled, banks)
        engine.add_component(controller)
        state.controller = controller
    system.fault_state = state
    return state
