"""Request-conservation ledger and structural drain checks.

A *token* is one unit of outstanding work with a lifecycle: a PE's
in-flight MOMS read (keyed by request ID), a bank's in-flight DRAM
line (keyed by line address), a DRAM channel's scheduled response beat.
The ledger counts every token at issue and retire time and keeps the
in-flight multiset per scope, so

* conservation (``issued == in_flight + retired``) is checkable at any
  cycle,
* retiring a token that was never issued -- the signature of a
  corrupted ID or a misrouted response -- raises immediately, before
  the corruption propagates into architectural state, and
* at drain time (end of an iteration) every scope must be empty, which
  catches leaked MSHRs, lost subentries, and stuck channel tokens.

Scopes are small hashable labels such as ``("pe", 3)`` or
``("bank", "shared0")``.  Hooks in the simulation core are guarded by
``_ledger is not None`` class attributes, so the disabled path costs a
single attribute test.
"""

from collections import Counter


class InvariantViolation(AssertionError):
    """A conservation or drain invariant failed.

    ``details`` carries the structured evidence (scope, token, counts)
    so harnesses can log it alongside a stall report.
    """

    def __init__(self, message, details=None):
        super().__init__(message)
        self.details = details or {}


class _Scope:
    __slots__ = ("issued", "retired", "in_flight")

    def __init__(self):
        self.issued = 0
        self.retired = 0
        self.in_flight = Counter()

    def live(self):
        return self.issued - self.retired


class TokenLedger:
    """Tracks token lifecycles per scope; see the module docstring."""

    def __init__(self):
        self._scopes = {}
        self.violations = 0

    # -- lifecycle hooks ----------------------------------------------------

    def _scope(self, scope):
        entry = self._scopes.get(scope)
        if entry is None:
            entry = self._scopes[scope] = _Scope()
        return entry

    def issue(self, scope, token):
        entry = self._scope(scope)
        entry.issued += 1
        entry.in_flight[token] += 1

    def verify(self, scope, token):
        """Assert *token* is in flight in *scope* (peek-time check).

        Called before a response's ID is used to index architectural
        state, so a corrupted token is flagged here instead of turning
        into a wrong BRAM write or a KeyError deep in the datapath.
        """
        entry = self._scopes.get(scope)
        if entry is None or entry.in_flight.get(token, 0) <= 0:
            self.violations += 1
            raise InvariantViolation(
                f"scope {scope!r}: token {token!r} retired/observed but "
                f"never issued (corrupted ID or misrouted response)",
                details={
                    "scope": scope,
                    "token": token,
                    "in_flight": entry.live() if entry else 0,
                },
            )

    def retire(self, scope, token):
        self.verify(scope, token)
        entry = self._scopes[scope]
        entry.retired += 1
        count = entry.in_flight[token] - 1
        if count:
            entry.in_flight[token] = count
        else:
            del entry.in_flight[token]

    # -- invariants ---------------------------------------------------------

    def in_flight(self, scope=None):
        if scope is not None:
            entry = self._scopes.get(scope)
            return entry.live() if entry else 0
        return sum(entry.live() for entry in self._scopes.values())

    def assert_conserved(self):
        """``issued == in_flight + retired`` for every scope."""
        for scope, entry in self._scopes.items():
            live = sum(entry.in_flight.values())
            if entry.issued != entry.retired + live:
                self.violations += 1
                raise InvariantViolation(
                    f"scope {scope!r}: issued {entry.issued} != retired "
                    f"{entry.retired} + in-flight {live}",
                    details={"scope": scope, "issued": entry.issued,
                             "retired": entry.retired, "in_flight": live},
                )

    def assert_drained(self, context=""):
        """No scope may hold in-flight tokens (drain-time leak check)."""
        self.assert_conserved()
        leaks = {
            scope: dict(list(entry.in_flight.items())[:8])
            for scope, entry in self._scopes.items()
            if entry.in_flight
        }
        if leaks:
            self.violations += 1
            where = f" at {context}" if context else ""
            raise InvariantViolation(
                f"token leak{where}: {len(leaks)} scope(s) still hold "
                f"in-flight tokens: {leaks}",
                details={"leaks": leaks, "context": context},
            )

    def snapshot(self):
        """Per-scope counters as a plain dict (for reports)."""
        return {
            repr(scope): {
                "issued": entry.issued,
                "retired": entry.retired,
                "in_flight": sum(entry.in_flight.values()),
            }
            for scope, entry in self._scopes.items()
        }


def check_drained(system, context=""):
    """Structural drain check over an :class:`AcceleratorSystem`.

    Complements the ledger with direct structure inspection: leaked
    MSHR entries, live subentries, half-finished drains, scheduled DRAM
    responses, and channel tokens all indicate lost or stuck work when
    the system claims an iteration is complete.
    """
    problems = []
    for bank in system.hierarchy.banks:
        if bank.mshrs.occupancy:
            lines = [f"{e.line_addr:#x}" for e in bank.mshrs.entries()][:8]
            problems.append(
                f"bank {bank.name}: {bank.mshrs.occupancy} leaked MSHR "
                f"entries (lines {', '.join(lines)})"
            )
        if bank.subentries.entries_live:
            problems.append(
                f"bank {bank.name}: {bank.subentries.entries_live} live "
                f"subentries after drain"
            )
        if bank._drain_items is not None:
            problems.append(f"bank {bank.name}: drain still in progress")
    for channel in system.mem.channels:
        if channel.pending:
            problems.append(
                f"dram {channel.name}: {channel.pending} scheduled "
                f"responses undelivered"
            )
        if channel.req.pending:
            problems.append(
                f"dram {channel.name}: {channel.req.pending} requests "
                f"still queued"
            )
    for channel in system.engine._channels:
        if channel.pending:
            problems.append(
                f"channel {channel.name!r}: {channel.pending} tokens "
                f"stuck (visible {len(channel)})"
            )
    if problems:
        where = f" at {context}" if context else ""
        raise InvariantViolation(
            "drain check failed%s:\n  %s" % (where, "\n  ".join(problems)),
            details={"problems": problems, "context": context},
        )
