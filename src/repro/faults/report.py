"""Structured stall reports: who is waiting on which channel or timer.

Built purely by introspecting an :class:`~repro.sim.engine.Engine` at
diagnosis time, so the running simulation pays nothing for the ability
to produce one.  Consumed by the engine's deadlock path, the watchdog,
and the fault-smoke harness (which uploads them as CI artifacts).
"""


def _component_label(component):
    kind = type(component).__name__
    name = getattr(component, "name", None)
    order = getattr(component, "_engine_order", -1)
    if name:
        return f"{kind}({name})#{order}"
    index = getattr(component, "pe_index", None)
    if index is not None:
        return f"{kind}(pe{index})#{order}"
    return f"{kind}#{order}"


def build_stall_report(engine, reason=""):
    """Snapshot the engine's wait structure as a plain dict.

    The report answers the deadlock triage questions directly: which
    channels hold undelivered tokens and who subscribes to them, which
    channels are full and who is blocked on their space, which timers
    are still scheduled, and what every non-idle component looks like.
    """
    channels = []
    for channel in engine._channels:
        visible = len(channel)
        staged = channel.pending - visible
        if not channel.pending and channel.capacity > 0 \
                and not channel._space_requests:
            continue
        channels.append({
            "name": channel.name or "<anon>",
            "capacity": channel.capacity,
            "visible": visible,
            "staged": staged,
            "full": channel.pending >= channel.capacity,
            "data_waiters": [
                _component_label(c) for c in channel._data_subs
            ],
            "space_waiters": [
                _component_label(c) for c in channel._space_subs
            ] + [
                _component_label(c) for c in channel._space_requests
            ],
        })
    components = []
    for component in engine._components:
        idle = component.is_idle()
        if idle and not component.ticks:
            continue
        components.append({
            "component": _component_label(component),
            "idle": idle,
            "ticks": component.ticks,
            "wakes": component.wakes,
            "armed": component._engine_order in engine._wake_next,
        })
    from repro.core.stats import component_breakdown

    timers = sorted(engine._timers)[:16]
    time_sources = []
    for source in engine._time_sources:
        if not source.pending:
            continue
        time_sources.append({
            "source": _component_label(source),
            "pending": source.pending,
            "next_event": source.next_event_time(),
        })
    checkpoint = None
    checkpointer = getattr(engine, "checkpointer", None)
    if checkpointer is not None and checkpointer.last_path is not None:
        checkpoint = {
            "path": checkpointer.last_path,
            "cycle": checkpointer.last_cycle,
            "replay": checkpointer.replay_command(),
        }
    flight_recorder = None
    tracer = getattr(engine, "tracer", None)
    if tracer is not None:
        recorder = tracer.recorder
        flight_recorder = {
            "depth": recorder.depth,
            "recorded": recorder.recorded,
            "tail": recorder.tail(32),
        }
    return {
        "reason": reason,
        "cycle": engine.now,
        "checkpoint": checkpoint,
        "flight_recorder": flight_recorder,
        "cycles_simulated": engine.cycles_simulated,
        "component_ticks": engine.component_ticks,
        "component_breakdown": [
            {"component": e.kind, "count": e.count,
             "ticks": e.ticks, "wakes": e.wakes}
            for e in component_breakdown(engine)
        ],
        "stuck_channels": channels,
        "components": components,
        "timers": [
            {"time": t, "component": (
                _component_label(engine._components[order])
                if order >= 0 else "<bare event>"
            )}
            for t, order in timers
        ],
        "time_sources": time_sources,
    }


def format_stall_report(report):
    """Render a stall report as indented text for exception messages."""
    lines = [
        f"stall report at cycle {report['cycle']}"
        + (f" ({report['reason']})" if report.get("reason") else "")
    ]
    stuck = report["stuck_channels"]
    if stuck:
        lines.append("  channels holding or blocking work:")
        for ch in stuck:
            state = "FULL" if ch["full"] else f"{ch['visible']}+{ch['staged']}"
            waiters = []
            if ch["data_waiters"]:
                waiters.append("data->" + ",".join(ch["data_waiters"]))
            if ch["space_waiters"]:
                waiters.append("space->" + ",".join(ch["space_waiters"]))
            lines.append(
                f"    {ch['name']} [{state}/{ch['capacity']}] "
                + ("; ".join(waiters) if waiters else "(no subscribers)")
            )
    busy = [c for c in report["components"] if not c["idle"]]
    if busy:
        lines.append("  non-idle components:")
        for comp in busy:
            armed = " armed" if comp["armed"] else ""
            lines.append(
                f"    {comp['component']} ticks={comp['ticks']} "
                f"wakes={comp['wakes']}{armed}"
            )
    if report["timers"]:
        lines.append("  pending timers:")
        for timer in report["timers"]:
            lines.append(f"    t={timer['time']} -> {timer['component']}")
    if report["time_sources"]:
        lines.append("  time sources with in-flight tokens:")
        for source in report["time_sources"]:
            lines.append(
                f"    {source['source']} pending={source['pending']} "
                f"next={source['next_event']}"
            )
    breakdown = [
        row for row in report.get("component_breakdown", ())
        if row.get("ticks")
    ]
    if breakdown:
        lines.append("  ticks by component class:")
        for row in breakdown[:6]:
            lines.append(
                f"    {row['component']} x{row['count']} "
                f"ticks={row['ticks']} wakes={row['wakes']}"
            )
    if len(lines) == 1:
        lines.append("  (no stuck channels, busy components, or timers)")
    flight = report.get("flight_recorder")
    if flight and flight.get("tail"):
        tail = flight["tail"]
        lines.append(
            f"  flight recorder (last {len(tail)} of "
            f"{flight['recorded']} events, oldest first):"
        )
        for event in tail:
            lines.append(
                "    [{cycle:>10}] {event:<12} {where:<16} "
                "{detail}".format(**event)
            )
    checkpoint = report.get("checkpoint")
    if checkpoint:
        lines.append(
            f"  last checkpoint: {checkpoint['path']} "
            f"(cycle {checkpoint['cycle']})"
        )
        lines.append(f"  replay up to this failure: {checkpoint['replay']}")
    return "\n".join(lines)
