"""Baselines: software references and analytical competitor models.

* :mod:`repro.baselines.reference` -- exact software implementations of
  the three algorithms (and a literal Template 1 interpreter) used to
  validate every accelerator run.
* :mod:`repro.baselines.fabgraph` -- reconstruction of the FabGraph
  analytical performance model the paper compares against (Figs. 14/16).
* :mod:`repro.baselines.cpu` / :mod:`repro.baselines.gpu` -- bandwidth-
  based cost models for Ligra/GraphMat and Gunrock with the platform
  constants of Table IV.
"""

from repro.baselines.reference import (
    reference_bfs,
    reference_min_label,
    reference_pagerank,
    reference_sssp,
    run_template_reference,
)
from repro.baselines.fabgraph import FabGraphModel
from repro.baselines.cpu import CpuFrameworkModel, CPU_PLATFORM
from repro.baselines.gpu import GpuFrameworkModel, GPU_PLATFORM

__all__ = [
    "CPU_PLATFORM",
    "CpuFrameworkModel",
    "FabGraphModel",
    "GPU_PLATFORM",
    "GpuFrameworkModel",
    "reference_bfs",
    "reference_min_label",
    "reference_pagerank",
    "reference_sssp",
    "run_template_reference",
]
