"""Bandwidth-based cost models for the CPU frameworks (Ligra, GraphMat).

The paper evaluates Ligra and GraphMat on a dual-socket Xeon E5-2680 v3
(233 GB/s, 224 W -- Table IV).  We cannot run those frameworks here, so
Fig. 16's CPU bars come from a documented analytical model: execution
time = bytes moved / (efficiency x bandwidth), where bytes moved per
edge depend on the algorithm and on how cache-hostile the graph's
labeling is (random far-away accesses miss the LLC and drag a full
64-byte line per touch).  Efficiency constants are calibrated once so
the paper's reported speedup bands hold on the scaled suite.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Platform:
    """External-memory bandwidth and power (paper Table IV)."""

    name: str
    bandwidth_bytes_per_s: float
    power_w: float


CPU_PLATFORM = Platform("2x Xeon E5-2680 v3", 233e9, 224.0)


def locality_fraction(graph, span=64):
    """Share of edges whose endpoints are close in the label space.

    A cheap proxy for LLC friendliness: local edges hit cached lines,
    far edges miss.  Web crawls score high, scrambled social graphs low.
    """
    return float((np.abs(graph.src - graph.dst) <= span).mean())


@dataclass
class CpuFrameworkModel:
    """One CPU framework's throughput/efficiency estimate."""

    framework: str = "ligra"
    platform: Platform = CPU_PLATFORM
    # Calibrated efficiency: fraction of peak bandwidth the framework
    # sustains on graph kernels (memory-latency bound in practice).
    efficiency: float = 0.35

    # Per-edge costs (bytes): streaming the edge + touching the value.
    edge_bytes: int = 8  # CSR index + value touch bookkeeping
    line_bytes: int = 64

    def bytes_per_edge(self, graph, with_dbg=False):
        """Average DRAM bytes per processed edge."""
        local = locality_fraction(graph)
        if with_dbg:
            # DBG packs hot vertices together: effective locality rises.
            local = min(1.0, local + 0.25)
        # Local edges touch a cached line (amortized ~node_bytes); far
        # edges miss and transfer a whole line.
        node_cost = local * 4 + (1.0 - local) * self.line_bytes
        return self.edge_bytes + node_cost

    def gteps(self, graph, algorithm="pagerank", with_dbg=False):
        """Sustained traversal throughput (edges/s / 1e9)."""
        per_edge = self.bytes_per_edge(graph, with_dbg=with_dbg)
        eff = self.efficiency
        if algorithm == "sssp":
            per_edge += 4  # weight word
            eff *= 0.8     # frontier management overhead
        elif algorithm == "scc":
            eff *= 0.9
        return self.platform.bandwidth_bytes_per_s * eff / per_edge / 1e9

    def bandwidth_efficiency(self, graph, algorithm="pagerank",
                             with_dbg=False):
        """GTEPS per GB/s of platform bandwidth (Fig. 16's metric)."""
        return self.gteps(graph, algorithm, with_dbg) / (
            self.platform.bandwidth_bytes_per_s / 1e9
        )

    def power_efficiency(self, graph, algorithm="pagerank", with_dbg=False):
        """GTEPS per watt."""
        return self.gteps(graph, algorithm, with_dbg) / self.platform.power_w


def ligra_model():
    return CpuFrameworkModel(framework="ligra", efficiency=0.38)


def graphmat_model():
    # GraphMat's SpMV formulation streams better but does more passes.
    return CpuFrameworkModel(framework="graphmat", efficiency=0.45,
                             edge_bytes=12)
