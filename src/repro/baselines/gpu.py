"""Bandwidth/capacity model for the GPU framework (Gunrock on V100).

The paper ran Gunrock on a 16 GB HBM2 Tesla V100 (900 GB/s, 300 W TDP
-- Table IV).  Two behaviours matter for Fig. 16 and are reproduced
here:

* raw throughput scales with HBM bandwidth but pays for SIMD
  divergence on irregular graphs (low efficiency on skewed degree
  distributions, better on SSSP thanks to per-node frontiers);
* the 16 GB memory capacity caps the runnable graph size -- Gunrock
  could only run the five smallest benchmarks, which the model checks
  with exact footprint arithmetic on the *paper-scale* graph sizes.
"""

from dataclasses import dataclass

import numpy as np

from repro.baselines.cpu import Platform, locality_fraction

GPU_PLATFORM = Platform("NVIDIA Tesla V100 16GB", 900e9, 300.0)

GPU_MEMORY_BYTES = 16 * 1024 ** 3


@dataclass
class GpuFrameworkModel:
    """Gunrock throughput estimate + capacity feasibility check."""

    platform: Platform = GPU_PLATFORM
    efficiency_pagerank: float = 0.10
    efficiency_sssp: float = 0.22  # fine-grained frontier pays off
    efficiency_scc: float = 0.12
    edge_bytes: int = 8  # CSR edges + frontier bookkeeping
    line_bytes: int = 32  # HBM access granularity
    edge_replication: float = 3.5  # CSR + CSC + per-edge working buffers
    usable_fraction: float = 0.85  # CUDA context/fragmentation overhead

    def fits_in_memory(self, paper_n_nodes, paper_n_edges, weighted=False):
        """Can Gunrock hold the paper-scale graph in 16 GB?

        Gunrock materializes both directions plus per-edge working
        buffers (~3x the raw CSR edges), offsets (8 B per node), two
        value arrays and a frontier.  With these constants exactly the
        five smallest Table II benchmarks fit, as the paper reports.
        """
        edge_words = 4 + (4 if weighted else 0)
        footprint = (
            self.edge_replication * paper_n_edges * edge_words
            + paper_n_nodes * (8 + 4 + 4 + 4)
        )
        return footprint <= self.usable_fraction * GPU_MEMORY_BYTES

    def _efficiency(self, algorithm):
        return {
            "pagerank": self.efficiency_pagerank,
            "sssp": self.efficiency_sssp,
            "scc": self.efficiency_scc,
        }[algorithm]

    def gteps(self, graph, algorithm="pagerank"):
        """Sustained GTEPS on a runnable graph."""
        local = locality_fraction(graph)
        node_cost = local * 4 + (1.0 - local) * self.line_bytes
        per_edge = self.edge_bytes + node_cost
        if algorithm == "sssp":
            per_edge += 4
        eff = self._efficiency(algorithm)
        return self.platform.bandwidth_bytes_per_s * eff / per_edge / 1e9

    def bandwidth_efficiency(self, graph, algorithm="pagerank"):
        return self.gteps(graph, algorithm) / (
            self.platform.bandwidth_bytes_per_s / 1e9
        )

    def power_efficiency(self, graph, algorithm="pagerank"):
        return self.gteps(graph, algorithm) / self.platform.power_w
