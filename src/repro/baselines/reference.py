"""Software reference implementations used for functional validation.

Two layers:

* Fast vectorized references (:func:`reference_pagerank`,
  :func:`reference_min_label`, :func:`reference_sssp`,
  :func:`reference_bfs`) computing the mathematical fixpoint / iterate
  each algorithm should reach.
* A literal, scalar interpreter of Template 1
  (:func:`run_template_reference`) that walks intervals, shards and
  active flags exactly like the hardware, for validating the template
  semantics themselves on small graphs.

The asynchronous algorithms (min-label, SSSP, BFS) are monotone
min-semiring computations, so any execution order converges to the
same unique fixpoint -- which is why the out-of-order accelerator can
be validated for exact equality against these references.
"""

import numpy as np

from repro.accel.algorithms import DAMPING, INFINITY
from repro.graph.partition import partition_edges


def reference_pagerank(graph, n_iterations=10):
    """Synchronous PageRank, normalized-score formulation (Table I).

    Matches the accelerator's semantics: per-iteration y = d*PR/OD in
    DRAM, no dangling-mass redistribution, sinks report the teleport
    term.  Returns the denormalized scores.
    """
    n = graph.n_nodes
    degrees = graph.out_degrees().astype(np.float64)
    base = 0.15 / n
    with np.errstate(divide="ignore", invalid="ignore"):
        y = np.where(degrees > 0, DAMPING * (1.0 / n) / degrees, 0.0)
    safe_degrees = np.where(degrees > 0, degrees, 1.0)
    for _ in range(n_iterations):
        accum = np.zeros(n)
        np.add.at(accum, graph.dst, y[graph.src])
        y = np.where(degrees > 0,
                     DAMPING * (base + accum) / safe_degrees, 0.0)
    # Scores corresponding to the stored y (one denormalization pass).
    return np.where(degrees > 0, y * degrees / DAMPING, base)


def reference_min_label(graph, max_iterations=None):
    """Fixpoint of label = min(own, labels of in-neighbors).

    Returns (labels, n_iterations_to_converge).
    """
    labels = np.arange(graph.n_nodes, dtype=np.int64)
    limit = max_iterations or graph.n_nodes + 1
    for iteration in range(1, limit + 1):
        new = labels.copy()
        np.minimum.at(new, graph.dst, labels[graph.src])
        if np.array_equal(new, labels):
            return labels, iteration
        labels = new
    return labels, limit


def reference_sssp(graph, source=0, max_iterations=None):
    """Bellman-Ford fixpoint with saturating uint32 distances.

    Returns (distances int64 with INFINITY for unreachable, iterations).
    """
    if not graph.weighted:
        raise ValueError("SSSP needs a weighted graph")
    dist = np.full(graph.n_nodes, INFINITY, dtype=np.int64)
    dist[source] = 0
    limit = max_iterations or graph.n_nodes + 1
    for iteration in range(1, limit + 1):
        candidate = dist[graph.src] + graph.weights
        np.clip(candidate, 0, INFINITY, out=candidate)
        new = dist.copy()
        np.minimum.at(new, graph.dst, candidate)
        if np.array_equal(new, dist):
            return dist, iteration
        dist = new
    return dist, limit


def reference_bfs(graph, source=0, max_iterations=None):
    """Hop distances; the unit-weight special case of SSSP."""
    dist = np.full(graph.n_nodes, INFINITY, dtype=np.int64)
    dist[source] = 0
    limit = max_iterations or graph.n_nodes + 1
    for iteration in range(1, limit + 1):
        candidate = np.minimum(dist[graph.src] + 1, INFINITY)
        new = dist.copy()
        np.minimum.at(new, graph.dst, candidate)
        if np.array_equal(new, dist):
            return dist, iteration
        dist = new
    return dist, limit


def run_template_reference(spec, graph, max_iterations=100,
                           nodes_per_src_interval=None,
                           nodes_per_dst_interval=None):
    """Literal scalar interpreter of Template 1 (paper Section III-B).

    Walks destination intervals and shards with active-source tracking,
    init/gather/apply hooks, synchronous or asynchronous V arrays --
    the same control flow the hardware follows, minus all timing.
    Returns (host values, iterations executed).
    """
    ns = nodes_per_src_interval or max(1, min(graph.n_nodes, 4096))
    nd = nodes_per_dst_interval or max(1, min(graph.n_nodes, 1024))
    part = partition_edges(graph, ns, nd)
    n = graph.n_nodes

    v_dram_in = spec.initial_dram_image(graph).copy()
    v_dram_out = v_dram_in.copy() if spec.synchronous else v_dram_in
    const_words = spec.const_dram_image(graph)
    base = spec.const_scalar(graph)

    decode = spec.decode
    encode = spec.encode
    active_srcs = np.ones(part.q_src, dtype=bool)
    iterations = 0

    for _ in range(max_iterations):
        iterations += 1
        active_next = np.zeros(part.q_src, dtype=bool)
        keep_going = False
        for d in range(part.q_dst):
            lo, hi = part.dst_interval_bounds(d)
            bram = [
                spec.init(
                    int(const_words[i]) if const_words is not None else 0,
                    decode(v_dram_in[i]),
                )
                for i in range(lo, hi)
            ]
            interval_updated = False
            for s in range(part.q_src):
                if not active_srcs[s]:
                    continue
                arrays = part.shard(s, d)
                src, dst = arrays[0], arrays[1]
                weights = arrays[2] if spec.weighted else np.zeros_like(src)
                for e in range(len(src)):
                    u_node = int(src[e])
                    dst_off = int(dst[e]) - lo
                    if spec.use_local_src and lo <= u_node < hi:
                        u_value = bram[u_node - lo]
                    else:
                        u_value = decode(v_dram_in[u_node])
                    new = spec.gather(u_value, bram[dst_off],
                                      int(weights[e]))
                    if new != bram[dst_off] or spec.always_active:
                        interval_updated = True
                        keep_going = True
                    bram[dst_off] = new
            for i in range(lo, hi):
                const_c = int(const_words[i]) if const_words is not None else 0
                v_dram_out[i] = encode(spec.apply(bram[i - lo], const_c,
                                                  base))
            if interval_updated:
                # Mark the source intervals overlapping this destination
                # interval (Template 1 line 17).
                first = lo // ns
                last = (hi - 1) // ns
                active_next[first:last + 1] = True
        if spec.synchronous:
            v_dram_in, v_dram_out = v_dram_out, v_dram_in
        active_srcs = active_next
        if not spec.always_active and not keep_going:
            break
    return spec.finalize(v_dram_in, graph), iterations
