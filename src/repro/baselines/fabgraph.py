"""Reconstruction of the FabGraph analytical performance model.

The paper compares against FabGraph [44] using "the theoretical model
described by Equations (2) to (7) in the FabGraph paper", under
optimistic assumptions: ideal DRAM bandwidth, all edges active, no SLR
or RAW penalties.  The FabGraph equations are not reproduced in the
paper, so this module reconstructs the model from FabGraph's
architecture as the paper describes it:

* edges are streamed once per iteration at full DRAM bandwidth;
* source/destination vertex *tiles* move between DRAM and an on-chip
  L2 vertex cache; the number of tile transfers is quadratic in the
  number of intervals, i.e. proportional to ``Q * N`` vertex words per
  iteration (the overhead the MOMS design eliminates);
* an internal L1<->L2 path of fixed bandwidth feeds the PEs; its
  traffic also grows with Q, and because it does not scale with DRAM
  channels it caps multi-channel scaling (paper Section V-D).

Execution time per iteration is the max of the three bound terms
(streaming overlaps with tile transfers in FabGraph's pipeline).
"""

from dataclasses import dataclass

import math


@dataclass
class FabGraphModel:
    """Optimistic FabGraph throughput estimate (paper Figs. 14 and 16)."""

    bram_capacity_bytes: int = 4 * 1024 * 1024  # on-chip L2 vertex budget
    l1_capacity_bytes: int = 2 * 1024 * 1024
    internal_bandwidth_bytes_per_s: float = 100e9  # L1<->L2, channel-count independent
    bandwidth_per_channel_bytes_per_s: float = 16e9  # ideal, per the paper
    edge_bytes: int = 4
    node_bytes: int = 4
    frequency_hz: float = 250e6

    def intervals(self, n_nodes, capacity_bytes):
        """Number of vertex intervals that fit the given budget."""
        nodes_per_interval = max(1, capacity_bytes // (2 * self.node_bytes))
        return max(1, math.ceil(n_nodes / nodes_per_interval))

    def iteration_time_s(self, n_nodes, n_edges, n_channels=4):
        """Seconds per full-edge-sweep iteration (all edges active)."""
        dram_bw = n_channels * self.bandwidth_per_channel_bytes_per_s
        q2 = self.intervals(n_nodes, self.bram_capacity_bytes)
        q1 = self.intervals(n_nodes, self.l1_capacity_bytes)

        t_edges = n_edges * self.edge_bytes / dram_bw
        # Tile traffic: every destination pass reloads the source tiles
        # (Q2 + 1 passes over the vertex set) plus one writeback.
        vertex_bytes = n_nodes * self.node_bytes * (q2 + 2)
        t_tiles = vertex_bytes / dram_bw
        # Internal L1 refills: Q1 passes over the vertex set per sweep.
        internal_bytes = n_nodes * self.node_bytes * q1
        t_internal = internal_bytes / self.internal_bandwidth_bytes_per_s

        return max(t_edges, t_tiles, t_internal)

    def pagerank_gteps(self, n_nodes, n_edges, n_channels=4):
        """Throughput in GTEPS for PageRank (edges always active)."""
        t = self.iteration_time_s(n_nodes, n_edges, n_channels)
        return n_edges / t / 1e9

    def scaled(self, factor):
        """Model with on-chip capacities scaled (simulator-scale runs)."""
        return FabGraphModel(
            bram_capacity_bytes=max(1024,
                                    int(self.bram_capacity_bytes * factor)),
            l1_capacity_bytes=max(256, int(self.l1_capacity_bytes * factor)),
            internal_bandwidth_bytes_per_s=self.internal_bandwidth_bytes_per_s,
            bandwidth_per_channel_bytes_per_s=(
                self.bandwidth_per_channel_bytes_per_s
            ),
            edge_bytes=self.edge_bytes,
            node_bytes=self.node_bytes,
            frequency_hz=self.frequency_hz,
        )
