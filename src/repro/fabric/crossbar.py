"""Crossbar switching with per-port conflicts.

The crossbar is where the paper's *bank conflicts* come from: every
output (e.g. a MOMS bank) can accept at most one token per cycle, so
simultaneous requests from several PEs to the same bank serialize.
Inputs are likewise limited to one token per cycle (a physical port).
Arbitration per output is round-robin for fairness.
"""

from repro.sim import Component


class Crossbar(Component):
    """M input channels -> N output channels with a routing function.

    ``route(token)`` returns the output index for a token.  Each cycle
    every output grants at most one input, and every input moves at
    most one token, using per-output round-robin pointers.
    """

    demand_driven = True
    # Opt-in span tracer (repro.tracing); class attribute so the
    # untraced path pays one "is None" test per transfer.
    _trace = None

    def __init__(self, inputs, outputs, route, name="xbar"):
        if not inputs or not outputs:
            raise ValueError("crossbar needs inputs and outputs")
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.route = route
        self.name = name
        self._pointers = [0] * len(self.outputs)
        self.transfers = 0
        self.conflict_cycles = 0
        # Wake on any new input token.  Full outputs arm one-shot space
        # wakes at the moment a grant blocks on them; losers of a
        # round-robin conflict re-arm via an explicit self-wake.  This
        # replaces static space subscriptions on every output, which
        # woke the crossbar on every commit of every draining bank port
        # whether or not any input had a token to route.
        for channel in self.inputs:
            channel.subscribe_data(self)

    def tick(self, engine):
        # Each input's head token has exactly one destination, so one
        # scan over the inputs buckets all contenders per output; each
        # output then grants its round-robin winner.  O(M + N) per cycle.
        n_in = len(self.inputs)
        buckets = None
        for in_index, channel in enumerate(self.inputs):
            if channel._visible:  # hot path: avoid can_pop() call overhead
                out_index = self.route(channel._ring[channel._head])
                if buckets is None:
                    buckets = {}
                buckets.setdefault(out_index, []).append(in_index)
        if buckets is None:
            return
        pointers = self._pointers
        rearm = False
        # simlint: disable=R1 -- buckets fills in input-index order in
        # the scan above; dict iteration is insertion-ordered, so the
        # grant order is deterministic by construction.
        for out_index, contenders in buckets.items():
            output = self.outputs[out_index]
            if output._occ + output._staged_n >= output.capacity:
                output.request_space_wake(self)
                continue
            if len(contenders) == 1:
                winner = contenders[0]
            else:
                pointer = pointers[out_index]
                winner = min(contenders, key=lambda i: (i - pointer) % n_in)
                self.conflict_cycles += 1
                # The losers' head tokens can move next cycle (this
                # output just proved it has space and drains one per
                # cycle); nothing else will commit on their behalf.
                rearm = True
            token = self.inputs[winner].pop()
            if self._trace is not None:
                self._trace.xbar_hop(self.name, token, engine.now)
            output.push(token)
            pointers[out_index] = winner + 1 if winner + 1 < n_in else 0
            self.transfers += 1
        if rearm:
            engine.wake(self)
