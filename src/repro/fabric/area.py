"""Analytical resource (area) model standing in for Vivado reports.

Estimates LUT/FF/BRAM36/URAM/DSP usage per component from its
structural parameters, then aggregates per SLR through the floorplan.
Constants are calibrated to the qualitative picture of paper Fig. 17:
LUTs concentrate in the interconnect, BRAM/URAM split between PEs and
MOMSes, DSPs underutilized even for floating-point PageRank.
"""

from dataclasses import dataclass

from repro.fabric.design import DesignDescription
from repro.fabric.floorplan import AWS_F1_FLOORPLAN

BRAM36_BITS = 36 * 1024
URAM_BITS = 288 * 1024


@dataclass(frozen=True)
class ResourceVector:
    """One point in (LUT, FF, BRAM36, URAM, DSP) space."""

    lut: float = 0.0
    ff: float = 0.0
    bram: float = 0.0
    uram: float = 0.0
    dsp: float = 0.0

    def __add__(self, other):
        return ResourceVector(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram + other.bram,
            self.uram + other.uram,
            self.dsp + other.dsp,
        )

    def scaled(self, factor):
        return ResourceVector(
            self.lut * factor,
            self.ff * factor,
            self.bram * factor,
            self.uram * factor,
            self.dsp * factor,
        )

    def as_dict(self):
        return {
            "LUT": self.lut,
            "FF": self.ff,
            "BRAM": self.bram,
            "URAM": self.uram,
            "DSP": self.dsp,
        }


# Whole-device capacity of the VU9P on AWS f1 (three SLRs).
VU9P_CAPACITY = ResourceVector(
    lut=1_182_000, ff=2_364_000, bram=2_160, uram=960, dsp=6_840
)


def _brams_for(bits):
    return max(1.0, bits / BRAM36_BITS)


def _urams_for(bits):
    return max(1.0, bits / URAM_BITS)


class AreaModel:
    """Estimates resources for one design point on a floorplan."""

    def __init__(self, floorplan=AWS_F1_FLOORPLAN):
        self.floorplan = floorplan

    # -- per-component estimators ----------------------------------------

    def pe(self, design):
        """One processing element: DMA, MOMS interface, gather, BRAM."""
        node_bits = design.node_bits
        dest_buffer_bits = design.nodes_per_interval * node_bits
        control = ResourceVector(lut=3_000, ff=4_500, bram=2)
        dest_buffer = ResourceVector(uram=_urams_for(dest_buffer_bits))
        if design.algorithm == "pagerank":
            # HLS floating-point accumulate: DSP-based, 4-cycle pipeline.
            gather = ResourceVector(lut=900, ff=1_800, dsp=3)
        else:
            # Combinational integer min / min-plus.
            gather = ResourceVector(lut=250, ff=300)
        interface = ResourceVector(lut=800, ff=1_200)
        if design.weighted:
            # Free-ID queue + state memory (8,192 slots, Fig. 10a).
            state_bits = 8_192 * (15 + 8 + design.node_bits)
            interface = interface + ResourceVector(
                lut=400, ff=600, bram=_brams_for(state_bits)
            )
        return control + dest_buffer + gather + interface

    def moms_bank(self, mshrs, subentries, cache_kib, request_width=64):
        """One MOMS bank: cuckoo MSHRs (BRAM), subentries + cache (URAM)."""
        mshr_bits = mshrs * 64  # tag + pointer + status per entry
        subentry_bits = subentries * 24  # ID + offset + next-row link
        cache_bits = cache_kib * 1024 * 8
        pipeline = ResourceVector(
            lut=4_000 + 12 * request_width, ff=6_000 + 16 * request_width
        )
        return pipeline + ResourceVector(
            bram=_brams_for(mshr_bits),
            uram=_urams_for(subentry_bits)
            + (_urams_for(cache_bits) if cache_kib else 0.0),
        )

    def traditional_cache_unit(self, design, cache_kib):
        """A classic non-blocking cache: small associative MSHR file."""
        mshr_bits = (
            design.traditional_mshrs
            * design.traditional_subentries_per_mshr
            * 32
        )
        cache_bits = cache_kib * 1024 * 8
        return ResourceVector(
            lut=2_500,
            ff=3_000,
            bram=_brams_for(mshr_bits),
            uram=_urams_for(cache_bits) if cache_kib else 0.0,
        )

    def crossbar(self, n_in, n_out, width_bits):
        """Mux/demux fabric: LUT cost grows with ports x width."""
        muxing = 0.55 * n_in * n_out * width_bits / 8
        return ResourceVector(
            lut=2_000 + muxing,
            ff=1_500 + 0.8 * muxing,
        )

    def crossing_buffers(self, n_signals_kbits):
        """Register stages + skid buffers on SLR boundaries."""
        return ResourceVector(ff=2.2 * n_signals_kbits * 1000 / 8,
                              lut=0.3 * n_signals_kbits * 1000 / 8)

    # -- whole-design aggregation ----------------------------------------

    def design_total(self, design):
        """Total resource vector for *design*, by structural accounting."""
        total = ResourceVector(lut=12_000, ff=18_000)  # scheduler + control
        total = total + self.pe(design).scaled(design.n_pes)

        if design.organization == "traditional":
            total = total + self.traditional_cache_unit(
                design, design.private_cache_kib
            ).scaled(design.n_pes)
            total = total + self.traditional_cache_unit(
                design, design.shared_cache_kib
            ).scaled(design.n_banks)
        else:
            if design.has_private_level:
                total = total + self.moms_bank(
                    design.private_mshrs,
                    design.private_subentries,
                    design.private_cache_kib,
                ).scaled(design.n_pes)
            if design.has_shared_level:
                total = total + self.moms_bank(
                    design.shared_mshrs,
                    design.shared_subentries,
                    design.shared_cache_kib,
                ).scaled(design.n_banks)

        # Interconnect: burst read/write crossbars PEs x channels, plus the
        # MOMS request/response crossbars PEs x banks when shared.
        total = total + self.crossbar(design.n_pes, design.n_channels, 512)
        total = total + self.crossbar(design.n_channels, design.n_pes, 512)
        if design.has_shared_level:
            width = 64 if design.organization == "two-level" else 96
            total = total + self.crossbar(design.n_pes, design.n_banks, width)
            total = total + self.crossbar(design.n_banks, design.n_pes, width)

        total = total + self.crossing_buffers(self.crossing_kbits(design))
        return total

    def crossing_kbits(self, design):
        """Total kilobits of signals crossing SLR boundaries.

        Derived from the floorplan: PE <-> channel burst paths, PE <->
        shared-crossbar MOMS paths, and crossbar <-> bank paths.
        """
        plan = self.floorplan
        pe_dies = plan.assign_pes(design.n_pes)
        kbits = 0.0
        for die in pe_dies:
            for channel in range(design.n_channels):
                # Each PE's burst path needs crossbar wiring to every die
                # hosting a channel it can address (512-bit bus).
                hops = plan.hops(die, plan.die_of_channel(channel))
                kbits += hops * 0.512
            if design.has_shared_level:
                width = 0.064 if design.organization == "two-level" else 0.096
                kbits += plan.hops(die, plan.crossbar_die) * width * 2
        if design.has_shared_level:
            for bank in range(design.n_banks):
                hops = plan.hops(
                    plan.crossbar_die,
                    plan.die_of_bank(bank, design.n_banks, design.n_channels),
                )
                kbits += hops * 0.128
        return kbits

    def utilization(self, design, capacity=VU9P_CAPACITY):
        """Fraction of each device resource used (shell area excluded).

        Mirrors Fig. 17's reporting: utilization relative to the area
        not occupied by the shell.
        """
        plan = self.floorplan
        shell_free = sum(
            (1.0 - reserved) / plan.n_dies for reserved in plan.shell_reserved
        )
        total = self.design_total(design)
        available = capacity.scaled(shell_free)
        return {
            "LUT": total.lut / available.lut,
            "FF": total.ff / available.ff,
            "BRAM": total.bram / available.bram,
            "URAM": total.uram / available.uram,
            "DSP": total.dsp / available.dsp if available.dsp else 0.0,
        }

    def per_slr_utilization(self, design, capacity=VU9P_CAPACITY):
        """Worst-SLR LUT utilization, the main routability driver."""
        plan = self.floorplan
        total = self.design_total(design)
        pe_dies = plan.assign_pes(design.n_pes)
        per_die_weight = [
            pe_dies.count(die) / design.n_pes for die in range(plan.n_dies)
        ]
        # The shared crossbar and its banks weight the central die extra.
        if design.has_shared_level:
            boost = 0.12
            per_die_weight = [
                w * (1 - boost) + (boost if die == plan.crossbar_die else 0.0)
                for die, w in enumerate(per_die_weight)
            ]
        slr_capacity = capacity.lut / plan.n_dies
        utils = []
        for die, weight in enumerate(per_die_weight):
            free = slr_capacity * (1.0 - plan.shell_reserved[die])
            utils.append(total.lut * weight / free)
        return max(utils)
