"""Analytical operating-frequency model.

Stands in for place-and-route: the achievable clock starts at the
250 MHz target and degrades with (1) worst-SLR logic utilization --
congested dies route badly -- and (2) the amount of signal crossing SLR
boundaries.  Calibrated so the paper's design points land in their
reported 185-250 MHz window: large 4-channel two-level PageRank systems
around 196-210 MHz, SCC systems around 227 MHz, small single-die
designs at the 250 MHz target.  Designs below MIN_FREQ_MHZ are the ones
the paper discards in its design-space exploration (Section V-B).
"""

from repro.fabric.area import AreaModel

TARGET_FREQ_MHZ = 250.0
MIN_FREQ_MHZ = 185.0


class FrequencyModel:
    """Deterministic clock estimate for a design point."""

    def __init__(self, area_model=None, util_knee=0.55, util_slope=95.0,
                 crossing_slope=1.5):
        self.area_model = area_model or AreaModel()
        self.util_knee = util_knee
        self.util_slope = util_slope
        self.crossing_slope = crossing_slope

    def frequency_mhz(self, design):
        """Achievable clock in MHz for *design*."""
        worst_util = self.area_model.per_slr_utilization(design)
        crossing_kbits = self.area_model.crossing_kbits(design)
        penalty = 0.0
        if worst_util > self.util_knee:
            penalty += self.util_slope * (worst_util - self.util_knee)
        penalty += self.crossing_slope * crossing_kbits
        # Weighted PEs add the free-ID queue / state-memory paths that the
        # paper reports as frequency-limiting for SSSP.
        if design.weighted:
            penalty += 4.0
        return max(80.0, TARGET_FREQ_MHZ - penalty)

    def meets_timing(self, design):
        """True if the paper's DSE would keep this design (>= 185 MHz)."""
        return self.frequency_mhz(design) >= MIN_FREQ_MHZ
