"""Round-robin arbitration of several token streams onto one."""

from repro.sim import Component


class RoundRobinArbiter(Component):
    """Merges N input channels into one output, one token per cycle.

    The grant pointer advances past the last winner, so persistent
    traffic on one input cannot starve the others -- matching the
    fair arbiters used throughout the paper's interconnect (Fig. 7).
    """

    def __init__(self, inputs, output, name="arbiter"):
        if not inputs:
            raise ValueError("arbiter needs at least one input")
        self.inputs = list(inputs)
        self.output = output
        self.name = name
        self._next = 0
        self.grants = [0] * len(self.inputs)

    def tick(self, engine):
        # Hot path: direct _ready checks avoid per-input method calls.
        inputs = self.inputs
        n = len(inputs)
        for offset in range(n):
            index = (self._next + offset) % n
            if inputs[index]._ready:
                if not self.output.can_push():
                    return
                self.output.push(inputs[index].pop())
                self.grants[index] += 1
                self._next = (index + 1) % n
                return
