"""Round-robin arbitration of several token streams onto one."""

from repro.sim import Component


class RoundRobinArbiter(Component):
    """Merges N input channels into one output, one token per cycle.

    The grant pointer advances past the last winner, so persistent
    traffic on one input cannot starve the others -- matching the
    fair arbiters used throughout the paper's interconnect (Fig. 7).
    """

    demand_driven = True

    def __init__(self, inputs, output, name="arbiter"):
        if not inputs:
            raise ValueError("arbiter needs at least one input")
        self.inputs = list(inputs)
        self.output = output
        self.name = name
        self._next = 0
        self.grants = [0] * len(self.inputs)
        # Wake on new input tokens or freed output space.  A granted
        # transfer dirties both channels, so their commits re-arm the
        # next tick while traffic keeps flowing.
        for channel in self.inputs:
            channel.subscribe_data(self)
        output.subscribe_space(self)

    def tick(self, engine):
        # Hot path: direct _ready checks and inline capacity arithmetic
        # avoid per-input method calls.
        inputs = self.inputs
        output = self.output
        n = len(inputs)
        index = self._next
        for _ in range(n):
            if index >= n:
                index -= n
            channel = inputs[index]
            if channel._ready:
                if output._occupancy_at_cycle_start \
                        + len(output._staged) >= output.capacity:
                    return
                output.push(channel.pop())
                self.grants[index] += 1
                index += 1
                self._next = index if index < n else 0
                return
            index += 1
