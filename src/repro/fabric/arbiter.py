"""Round-robin arbitration of several token streams onto one."""

from repro.sim import Component


class RoundRobinArbiter(Component):
    """Merges N input channels into one output, one token per cycle.

    The grant pointer advances past the last winner, so persistent
    traffic on one input cannot starve the others -- matching the
    fair arbiters used throughout the paper's interconnect (Fig. 7).
    """

    demand_driven = True

    def __init__(self, inputs, output, name="arbiter"):
        if not inputs:
            raise ValueError("arbiter needs at least one input")
        self.inputs = list(inputs)
        self.output = output
        self.name = name
        self._next = 0
        self.grants = [0] * len(self.inputs)
        # Wake on new input tokens.  Output space is handled by a
        # one-shot wake armed only when a grant actually blocked on a
        # full output, so commits of a draining output stop waking an
        # arbiter with nothing to send.
        for channel in self.inputs:
            channel.subscribe_data(self)

    def tick(self, engine):
        # Hot path: direct occupancy-int checks and inline capacity
        # arithmetic avoid per-input method calls.
        inputs = self.inputs
        output = self.output
        n = len(inputs)
        index = self._next
        for _ in range(n):
            if index >= n:
                index -= n
            channel = inputs[index]
            if channel._visible:
                if output._occ + output._staged_n >= output.capacity:
                    output.request_space_wake(self)
                    return
                output.push(channel.pop())
                self.grants[index] += 1
                index += 1
                self._next = index if index < n else 0
                # The popped input re-arms itself through its commit
                # only while it still holds tokens; other inputs were
                # not touched this cycle and commit nothing, so their
                # waiting tokens need an explicit next-cycle wake.
                for channel in inputs:
                    if channel._visible:
                        engine.wake(self)
                        return
                return
            index += 1
