"""SLR floorplan of the target FPGA (paper Section V-A).

The AWS f1 Virtex UltraScale+ part spans three dies (SLRs).  The shell
occupies 25-35 % of the bottom and central SLRs; the central SLR hosts
two DDR4 controllers and the outer SLRs one each.  PEs are spread
30/15/55 % across bottom/central/top, the shared MOMS crossbar sits on
the central SLR, and each MOMS bank is placed on the die of its DRAM
channel so bank-to-controller links never cross dies.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Floorplan:
    """Static die assignment used to derive crossing counts and latency."""

    n_dies: int = 3
    channel_die: tuple = (0, 1, 1, 2)
    pe_fraction: tuple = (0.30, 0.15, 0.55)
    shell_reserved: tuple = (0.30, 0.30, 0.0)
    crossbar_die: int = 1

    def __post_init__(self):
        if len(self.pe_fraction) != self.n_dies:
            raise ValueError("pe_fraction must have one entry per die")
        if len(self.shell_reserved) != self.n_dies:
            raise ValueError("shell_reserved must have one entry per die")
        if abs(sum(self.pe_fraction) - 1.0) > 1e-9:
            raise ValueError("pe_fraction must sum to 1")
        if any(die >= self.n_dies for die in self.channel_die):
            raise ValueError("channel assigned to a nonexistent die")

    def die_of_channel(self, channel):
        """Die hosting DRAM channel *channel*."""
        return self.channel_die[channel]

    def die_of_bank(self, bank, n_banks, n_channels):
        """Die of a shared MOMS bank (same die as its DRAM channel).

        Banks are statically bound to channels round-robin, so bank b of
        B banks over C channels serves channel b*C//B.
        """
        channel = bank * n_channels // n_banks
        return self.die_of_channel(channel)

    def assign_pes(self, n_pes):
        """Distribute *n_pes* across dies by pe_fraction (largest remainder).

        Returns a list: die index per PE, PEs on the same die contiguous.
        """
        if n_pes < 1:
            raise ValueError("need at least one PE")
        exact = [f * n_pes for f in self.pe_fraction]
        counts = [int(x) for x in exact]
        remainders = sorted(
            range(self.n_dies), key=lambda d: exact[d] - counts[d],
            reverse=True,
        )
        for die in remainders:
            if sum(counts) == n_pes:
                break
            counts[die] += 1
        assignment = []
        for die, count in enumerate(counts):
            assignment.extend([die] * count)
        return assignment

    def hops(self, die_a, die_b):
        """SLR boundaries crossed between two dies (dies form a stack)."""
        return abs(die_a - die_b)


AWS_F1_FLOORPLAN = Floorplan()
