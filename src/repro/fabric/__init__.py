"""Multi-die FPGA fabric model.

Models the aspects of a 3-SLR Virtex UltraScale+ part that shape the
paper's results: registered die crossings (Fig. 5), per-die two-stage
interconnects (Fig. 7), an SLR floorplan that pins DRAM controllers and
distributes PEs (Section V-A), and analytical frequency and area models
standing in for Vivado's place-and-route reports (Figs. 11 and 17).
"""

from repro.fabric.arbiter import RoundRobinArbiter
from repro.fabric.crossbar import Crossbar
from repro.fabric.crossing import CROSSING_LATENCY, DieCrossing
from repro.fabric.floorplan import AWS_F1_FLOORPLAN, Floorplan
from repro.fabric.frequency import FrequencyModel
from repro.fabric.area import AreaModel, ResourceVector, VU9P_CAPACITY

__all__ = [
    "AWS_F1_FLOORPLAN",
    "AreaModel",
    "CROSSING_LATENCY",
    "Crossbar",
    "DieCrossing",
    "Floorplan",
    "FrequencyModel",
    "ResourceVector",
    "RoundRobinArbiter",
    "VU9P_CAPACITY",
]
