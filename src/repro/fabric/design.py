"""Structural description of one accelerator design point.

This is the vocabulary shared by the area model, the frequency model,
and the accelerator configuration: how many PEs and MOMS banks, which
MOMS organization (shared / private / two-level / traditional cache),
sizes of the MSHR, subentry and cache structures, and the algorithm
(which fixes node width and gather pipeline depth).
"""

from dataclasses import dataclass, replace


MOMS_SHARED = "shared"
MOMS_PRIVATE = "private"
MOMS_TWO_LEVEL = "two-level"
MOMS_TRADITIONAL = "traditional"

ORGANIZATIONS = (MOMS_SHARED, MOMS_PRIVATE, MOMS_TWO_LEVEL, MOMS_TRADITIONAL)


@dataclass(frozen=True)
class DesignDescription:
    """Everything the fabric models need to know about a design."""

    n_pes: int
    n_banks: int
    organization: str
    algorithm: str = "pagerank"
    n_channels: int = 4
    weighted: bool = False
    # Shared-level structures, per bank.
    shared_mshrs: int = 4096
    shared_subentries: int = 32768
    shared_cache_kib: int = 256
    # Cuckoo insertion kick bound for every MOMS MSHR file (both
    # levels).  Deeper chains trade insert latency for occupancy at
    # full load -- the deep-queue benchmark raises this to 32.
    mshr_max_kicks: int = 16
    # Private-level structures, per PE (two-level / private organizations).
    private_mshrs: int = 4096
    private_subentries: int = 49152
    private_cache_kib: int = 0
    # PE parameters.
    nodes_per_interval: int = 32768
    node_bits: int = 32
    # Traditional-cache parameters (Fig. 11 baseline).
    traditional_mshrs: int = 16
    traditional_subentries_per_mshr: int = 8

    def __post_init__(self):
        if self.organization not in ORGANIZATIONS:
            raise ValueError(f"unknown organization {self.organization!r}")
        if self.n_pes < 1 or self.n_channels < 1:
            raise ValueError("need at least one PE and one channel")
        if self.has_shared_level and self.n_banks < 1:
            raise ValueError("shared organizations need at least one bank")

    @property
    def has_shared_level(self):
        return self.organization in (MOMS_SHARED, MOMS_TWO_LEVEL,
                                     MOMS_TRADITIONAL)

    @property
    def has_private_level(self):
        return self.organization in (MOMS_PRIVATE, MOMS_TWO_LEVEL,
                                     MOMS_TRADITIONAL)

    @property
    def label(self):
        """Paper-style label, e.g. '16/16 64k two-level'."""
        parts = [f"{self.n_pes}"]
        if self.has_shared_level:
            parts[0] += f"/{self.n_banks}"
        if self.has_private_level and self.private_cache_kib:
            parts.append(f"{self.private_cache_kib}k")
        parts.append(self.organization)
        return " ".join(parts)

    def with_(self, **kwargs):
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)
