"""Inter-die crossing logic (paper Fig. 5).

Signals crossing SLR boundaries are registered on both ends with no
combinational logic in between; a handshake crossing therefore adds two
cycles of latency in each direction, and because the ready signal takes
two cycles to propagate back, the receiving queue needs at least four
slots to absorb the tokens already in the crossing registers.
"""

from repro.sim import Channel, Component, DelayLine

CROSSING_LATENCY = 2
MIN_CROSSING_QUEUE = 4


class DieCrossing(Component):
    """A one-directional registered crossing between two dies.

    Tokens are popped from ``inp``, spend ``CROSSING_LATENCY * hops``
    cycles in register stages, and are delivered into ``out``.  Credit
    accounting guarantees the in-flight tokens always fit in ``out``,
    mirroring the 4-slot skid buffer of Fig. 5 -- the crossing never
    drops or stalls mid-flight.
    """

    demand_driven = True

    def __init__(self, engine, inp, out, hops=1, name="crossing"):
        if hops < 1:
            raise ValueError("a die crossing spans at least one boundary")
        if out.capacity < MIN_CROSSING_QUEUE:
            raise ValueError(
                "receiving queue needs >= 4 slots to absorb in-flight tokens"
            )
        self.inp = inp
        self.out = out
        self.hops = hops
        self.name = name
        self._line = engine.add_delay_line(
            DelayLine(CROSSING_LATENCY * hops, name=f"{name}.regs")
        )
        self.total_crossed = 0
        engine.add_component(self)
        # Wake on new tokens to cross and on register stages maturing.
        # A full receive queue (which also exhausts credits) arms a
        # one-shot space wake only when this crossing actually blocked
        # on it, so draining queues stop waking idle crossings.
        inp.subscribe_data(self)
        self._line.subscribe_data(self)

    def _credits_available(self):
        # Tokens in the registers plus tokens already waiting in the
        # output queue must never exceed the queue capacity.
        return len(self._line) + self.out.pending < self.out.capacity

    def tick(self, engine):
        # Hot path: runs every cycle for every crossing; reach into the
        # primitives directly to avoid method-call overhead.
        line = self._line
        flight = line._in_flight
        out = self.out
        if flight and flight[0][0] <= engine.now:
            if out._occ + out._staged_n < out.capacity:
                out.push(flight.popleft()[1])
                self.total_crossed += 1
                if flight and flight[0][0] <= engine.now:
                    # The next register token already matured (its wake
                    # timer fired while the queue was full); deliver it
                    # next cycle instead of waiting for new traffic.
                    engine.wake(self)
            else:
                out.request_space_wake(self)
        if self.inp._visible:
            if len(flight) + out._visible + out._staged_n < out.capacity:
                line.push(self.inp.pop())
            else:
                # Credits exhausted: they free when the receive queue
                # drains (space commit) or when a register delivers
                # (this component's own maturity timer, already set).
                out.request_space_wake(self)

    def is_idle(self):
        return len(self._line) == 0

    def next_event_time(self):
        """Cycle at which the head register token matures, or None."""
        return self._line.next_event_time()


def cross_link(engine, capacity, hops, name="link"):
    """Build (input_channel, output_channel) joined by a die crossing.

    When ``hops`` is zero the two names refer to one plain channel
    (same-die connection, no extra latency).
    """
    if hops == 0:
        channel = engine.add_channel(Channel(max(capacity, 1), name=name))
        return channel, channel
    inp = engine.add_channel(Channel(max(capacity, 1), name=f"{name}.in"))
    out = engine.add_channel(
        Channel(max(capacity, MIN_CROSSING_QUEUE), name=f"{name}.out")
    )
    DieCrossing(engine, inp, out, hops=hops, name=name)
    return inp, out
