"""Plain-text table rendering for experiment results.

Every experiment returns a list of row dicts; this module renders them
the way the paper's tables/figures would read in a terminal, and the
benchmark harness prints them under pytest-benchmark.
"""


def format_table(rows, columns=None, title=None, floatfmt="{:.3f}"):
    """Render a list of dicts as an aligned text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def cell(value):
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def engine_summary_line(activity=None, jobs=None):
    """One-line scheduler-efficiency summary for experiment logs.

    With no arguments, reports the process-wide sweep tally (every
    point run through ``repro.experiments.common.run_sweep``, local or
    in worker processes) and the active ``REPRO_JOBS`` worker count.
    ``activity`` may be an :class:`repro.core.stats.EngineActivity` or
    its ``as_dict()`` form.
    """
    from repro.core.stats import EngineActivity

    if activity is None:
        from repro.experiments.common import default_jobs, sweep_activity

        activity = sweep_activity()
        if jobs is None:
            jobs = default_jobs()
    if isinstance(activity, dict):
        activity = EngineActivity.from_dict(activity)
    return activity.summary_line(jobs=jobs)


def component_breakdown_table(by_kind=None, limit=6, title=None):
    """Per-component-class tick/wake table ("who is ticking").

    With no argument, renders the process-wide sweep tally's breakdown
    (merged across points and worker processes).  Returns "" when no
    breakdown is available -- e.g. a journal row written by an older
    schema -- so callers can print unconditionally.
    """
    from repro.core.stats import breakdown_rows

    if by_kind is None:
        from repro.experiments.common import sweep_activity

        by_kind = sweep_activity().by_kind
    if not by_kind:
        return ""
    rows = breakdown_rows(by_kind, limit=limit)
    return format_table(
        rows,
        columns=["component", "count", "ticks", "wakes"],
        title=title or "component ticks (busiest classes)",
    )


def telemetry_summary_line(summary):
    """One-line digest of a run's telemetry summary dict."""
    if not summary:
        return ""
    dram = summary.get("dram", {})
    latency = summary.get("dram_latency", {})
    cache = summary.get("cache", {})
    return (
        f"telemetry: mshr peak {summary.get('mshr_peak', 0)} "
        f"(mean {summary.get('mshr_mean', 0.0)}), "
        f"mshr merge rate {cache.get('merge_rate', 0.0):.1%}, "
        f"dram p50/p99 latency "
        f"{latency.get('p50', 0)}/{latency.get('p99', 0)} cycles, "
        f"single-line fraction "
        f"{dram.get('single_line_fraction', 0.0):.2f}, "
        f"effective bw ratio {dram.get('effective_bw_ratio', 1.0):.2f}, "
        f"{summary.get('samples', 0)} samples"
    )


def geomean(values):
    """Geometric mean, ignoring non-positive entries."""
    import math

    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
