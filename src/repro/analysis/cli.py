"""The ``python -m repro lint`` subcommand.

Runs the simlint rule catalog (DESIGN.md 6.5) over the source tree::

    python -m repro lint                          # text report, src tree
    python -m repro lint --rules R2,R4            # subset of the catalog
    python -m repro lint --format sarif > out.sarif
    python -m repro lint --fail-on warning        # stricter gate
    python -m repro lint --quick                  # self-check + hot tree
    python -m repro lint --changed                # git-diff scope
    python -m repro lint --cache-dir .simlint     # parsed-source cache
    python -m repro lint --write-baseline simlint_baseline.json
    python -m repro lint --baseline simlint_baseline.json

The report goes to stdout (redirect for artifacts); the one-line
summary and any internal errors go to stderr, so ``--format sarif``
output stays a valid SARIF document.  Exit codes: 0 clean (or nothing
at/above ``--fail-on``), 1 findings at/above the threshold, 2 tool
errors (unknown rule, unparseable file, failed self-check).
"""

import sys
import time

from repro.analysis.findings import severity_rank


def add_lint_arguments(parser):
    """Attach the lint-specific flags to the __main__ parser."""
    parser.add_argument(
        "--rules", default=None, metavar="SPEC",
        help="comma-separated rule ids/names to run (default: all; "
             "e.g. R2,R4 or single-token-channel)",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "json", "sarif"),
        dest="lint_format",
        help="report format on stdout (default text)",
    )
    parser.add_argument(
        "--fail-on", default="error",
        choices=("error", "warning", "never"),
        help="lowest severity that makes the exit code non-zero "
             "(default error)",
    )
    parser.add_argument(
        "--paths", nargs="*", default=None, metavar="PATH",
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="accepted-findings JSON; matching findings are reported "
             "but never fatal (tolerant parsing)",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="record the current findings as the accepted baseline "
             "and exit 0",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="self-check every rule against its built-in fixtures, "
             "then lint only the hot simulator packages",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="report only findings in git-changed files plus their "
             "call-graph dependents (whole tree is still parsed, so "
             "whole-program rules stay sound)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="directory for the parsed-source cache, keyed on a tree "
             "fingerprint (default: no cache)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include inline-suppressed and baselined findings in the "
             "report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _hot_package_paths():
    """The sim-core package directories (the --quick lint surface)."""
    import pathlib

    from repro.analysis.hotpath import HOT_PACKAGES

    package_root = pathlib.Path(__file__).resolve().parents[1]
    paths = []
    for marker in HOT_PACKAGES:
        candidate = package_root / marker.split("/", 1)[1].rstrip("/")
        if candidate.is_dir():
            paths.append(candidate)
    return paths


def run_lint(args, log=print):
    """Execute the lint subcommand; returns an exit code."""
    from repro.analysis import baseline as baseline_module
    from repro.analysis import engine as engine_module
    from repro.analysis.emitters import EMITTERS
    from repro.analysis.rules import ALL_RULES, select_rules

    if args.list_rules:
        for rule in ALL_RULES:
            log(f"{rule.id}  {rule.name:26s} {rule.severity:7s} "
                f"{rule.summary}")
        return 0

    try:
        rules = select_rules(args.rules)
    except ValueError as error:
        log(f"simlint: {error}", file=sys.stderr)
        return 2

    started = time.monotonic()
    if args.quick:
        problems = engine_module.selfcheck(rules)
        if problems:
            for problem in problems:
                log(f"simlint: self-check FAILED: {problem}",
                    file=sys.stderr)
            return 2
        log(f"simlint: self-check OK ({len(rules)} rule(s))",
            file=sys.stderr)

    paths = args.paths
    if not paths:
        paths = _hot_package_paths() if args.quick \
            else engine_module.default_paths()
    result = engine_module.lint_paths(
        paths, rules=rules,
        changed_only=args.changed,
        cache_dir=args.cache_dir,
    )

    if args.baseline:
        baseline_module.apply_baseline(result, args.baseline)

    if args.write_baseline:
        count = baseline_module.write_baseline(args.write_baseline, result)
        log(f"simlint: wrote baseline with {count} accepted finding(s) "
            f"to {args.write_baseline}", file=sys.stderr)
        return 0

    emitter = EMITTERS[args.lint_format]
    # SARIF consumers understand the suppressions property, so that
    # format carries suppressed findings unconditionally.
    show = args.show_suppressed or args.lint_format == "sarif"
    sys.stdout.write(emitter(result, show_suppressed=show))

    elapsed = time.monotonic() - started
    counts = result.counts()
    log(
        f"simlint: {result.files_scanned} file(s), "
        f"{len(result.findings)} finding(s) "
        f"({counts.get('error', 0)} error / "
        f"{counts.get('warning', 0)} warning), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined "
        f"in {elapsed:.2f}s",
        file=sys.stderr,
    )
    for note in result.notes:
        log(f"simlint: note: {note}", file=sys.stderr)
    for error in result.errors:
        log(f"simlint: error: {error}", file=sys.stderr)
    if result.errors:
        return 2
    if args.fail_on == "never":
        return 0
    worst = result.worst_rank()
    if worst is not None and worst <= severity_rank(args.fail_on):
        return 1
    return 0
