"""Call-graph hot-path classifier seeded from the engine's step loop.

The engine's per-cycle work is ``Engine._step``: tick every runnable
component (``component.tick(self)``), then commit dirty channels.  Any
function reachable from ``_step`` or ``wake`` therefore runs O(cycles)
times and must obey the hot-path contracts (bulk channel APIs, pooled
tokens, no wall-clock, is-None-gated hooks).

Python's dynamic dispatch makes an exact call graph impossible from
the AST alone, so the classifier over-approximates deliberately:

* attribute calls resolve *by method name* -- ``component.tick(self)``
  marks every ``tick`` method hot, which is precisely the dynamic
  dispatch the engine performs;
* resolution is restricted to the simulator-core packages
  (:data:`HOT_PACKAGES`); experiments, graph preprocessing, baselines
  and reporting can never be classified hot, because they run O(1)
  times per sweep point no matter who names a colliding method.

Over-approximation errs toward *more* rule coverage; a cold function
misclassified hot costs at worst one justified suppression.
"""

import ast
from collections import deque

# Entry points of the per-cycle loop, looked up in the engine module.
SEED_METHODS = ("_step", "wake", "wake_at")
SEED_MODULE_SUFFIX = "sim/engine.py"

# Only definitions in these packages participate in (and can be
# reached by) hot-path resolution.
HOT_PACKAGES = (
    "repro/sim/",
    "repro/core/",
    "repro/mem/",
    "repro/accel/",
    "repro/fabric/",
)


def _in_hot_package(rel):
    return any(marker in rel for marker in HOT_PACKAGES)


def _called_names(func_node):
    """Bare names this function may call (Name and Attribute targets)."""
    names = set()
    for node in ast.walk(func_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif isinstance(func, ast.Attribute):
            names.add(func.attr)
    return names


class HotPathIndex:
    """Reachability over the name-resolved call graph.

    ``force_hot=True`` builds a degenerate index that classifies every
    function hot -- used by fixture tests and rule self-checks, whose
    snippets have no engine to be reachable from.
    """

    def __init__(self, sources, force_hot=False):
        self.force_hot = force_hot
        self._hot_ids = set()  # id(FunctionDef node) for hot defs
        self._hot_names = {}  # source.rel -> sorted list of hot qualnames
        if not force_hot:
            self._build(sources)

    def _build(self, sources):
        by_name = {}  # bare name -> [(rel, FunctionInfo)]
        seeds = []
        for source in sources:
            if not _in_hot_package(source.rel):
                continue
            for info in source.functions:
                by_name.setdefault(info.name, []).append((source.rel, info))
                if (info.name in SEED_METHODS
                        and source.rel.endswith(SEED_MODULE_SUFFIX)):
                    seeds.append((source.rel, info))

        queue = deque(seeds)
        hot_keys = set()
        while queue:
            rel, info = queue.popleft()
            key = (rel, info.qualname)
            if key in hot_keys:
                continue
            hot_keys.add(key)
            self._hot_ids.add(id(info.node))
            self._hot_names.setdefault(rel, []).append(info.qualname)
            for called in _called_names(info.node):
                for target in by_name.get(called, ()):
                    if (target[0], target[1].qualname) not in hot_keys:
                        queue.append(target)
        for rel in self._hot_names:
            self._hot_names[rel].sort()

    # -- queries ------------------------------------------------------------

    def is_hot(self, func_node):
        return self.force_hot or id(func_node) in self._hot_ids

    def hot_functions(self, source):
        """FunctionInfo entries of *source* classified hot, in file order."""
        return [info for info in source.functions
                if self.force_hot or id(info.node) in self._hot_ids]

    def hot_qualnames(self, rel):
        """Sorted hot function qualnames for a file (diagnostics)."""
        return tuple(self._hot_names.get(rel, ()))

    def hot_files(self):
        """Sorted rel paths containing at least one hot function."""
        return tuple(sorted(self._hot_names))
