"""simlint: AST-based static analysis for the simulator's contracts.

The reproduction's central claim -- bit-identical cycle counts across
engines, pooling, telemetry, and fault replays -- rests on coding
contracts (no wall-clock in tick paths, bulk channel APIs, freelist
pooling, is-None-gated hooks, versioned row schemas) that this package
enforces statically.  See DESIGN.md 6.5 for the catalog and policy,
and ``python -m repro lint --list-rules`` for the live inventory.

Public surface:

* :func:`repro.analysis.engine.lint_paths` / ``lint_text`` /
  ``selfcheck`` -- the library API;
* :mod:`repro.analysis.rules` -- the catalog (``ALL_RULES``,
  ``select_rules``);
* :mod:`repro.analysis.emitters` -- text/JSON/SARIF serializers;
* :mod:`repro.analysis.baseline` -- accepted-findings flow;
* :mod:`repro.analysis.cli` -- the ``python -m repro lint`` command.
"""

from repro.analysis.engine import (
    LINT_SCHEMA,
    lint_paths,
    lint_text,
    selfcheck,
)
from repro.analysis.findings import Finding, LintResult
from repro.analysis.hotpath import HotPathIndex
from repro.analysis.rules import ALL_RULES, select_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "HotPathIndex",
    "LINT_SCHEMA",
    "LintResult",
    "lint_paths",
    "lint_text",
    "select_rules",
    "selfcheck",
]
