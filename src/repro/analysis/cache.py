"""Disk cache for the parsed-source + call-graph index.

Parsing ~150 files and resolving the tree-wide call graph dominates a
full lint run; CI runs it on every push.  The cache pickles the parsed
:class:`~repro.analysis.source.SourceFile` list and the
:class:`~repro.analysis.callgraph.CallGraph` built over it, keyed by a
fingerprint of (tree contents, analyzer version): any edit to a linted
file *or* to the analysis package itself changes the key, so a stale
index can never serve a new tree or a new rule implementation.

Tolerant in the baseline/journal tradition: a missing, corrupt, or
version-skewed cache entry is a miss, never an error -- the linter
guarding the tree must not fall over on its own artifacts.  Cached and
uncached runs are byte-identical by construction (the pickle round
trip preserves the exact objects a fresh parse would build; the
determinism test compares both paths).
"""

import hashlib
import pathlib
import pickle

# Bump to invalidate every existing cache entry (index layout change).
CACHE_SCHEMA = 1


def _iter_tree_files(paths):
    files = []
    for path in paths:
        path = pathlib.Path(path).resolve()
        if path.is_dir():
            files.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(files))


def tree_fingerprint(paths, root):
    """Content hash of the linted tree plus the analyzer itself."""
    digest = hashlib.sha256()
    digest.update(f"schema={CACHE_SCHEMA}\n".encode())
    analysis_dir = pathlib.Path(__file__).resolve().parent
    for group in (_iter_tree_files(paths),
                  sorted(analysis_dir.rglob("*.py"))):
        for path in group:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                content = path.read_bytes()
            except OSError:
                content = b"<unreadable>"
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(hashlib.sha256(content).digest())
            digest.update(b"\n")
    return digest.hexdigest()


def _entry_path(cache_dir, fingerprint):
    return pathlib.Path(cache_dir) / f"simlint-index-{fingerprint}.pkl"


def load_index(cache_dir, fingerprint):
    """(sources, errors, callgraph) for *fingerprint*, or None on miss."""
    path = _entry_path(cache_dir, fingerprint)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("schema") != CACHE_SCHEMA:
        return None
    try:
        return (payload["sources"], payload["errors"],
                payload["callgraph"])
    except KeyError:
        return None


def save_index(cache_dir, fingerprint, sources, errors, callgraph):
    """Persist the index; failures are silent (cache is best-effort)."""
    cache_dir = pathlib.Path(cache_dir)
    path = _entry_path(cache_dir, fingerprint)
    payload = {
        "schema": CACHE_SCHEMA,
        "sources": sources,
        "errors": errors,
        "callgraph": callgraph,
    }
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a killed run never leaves a torn entry.
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        return True
    except OSError:
        return False
