"""Parsed source files: one AST parse shared by every rule.

``SourceFile`` owns everything the rules need that is derivable from a
single file in isolation -- the AST, a parent map, the function table
(with class-qualified names), the import alias map, and the inline
suppression table.  All of it is computed once per file per lint run;
rules only read.
"""

import ast
import re


# ``# simlint: disable=R1,R4 -- justification`` -- trailing on the
# offending line, or standalone on the line directly above it.  The
# justification after ``--`` is required by policy (DESIGN.md 6.5) but
# not enforced mechanically; review enforces it.
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\-]+)")


class FunctionInfo:
    """One function or method definition inside a SourceFile."""

    __slots__ = ("name", "qualname", "node", "class_name")

    def __init__(self, name, qualname, node, class_name):
        self.name = name
        self.qualname = qualname
        self.node = node
        self.class_name = class_name


class SourceFile:
    """A parsed file plus the per-file indexes the rules share."""

    __slots__ = (
        "path", "rel", "text", "lines", "tree", "functions", "classes",
        "imports", "_parents", "_suppressions", "_func_assignments",
    )

    def __init__(self, path, text, rel=None):
        self.path = path
        self.rel = (rel if rel is not None else str(path)).replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.rel)
        self.functions = []
        self.classes = []
        self.imports = {}  # local alias -> dotted module or module.attr
        self._parents = None
        self._suppressions = None
        self._func_assignments = {}
        self._index_defs()
        self._index_imports()

    # -- pickling (the lint-index disk cache) --------------------------------

    def __getstate__(self):
        """Drop the id()-keyed lazy caches; they are meaningless after a
        pickle round trip (node identities change) and rebuild on demand."""
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_parents"] = None
        state["_func_assignments"] = {}
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    # -- construction-time indexes ------------------------------------------

    def _index_defs(self):
        def visit(node, stack):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    class_name = stack[-1] if stack else None
                    qual = ".".join(stack + [child.name])
                    self.functions.append(
                        FunctionInfo(child.name, qual, child, class_name)
                    )
                    visit(child, stack + [child.name])
                elif isinstance(child, ast.ClassDef):
                    self.classes.append((".".join(stack + [child.name]),
                                         child))
                    visit(child, stack + [child.name])
                else:
                    visit(child, stack)

        visit(self.tree, [])

    def _index_imports(self):
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    # -- parents ------------------------------------------------------------

    def parents(self):
        """Map id(node) -> parent node, built lazily once."""
        if self._parents is None:
            parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node):
        """Yield (ancestor, child-on-the-path) pairs, innermost first."""
        parents = self.parents()
        child = node
        parent = parents.get(id(child))
        while parent is not None:
            yield parent, child
            child = parent
            parent = parents.get(id(child))

    def enclosing_function(self, node):
        """Innermost FunctionDef containing *node* (or None)."""
        for ancestor, _ in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- suppressions -------------------------------------------------------

    def suppressions(self):
        """Map 1-based line -> set of suppressed rule ids/names.

        A trailing comment suppresses its own line; a directive inside
        a standalone comment block suppresses the first code line after
        the block (so multi-line justifications work).
        """
        if self._suppressions is None:
            table = {}
            total = len(self.lines)
            for index, line in enumerate(self.lines, start=1):
                match = _SUPPRESS_RE.search(line)
                if not match:
                    continue
                names = {
                    part.strip() for part in match.group(1).split(",")
                    if part.strip()
                }
                table.setdefault(index, set()).update(names)
                if line.lstrip().startswith("#"):
                    target = index + 1
                    while target <= total and (
                        not self.lines[target - 1].strip()
                        or self.lines[target - 1].lstrip().startswith("#")
                    ):
                        target += 1
                    table.setdefault(target, set()).update(names)
            self._suppressions = table
        return self._suppressions

    def suppressed_rules_at(self, line):
        return self.suppressions().get(line, frozenset())

    # -- local symbol resolution --------------------------------------------

    def local_assignments(self, func_node):
        """Name -> list of value expressions assigned in *func_node*.

        Shallow, flow-insensitive: enough to resolve the simulator's
        hook-alias idiom (``tele = self._tele``) and set-typed locals.
        Computed once per function and cached.
        """
        cached = self._func_assignments.get(id(func_node))
        if cached is not None:
            return cached
        table = {}
        for node in ast.walk(func_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    table.setdefault(node.target.id, []).append(node.value)
        self._func_assignments[id(func_node)] = table
        return table

    def resolve_call_module(self, func):
        """Dotted origin of a call target, via the import table.

        ``time.monotonic()`` -> ``time.monotonic`` when ``import time``
        is in scope; ``shuffle()`` -> ``random.shuffle`` after ``from
        random import shuffle``; ``datetime.datetime.now()`` flattens
        the whole attribute chain.  Returns None for anything that does
        not resolve to an imported module/function.
        """
        parts = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.reverse()
        return ".".join([base] + parts)


def parse_source(path, text, rel=None):
    """Parse *text*; returns (SourceFile, None) or (None, error-string)."""
    try:
        return SourceFile(path, text, rel=rel), None
    except SyntaxError as error:
        return None, f"{rel or path}: {error.msg} (line {error.lineno})"
