"""Accepted-findings baselines: fail only on *new* violations.

``python -m repro lint --write-baseline simlint_baseline.json`` records
the current findings; later runs with ``--baseline`` demote any finding
whose (rule, path, message) matches a recorded entry to "baselined"
(reported, never fatal).  Keys are line-free so unrelated edits that
shift a tolerated finding around a file do not resurrect it.

Parsing is tolerant in the journal-schema tradition (DESIGN.md 6.3):
a missing file is an empty baseline, a corrupt file or a newer schema
degrades to "nothing accepted" plus a note in ``result.notes`` --
never a crash, because the linter guarding the tree must not itself
fall over on a stale artifact.
"""

import json

from repro.analysis import engine as _engine


def write_baseline(path, result):
    """Record the active findings of *result* as accepted."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
            # Informational only -- matching ignores it (line drift).
            "line": finding.line,
        }
        for finding in result.findings
    ]
    entries.sort(key=lambda entry: (entry["path"], entry["rule"],
                                    entry["message"]))
    payload = {"schema": _engine.LINT_SCHEMA, "accepted": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path):
    """Set of accepted (rule, path, message) keys, plus warnings.

    Returns ``(keys, warnings)``; every failure mode degrades to fewer
    accepted keys, never an exception.
    """
    warnings = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        payload = json.loads(text)
    except FileNotFoundError:
        return frozenset(), warnings
    except (OSError, ValueError) as error:
        warnings.append(f"baseline {path}: unreadable ({error}); "
                        f"treating as empty")
        return frozenset(), warnings
    if not isinstance(payload, dict):
        warnings.append(f"baseline {path}: not an object; treating as empty")
        return frozenset(), warnings
    schema = payload.get("schema", 1)
    if isinstance(schema, int) and schema > _engine.LINT_SCHEMA:
        warnings.append(
            f"baseline {path}: schema {schema} is newer than this tool "
            f"({_engine.LINT_SCHEMA}); treating as empty"
        )
        return frozenset(), warnings
    keys = set()
    accepted = payload.get("accepted", [])
    if not isinstance(accepted, list):
        warnings.append(f"baseline {path}: 'accepted' is not a list; "
                        f"treating as empty")
        return frozenset(), warnings
    for entry in accepted:
        if not isinstance(entry, dict):
            continue  # tolerate junk entries
        rule = entry.get("rule")
        rel = entry.get("path")
        message = entry.get("message")
        if isinstance(rule, str) and isinstance(rel, str) \
                and isinstance(message, str):
            if not _known_rule(rule):
                warnings.append(
                    f"baseline {path}:{_entry_line(text, rule)}: "
                    f"unknown rule {rule!r} (retired or renamed?); "
                    f"entry kept but can never match"
                )
            keys.add((rule, rel, message))
    return frozenset(keys), warnings


def _known_rule(rule_id):
    """Whether *rule_id* is in the active catalog."""
    from repro.analysis.rules import RULES_BY_KEY

    return rule_id.lower() in RULES_BY_KEY


def _entry_line(text, rule_id):
    """First line of *text* mentioning *rule_id* as a rule value.

    Best-effort (json.load drops positions): scans the raw text for
    the entry's ``"rule": "Rxx"`` spelling.  Falls back to 1.
    """
    needle = f'"rule": "{rule_id}"'
    loose = f'"{rule_id}"'
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line or (loose in line and '"rule"' in line):
            return lineno
    return 1


def apply_baseline(result, path):
    """Demote baselined findings in-place; returns *result*.

    Baseline problems are *notes*, not errors: a stale or corrupt
    baseline degrades to "nothing accepted" (every finding stays
    active) instead of failing the tool itself.
    """
    keys, warnings = load_baseline(path)
    result.notes.extend(warnings)
    if not keys:
        return result
    kept = []
    for finding in result.findings:
        if finding.baseline_key() in keys:
            finding.baselined = True
            result.baselined.append(finding)
        else:
            kept.append(finding)
    result.findings = kept
    result.baselined.sort(key=lambda finding: finding.sort_key())
    return result
