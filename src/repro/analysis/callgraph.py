"""Tree-wide name-resolved call graph (the whole-program index).

Generalizes the hot-path classifier's reachability sweep into a
reusable index the whole-program passes (R11-R14, DESIGN.md 6.10)
share: every function definition in the analyzable packages, resolved
call edges between them, per-class method tables, bound-method alias
tables, and class-construction summaries.

Resolution is *name-based* over :data:`CALLGRAPH_PACKAGES`, for the
same reason the hot-path classifier's is (DESIGN.md 6.5): the engine
and the component protocol dispatch dynamically (``component.tick``,
``self._decode_step``), so an exact static call graph does not exist.
The deliberate over-approximations, and the two refinements that keep
them useful:

* an attribute call ``x.meth(...)`` resolves to *every* method named
  ``meth`` -- except that ``self.meth(...)`` inside a class that
  defines ``meth`` resolves to exactly that method (the common case,
  and the one the fusion-purity traversal depends on);
* bound-method aliases (``self._decode_step = self._decode_edge_beats``
  at construction, ``decode = self._decode_step; decode()`` in the
  kernel) resolve through a per-class alias table, so indirection
  through a stored bound method does not truncate the traversal;
* a bare-name call resolves to same-file definitions first, falling
  back to every definition of that name tree-wide.

A call that resolves to nothing (stdlib, numpy, a channel primitive)
simply has no out-edge; soundness notes live with each pass that
consumes the graph.
"""

import ast
from collections import deque

# Packages whose definitions participate in whole-program resolution.
# Strictly wider than the hot-path set: the instrumentation and
# persistence layers (faults, telemetry, tracing, checkpoint) carry
# contracts of their own (R11/R12) even though they are never hot.
CALLGRAPH_PACKAGES = (
    "repro/sim/",
    "repro/core/",
    "repro/mem/",
    "repro/accel/",
    "repro/fabric/",
    "repro/faults/",
    "repro/telemetry/",
    "repro/tracing/",
    "repro/checkpoint/",
)


def in_callgraph_package(rel):
    return any(marker in rel for marker in CALLGRAPH_PACKAGES)


def _call_nodes(func_node):
    """Call expressions belonging to *func_node* itself (not nested defs)."""
    stack = [func_node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                yield child
            stack.append(child)


class CallGraph:
    """Function index + resolved call edges over the analyzable tree.

    Functions are keyed by ``(rel, qualname)``.  ``include_all=True``
    (fixture snippets, self-checks) admits every parsed file instead of
    only :data:`CALLGRAPH_PACKAGES`.
    """

    def __init__(self, sources, include_all=False):
        self.include_all = include_all
        self.functions = {}   # (rel, qualname) -> FunctionInfo
        self.sources = {}     # rel -> SourceFile (in-scope files only)
        self.by_name = {}     # bare name -> sorted list of keys
        self.class_defs = {}  # class name -> sorted list of (rel, qualname)
        self.methods = {}     # (rel, class qualname) -> {name: key}
        self.bound_aliases = {}  # class name -> {attr: set of method names}
        self._callee_cache = {}
        self._file_rdeps = None
        self._build(sources)

    # -- construction -------------------------------------------------------

    def _in_scope(self, rel):
        return self.include_all or in_callgraph_package(rel)

    def _build(self, sources):
        for source in sources:
            if not self._in_scope(source.rel):
                continue
            self.sources[source.rel] = source
            for class_qual, node in source.classes:
                name = class_qual.rsplit(".", 1)[-1]
                self.class_defs.setdefault(name, []).append(
                    (source.rel, class_qual)
                )
            for info in source.functions:
                key = (source.rel, info.qualname)
                self.functions[key] = info
                self.by_name.setdefault(info.name, []).append(key)
                if info.class_name is not None:
                    class_qual = info.qualname.rsplit(".", 1)[0]
                    self.methods.setdefault(
                        (source.rel, class_qual), {}
                    )[info.name] = key
                self._index_bound_aliases(source, info)
        for name in self.by_name:
            self.by_name[name].sort()
        for name in self.class_defs:
            self.class_defs[name].sort()

    def _index_bound_aliases(self, source, info):
        """Record ``self.attr = self.method`` bindings in *info*."""
        if info.class_name is None:
            return
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            values = [node.value]
            if isinstance(node.value, ast.IfExp):
                values = [node.value.body, node.value.orelse]
            methods = set()
            for value in values:
                if (isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id == "self"):
                    methods.add(value.attr)
            if not methods:
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self.bound_aliases.setdefault(
                        info.class_name, {}
                    ).setdefault(target.attr, set()).update(methods)

    # -- resolution ---------------------------------------------------------

    def class_of(self, key):
        """(rel, class qualname) of a method key, or None."""
        info = self.functions.get(key)
        if info is None or info.class_name is None:
            return None
        rel, qualname = key
        return (rel, qualname.rsplit(".", 1)[0])

    def method_names_for_alias(self, class_name, attr):
        """Method names a stored bound-method attribute may carry."""
        per_class = self.bound_aliases.get(class_name, {})
        names = set(per_class.get(attr, ()))
        if not names:
            # Receiver class unknown: union over every class's table.
            for table in self.bound_aliases.values():
                names.update(table.get(attr, ()))
        return names

    def resolve_call(self, caller_key, call):
        """Keys a call expression may dispatch to (sorted, possibly ())."""
        func = call.func
        caller = self.functions.get(caller_key)
        rel = caller_key[0]
        names = set()
        if isinstance(func, ast.Name):
            name = func.id
            # Local bound-method alias: ``decode = self._decode_step``.
            aliased = False
            if caller is not None:
                source = self.sources.get(rel)
                table = (source.local_assignments(caller.node)
                         if source is not None else {})
                for value in table.get(name, ()):
                    if (isinstance(value, ast.Attribute)
                            and isinstance(value.value, ast.Name)
                            and value.value.id == "self"):
                        aliased = True
                        names.add(value.attr)
                        names.update(self.method_names_for_alias(
                            caller.class_name, value.attr
                        ))
            if not aliased:
                names.add(name)
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and caller is not None
                    and caller.class_name is not None):
                class_key = self.class_of(caller_key)
                own = self.methods.get(class_key, {}).get(attr)
                if own is not None:
                    return (own,)
                names.update(self.method_names_for_alias(
                    caller.class_name, attr
                ))
            names.add(attr)
        else:
            return ()
        keys = set()
        for name in names:
            candidates = self.by_name.get(name, ())
            same_file = [key for key in candidates if key[0] == rel]
            if isinstance(func, ast.Name) and same_file:
                keys.update(same_file)
            else:
                keys.update(candidates)
        return tuple(sorted(keys))

    def callees(self, key):
        """Sorted keys this function may call (cached)."""
        cached = self._callee_cache.get(key)
        if cached is not None:
            return cached
        info = self.functions.get(key)
        out = set()
        if info is not None:
            for call in _call_nodes(info.node):
                out.update(self.resolve_call(key, call))
        out.discard(key)
        result = tuple(sorted(out))
        self._callee_cache[key] = result
        return result

    def reachable_from(self, seeds, skip_classes=frozenset(),
                       skip_key=None):
        """Transitive closure over call edges from *seeds*.

        ``skip_classes`` prunes traversal into methods of the named
        classes (e.g. the channel primitives, whose internals are the
        engine's business, not a component contract's).  ``skip_key``
        is an optional per-key predicate for finer pruning.
        """
        seen = set()
        queue = deque(seeds)
        while queue:
            key = queue.popleft()
            if key in seen or key not in self.functions:
                continue
            info = self.functions[key]
            if info.class_name in skip_classes:
                continue
            if skip_key is not None and skip_key(key):
                continue
            seen.add(key)
            for callee in self.callees(key):
                if callee not in seen:
                    queue.append(callee)
        return seen

    # -- file-level reverse dependencies ------------------------------------

    def file_dependents(self, rels):
        """Files whose functions (transitively) call into *rels*.

        The ``--changed`` scope: a contract broken by an edit can
        surface in any caller of the edited file, so dependents are
        closed transitively over the file-level reverse edge relation.
        Returns a sorted tuple including *rels* themselves.
        """
        if self._file_rdeps is None:
            rdeps = {}
            for key in sorted(self.functions):
                for callee in self.callees(key):
                    if callee[0] != key[0]:
                        rdeps.setdefault(callee[0], set()).add(key[0])
            self._file_rdeps = rdeps
        seen = set()
        queue = deque(rel for rel in rels if rel in self.sources)
        seen.update(queue)
        while queue:
            rel = queue.popleft()
            for caller in self._file_rdeps.get(rel, ()):
                if caller not in seen:
                    seen.add(caller)
                    queue.append(caller)
        return tuple(sorted(seen))

    # -- construction summaries (for R11) -----------------------------------

    def returned_classes(self):
        """Map key -> frozenset of tree class names it may return.

        A two-rule fixpoint over direct evidence: ``return Cls(...)``
        (or ``return name`` where *name* was assigned a construction)
        contributes ``Cls``; ``return f(...)`` contributes whatever the
        resolved *f* returns.  ``return self`` and classmethod
        ``cls(...)`` resolve to the defining class -- the idiom behind
        ``Telemetry.attach`` and ``Checkpointer.from_spec``.
        """
        direct = {}
        pending_calls = {}  # key -> set of callee keys feeding returns
        for key in sorted(self.functions):
            info = self.functions[key]
            rel = key[0]
            source = self.sources.get(rel)
            classes = set()
            calls = set()
            table = (source.local_assignments(info.node)
                     if source is not None else {})
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                exprs = [node.value]
                if isinstance(node.value, ast.Name):
                    exprs += list(table.get(node.value.id, ()))
                for expr in exprs:
                    self._collect_constructions(
                        key, info, expr, classes, calls
                    )
                    if (isinstance(expr, ast.Name)
                            and expr.id == "self"
                            and info.class_name is not None):
                        classes.add(info.class_name)
            direct[key] = classes
            pending_calls[key] = calls
        # Fixpoint: propagate callee return-classes into callers.
        changed = True
        while changed:
            changed = False
            for key in direct:
                for callee in pending_calls[key]:
                    extra = direct.get(callee, ())
                    for name in extra:
                        if name not in direct[key]:
                            direct[key].add(name)
                            changed = True
        return {key: frozenset(value) for key, value in direct.items()}

    def _collect_constructions(self, key, info, expr, classes, calls):
        """Tree classes constructed in *expr*; called functions into *calls*."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name is None:
                continue
            if name in self.class_defs:
                classes.add(name)
            elif (isinstance(func, ast.Name) and func.id == "cls"
                    and info.class_name is not None):
                classes.add(info.class_name)
            else:
                calls.update(self.resolve_call(key, node))

    def constructed_classes(self, key, expr):
        """Tree class names *expr* may construct or receive from calls.

        Combines direct constructions in the expression with the
        returned-class summaries of every call it contains; the caller
        supplies the precomputed summaries (``returned_classes()``).
        """
        info = self.functions.get(key)
        classes, calls = set(), set()
        if info is not None:
            self._collect_constructions(key, info, expr, classes, calls)
        return classes, calls
