"""The simlint engine: one parse per file, shared indexes, rule runs.

The pipeline is deliberately boring and deterministic:

1. collect ``.py`` files under the given paths (sorted, stable rel
   paths against the repo root);
2. parse each exactly once into a :class:`~repro.analysis.source.
   SourceFile` (unparseable files become result errors, not crashes);
3. build the shared indexes -- the call-graph hot-path classifier and
   the pooled-token class set -- once for the whole tree;
4. run the selected rules, dedup, apply inline suppressions, sort.

Byte-identical output across runs is a tested property: no wall-clock,
no hash-order dependence, no absolute paths in findings.
"""

import pathlib
import subprocess

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import LintResult
from repro.analysis.hotpath import HOT_PACKAGES, HotPathIndex
from repro.analysis.rules import discover_pooled_classes, select_rules
from repro.analysis.source import parse_source

# Version stamped into the JSON emitter's envelope and the baseline
# file; bump on layout changes (readers tolerate older, skip newer).
LINT_SCHEMA = 1


class LintContext:
    """Shared read-only state every rule check receives.

    ``memo`` is a scratch dict for whole-program passes: a rule that
    computes a tree-wide analysis (snapshot containment, parameter
    summaries) stashes it here keyed by rule id, because rule
    instances are shared module singletons while the context is
    rebuilt per run.
    """

    __slots__ = ("sources", "hot", "pooled_classes", "callgraph", "memo")

    def __init__(self, sources, hot, pooled_classes, callgraph=None):
        self.sources = sources
        self.hot = hot
        self.pooled_classes = pooled_classes
        self.callgraph = callgraph if callgraph is not None \
            else CallGraph(sources, include_all=hot.force_hot)
        self.memo = {}

    def in_hot_package(self, source):
        """Package-level scope test (fixture trees count as hot)."""
        if self.hot.force_hot:
            return True
        return any(marker in source.rel for marker in HOT_PACKAGES)


def find_repo_root(start):
    """Nearest ancestor with a pyproject.toml (else *start* itself)."""
    path = pathlib.Path(start).resolve()
    if path.is_file():
        path = path.parent
    for candidate in (path, *path.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return path


def default_paths():
    """The installed repro package tree (works from any cwd)."""
    return [pathlib.Path(__file__).resolve().parents[1]]


def collect_sources(paths, root=None):
    """Parse every .py file under *paths*; returns (sources, errors)."""
    if root is None:
        root = find_repo_root(paths[0] if paths else ".")
    root = pathlib.Path(root).resolve()
    files = []
    for path in paths:
        path = pathlib.Path(path).resolve()
        if path.is_dir():
            files.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    sources, errors = [], []
    for path in sorted(files):
        if path in seen:
            continue
        seen.add(path)
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            errors.append(f"{rel}: unreadable ({error})")
            continue
        source, parse_error = parse_source(path, text, rel=rel)
        if source is None:
            errors.append(parse_error)
        else:
            sources.append(source)
    sources.sort(key=lambda source: source.rel)
    return sources, errors


def build_context(sources, force_hot=False):
    return LintContext(
        sources=sources,
        hot=HotPathIndex(sources, force_hot=force_hot),
        pooled_classes=discover_pooled_classes(sources),
    )


def changed_files(root):
    """Working-tree .py changes vs HEAD (staged, unstaged, untracked).

    Returns ``(rel paths, error)``; the error string is set (and the
    list empty) when git is unavailable or *root* is not a repository,
    so ``--changed`` can degrade to a full lint with a note instead of
    failing the tool.
    """
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as error:
        return [], f"git status failed: {error}"
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        return [], (f"git status failed: "
                    f"{detail[0] if detail else proc.returncode}")
    rels = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        path = line[3:]
        # Renames report "old -> new"; the new path is the live one.
        if " -> " in path:
            path = path.split(" -> ", 1)[1]
        path = path.strip().strip('"')
        if path.endswith(".py"):
            rels.append(path)
    return sorted(set(rels)), None


def _rule_matches(rule, names):
    return rule.id in names or rule.name in names or "all" in names


def run_rules(sources, rules, ctx, targets=None):
    """Run *rules* over *sources*; dedup, suppress, sort.

    *targets* restricts which files' findings are reported (the
    ``--changed`` scope) without shrinking the analysis context: the
    whole-program indexes in *ctx* always cover every source.
    """
    result = LintResult(
        files_scanned=len(sources),
        rules_run=tuple(rule.id for rule in rules),
    )
    checked = sources if targets is None else [
        source for source in sources if source.rel in targets
    ]
    seen = set()
    for rule in rules:
        for source in checked:
            for finding in rule.check(source, ctx):
                key = finding.identity()
                if key in seen:
                    continue
                seen.add(key)
                suppressed_names = source.suppressed_rules_at(finding.line)
                if _rule_matches(rule, suppressed_names):
                    finding.suppressed = True
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda finding: finding.sort_key())
    result.suppressed.sort(key=lambda finding: finding.sort_key())
    return result


def lint_paths(paths=None, rules=None, root=None, force_hot=False,
               changed_only=False, cache_dir=None):
    """Lint files/directories; the main library entry point.

    *rules* is a comma-separated spec ("R2,R4" / "ungated-hook") or a
    sequence of rule instances; ``None`` runs the whole catalog.
    ``changed_only`` narrows *reporting* to git-changed files plus
    their call-graph dependents (the analysis still sees the full
    tree); ``cache_dir`` reuses a pickled parse/call-graph index when
    the tree fingerprint matches (see :mod:`repro.analysis.cache`).
    """
    paths = list(paths) if paths else default_paths()
    if rules is None or isinstance(rules, str):
        rules = select_rules(rules)
    root_dir = pathlib.Path(
        root if root is not None
        else find_repo_root(paths[0] if paths else ".")
    ).resolve()
    notes = []
    sources = errors = callgraph = None
    if cache_dir is not None:
        from repro.analysis import cache as cache_module
        fingerprint = cache_module.tree_fingerprint(paths, root_dir)
        cached = cache_module.load_index(cache_dir, fingerprint)
        if cached is not None:
            sources, errors, callgraph = cached
            notes.append(f"cache hit ({fingerprint[:12]})")
        else:
            notes.append(f"cache miss ({fingerprint[:12]})")
    if sources is None:
        sources, errors = collect_sources(paths, root=root_dir)
    hot = HotPathIndex(sources, force_hot=force_hot)
    ctx = LintContext(
        sources=sources,
        hot=hot,
        pooled_classes=discover_pooled_classes(sources),
        callgraph=callgraph,
    )
    if cache_dir is not None and callgraph is None:
        from repro.analysis import cache as cache_module
        cache_module.save_index(
            cache_dir, fingerprint, sources, errors, ctx.callgraph
        )
    targets = None
    if changed_only:
        rels, git_error = changed_files(root_dir)
        if git_error is not None:
            notes.append(f"--changed: {git_error}; linting everything")
        else:
            known = {source.rel for source in sources}
            changed = [rel for rel in rels if rel in known]
            targets = set(ctx.callgraph.file_dependents(changed))
            targets.update(changed)
            notes.append(
                f"--changed: {len(changed)} changed file(s), "
                f"{len(targets)} in scope with call-graph dependents"
            )
    result = run_rules(sources, rules, ctx, targets=targets)
    result.errors = errors
    result.notes.extend(notes)
    return result


def lint_text(text, rules=None, rel="fixture.py", force_hot=True):
    """Lint one in-memory snippet (fixture tests, self-check)."""
    if rules is None or isinstance(rules, str):
        rules = select_rules(rules)
    source, parse_error = parse_source(rel, text, rel=rel)
    if source is None:
        result = LintResult(rules_run=tuple(rule.id for rule in rules))
        result.errors = [parse_error]
        return result
    ctx = build_context([source], force_hot=force_hot)
    return run_rules([source], rules, ctx)


def selfcheck(rules=None):
    """Every rule must flag its POSITIVE and accept its NEGATIVE.

    Returns a list of problem strings (empty = healthy).  This is the
    "guard that guards the guard" from the original hot-path lint
    test, generalized to the whole catalog and run by ``--quick``.
    """
    if rules is None or isinstance(rules, str):
        rules = select_rules(rules)
    problems = []
    for rule in rules:
        positive = lint_text(rule.POSITIVE, rules=(rule,))
        if not positive.findings:
            problems.append(
                f"{rule.id} ({rule.name}): positive fixture produced no "
                f"finding"
            )
        negative = lint_text(rule.NEGATIVE, rules=(rule,))
        if negative.findings:
            where = negative.findings[0]
            problems.append(
                f"{rule.id} ({rule.name}): negative fixture flagged at "
                f"line {where.line}: {where.message}"
            )
    return problems
