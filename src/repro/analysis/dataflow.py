"""Intraprocedural may-reach-None dataflow, stitched along call edges.

The hook-gating contract (DESIGN.md 6.2/6.3) is a *path* property:
every dereference of an optional hook must be dominated by an
``is not None`` test.  R4 checks the syntactic form (the dereference
sits inside a guarded branch); this module computes the flow-sensitive
form -- a small forward analysis over one function's statement list
tracking the set of expression paths known to be non-``None`` at each
point -- so early-return guards::

    if self._trace is None:
        return
    self._trace.record(...)

and guarded call sites are recognized, and so that per-parameter
*summaries* ("this function dereferences parameter ``trace`` on some
path without testing it") can be stitched interprocedurally along the
call graph (R12).

The lattice element is a set of *paths*: tuples of attribute names
rooted at a local name, ``("self", "_tele")`` for ``self._tele``,
``("tele",)`` for a local alias.  Transfer functions:

* ``P is not None`` in a test adds P to the true branch;
  ``P is None`` adds P to the false branch; ``and``/``or`` chains,
  ternaries, ``assert`` and ``isinstance`` tests distribute as usual;
* a branch that always terminates (return/raise/continue/break)
  propagates the surviving branch's facts past the ``if``;
* assigning to a path kills every fact it prefixes; assigning a call
  result or a non-None constant *generates* a fact; assigning one
  tracked path to another copies its fact (the alias idiom);
* loops and ``try`` bodies are entered with the facts their own
  assignments cannot invalidate (conservative kill-set prepass).

Truthiness (``if self._tele:``) deliberately does not generate a fact
-- same policy as R4: a hook wrapper defining ``__bool__`` would
silently disable itself.

The analysis records every *dereference site* (attribute access,
subscript, or call on a tracked path) and every *call site* together
with the facts holding there; :func:`param_summaries` folds the sites
of every function into a fixpoint map of parameters dereferenced
without a dominating guard, including through nested helper calls.
"""

import ast

_MAX_PATH_DEPTH = 4

_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def expr_path(expr):
    """Attribute path of *expr* rooted at a bare name, or None.

    ``self._tele`` -> ``("self", "_tele")``; ``tele`` -> ``("tele",)``;
    anything rooted in a call/subscript (not a stable storage location)
    is untracked.
    """
    parts = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or len(parts) >= _MAX_PATH_DEPTH:
        return None
    parts.append(node.id)
    parts.reverse()
    return tuple(parts)


def _assigned_paths(node):
    """Paths assigned anywhere under *node* (loop/try kill prepass)."""
    killed = set()
    for sub in ast.walk(node):
        targets = ()
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = (sub.target,)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            targets = (sub.target,)
        for target in targets:
            path = expr_path(target)
            if path is not None:
                killed.add(path)
    return killed


def _kill(facts, path):
    return frozenset(
        fact for fact in facts if fact[:len(path)] != path
    )


class DerefSite:
    """One dereference of a tracked path, with the facts holding there."""

    __slots__ = ("path", "node", "facts")

    def __init__(self, path, node, facts):
        self.path = path
        self.node = node
        self.facts = facts

    @property
    def guarded(self):
        return self.path in self.facts


class CallSite:
    """One call expression, with the facts holding at evaluation."""

    __slots__ = ("node", "facts")

    def __init__(self, node, facts):
        self.node = node
        self.facts = facts


class FlowScan:
    """Run the non-None analysis over one function definition."""

    def __init__(self, func_node):
        self.func_node = func_node
        self.derefs = []  # DerefSite, in source order of the walk
        self.calls = []   # CallSite
        self._walk_body(func_node.body, frozenset())

    # -- tests --------------------------------------------------------------

    def _facts_from_test(self, test):
        """(facts added when true, facts added when false)."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            comparator = test.comparators[0]
            if (isinstance(comparator, ast.Constant)
                    and comparator.value is None):
                path = expr_path(test.left)
                if path is not None:
                    if isinstance(test.ops[0], ast.IsNot):
                        return frozenset((path,)), frozenset()
                    if isinstance(test.ops[0], ast.Is):
                        return frozenset(), frozenset((path,))
            return frozenset(), frozenset()
        if (isinstance(test, ast.Call)
                and isinstance(test.func, ast.Name)
                and test.func.id == "isinstance"
                and test.args):
            path = expr_path(test.args[0])
            if path is not None:
                return frozenset((path,)), frozenset()
            return frozenset(), frozenset()
        if isinstance(test, ast.BoolOp):
            true_facts, false_facts = frozenset(), frozenset()
            for value in test.values:
                sub_true, sub_false = self._facts_from_test(value)
                if isinstance(test.op, ast.And):
                    # All conjuncts hold on the true edge.
                    true_facts |= sub_true
                else:
                    # All disjuncts failed on the false edge.
                    false_facts |= sub_false
            return true_facts, false_facts
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            sub_true, sub_false = self._facts_from_test(test.operand)
            return sub_false, sub_true
        return frozenset(), frozenset()

    # -- expressions --------------------------------------------------------

    def _eval(self, expr, facts):
        """Record deref/call sites in *expr* under *facts*.

        Handles the guard forms that live inside expressions: ``and``
        short-circuiting and ternaries evaluate their right/branch
        operands under the facts their left/test established.
        """
        if expr is None:
            return
        if isinstance(expr, ast.BoolOp):
            running = facts
            for value in expr.values:
                self._eval(value, running)
                sub_true, sub_false = self._facts_from_test(value)
                running = running | (
                    sub_true if isinstance(expr.op, ast.And) else sub_false
                )
            return
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, facts)
            sub_true, sub_false = self._facts_from_test(expr.test)
            self._eval(expr.body, facts | sub_true)
            self._eval(expr.orelse, facts | sub_false)
            return
        if isinstance(expr, ast.Lambda):
            return  # separate scope; not analyzed here
        if isinstance(expr, ast.Attribute):
            base = expr_path(expr.value)
            if base is not None:
                self.derefs.append(DerefSite(base, expr, facts))
                # The chain root was evaluated as part of the path.
                return
        if isinstance(expr, ast.Subscript):
            base = expr_path(expr.value)
            if base is not None:
                self.derefs.append(DerefSite(base, expr, facts))
            else:
                self._eval(expr.value, facts)
            self._eval(expr.slice, facts)
            return
        if isinstance(expr, ast.Call):
            func_base = None
            if isinstance(expr.func, ast.Name):
                func_base = expr_path(expr.func)
            if func_base is not None:
                # Calling a tracked local (stored hook callable).
                self.derefs.append(DerefSite(func_base, expr, facts))
            else:
                self._eval(expr.func, facts)
            for arg in expr.args:
                self._eval(arg, facts)
            for keyword in expr.keywords:
                self._eval(keyword.value, facts)
            self.calls.append(CallSite(expr, facts))
            return
        if isinstance(expr, ast.Compare):
            # `P is None` tests the pointer, it does not dereference it.
            comparator = expr.comparators[0] if expr.comparators else None
            if (len(expr.ops) == 1
                    and isinstance(expr.ops[0], (ast.Is, ast.IsNot))
                    and isinstance(comparator, ast.Constant)
                    and comparator.value is None
                    and expr_path(expr.left) is not None):
                return
            for child in ast.iter_child_nodes(expr):
                self._eval(child, facts)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.comprehension)):
                self._eval(child, facts)
            elif isinstance(child, ast.keyword):
                self._eval(child.value, facts)

    # -- statements ---------------------------------------------------------

    def _assign(self, target, value, facts):
        path = expr_path(target)
        if path is None:
            # Tuple targets etc.: kill each component we can name.
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    facts = self._assign(element, None, facts)
            return facts
        facts = _kill(facts, path)
        if value is None:
            return facts
        value_path = expr_path(value)
        if value_path is not None and value_path in facts:
            facts |= frozenset((path,))
        elif isinstance(value, ast.Call):
            facts |= frozenset((path,))
        elif isinstance(value, ast.Constant) and value.value is not None:
            facts |= frozenset((path,))
        elif isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                                ast.ListComp, ast.DictComp, ast.SetComp)):
            facts |= frozenset((path,))
        return facts

    def _walk_body(self, body, facts):
        """Returns (facts after the block, always-terminates flag)."""
        for stmt in body:
            facts, terminated = self._walk_stmt(stmt, facts)
            if terminated:
                return facts, True
        return facts, False

    def _walk_stmt(self, stmt, facts):
        if isinstance(stmt, _TERMINATORS):
            if isinstance(stmt, ast.Return):
                self._eval(stmt.value, facts)
            elif isinstance(stmt, ast.Raise):
                self._eval(stmt.exc, facts)
            return facts, True
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, facts)
            true_facts, false_facts = self._facts_from_test(stmt.test)
            body_out, body_term = self._walk_body(
                stmt.body, facts | true_facts
            )
            else_out, else_term = self._walk_body(
                stmt.orelse, facts | false_facts
            )
            if body_term and else_term:
                return facts, True
            if body_term:
                return else_out, False
            if else_term:
                return body_out, False
            return body_out & else_out, False
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, facts)
            true_facts, _ = self._facts_from_test(stmt.test)
            return facts | true_facts, False
        if isinstance(stmt, ast.Assign):
            self._eval(stmt.value, facts)
            for target in stmt.targets:
                facts = self._assign(target, stmt.value, facts)
            return facts, False
        if isinstance(stmt, ast.AnnAssign):
            self._eval(stmt.value, facts)
            if stmt.value is not None:
                facts = self._assign(stmt.target, stmt.value, facts)
            return facts, False
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, facts)
            path = expr_path(stmt.target)
            if path is not None:
                facts = _kill(facts, path)
            return facts, False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, facts)
            killed = _assigned_paths(stmt)
            loop_facts = frozenset(
                fact for fact in facts
                if not any(fact[:len(path)] == path for path in killed)
            )
            loop_facts = self._assign(stmt.target, None, loop_facts)
            self._walk_body(stmt.body, loop_facts)
            self._walk_body(stmt.orelse, loop_facts)
            return loop_facts, False
        if isinstance(stmt, ast.While):
            killed = _assigned_paths(stmt)
            loop_facts = frozenset(
                fact for fact in facts
                if not any(fact[:len(path)] == path for path in killed)
            )
            self._eval(stmt.test, loop_facts)
            true_facts, _ = self._facts_from_test(stmt.test)
            self._walk_body(stmt.body, loop_facts | true_facts)
            self._walk_body(stmt.orelse, loop_facts)
            return loop_facts, False
        if isinstance(stmt, ast.Try):
            killed = _assigned_paths(stmt)
            safe = frozenset(
                fact for fact in facts
                if not any(fact[:len(path)] == path for path in killed)
            )
            body_out, _ = self._walk_body(stmt.body, facts)
            for handler in stmt.handlers:
                self._walk_body(handler.body, safe)
            self._walk_body(stmt.orelse, body_out)
            final_out, final_term = self._walk_body(stmt.finalbody, safe)
            return safe, final_term
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, facts)
                if item.optional_vars is not None:
                    facts = self._assign(
                        item.optional_vars, item.context_expr, facts
                    )
            return self._walk_body(stmt.body, facts)
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, facts)
            return facts, False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                path = expr_path(target)
                if path is not None:
                    facts = _kill(facts, path)
            return facts, False
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return facts, False
        # Anything unmodeled: evaluate child expressions conservatively.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, facts)
        return facts, False


def function_params(func_node):
    """Positional parameter names, ``self``/``cls`` included."""
    args = func_node.args
    return [arg.arg for arg in args.posonlyargs + args.args]


def _scan(callgraph, key, cache):
    scan = cache.get(key)
    if scan is None:
        scan = FlowScan(callgraph.functions[key].node)
        cache[key] = scan
    return scan


def param_summaries(callgraph):
    """Fixpoint map: key -> frozenset of deref-unsafe parameter names.

    A parameter is *deref-unsafe* when some path through its function
    dereferences it (attribute access, subscript, call) without a
    dominating non-None fact -- directly, or by handing it to another
    function's deref-unsafe parameter unguarded.  Callers use this to
    flag hook expressions flowing into an unsafe parameter (R12).
    """
    scans = {}
    summaries = {}
    # Seed: direct unguarded dereferences of a parameter.
    for key in sorted(callgraph.functions):
        info = callgraph.functions[key]
        params = set(function_params(info.node)) - {"self", "cls"}
        unsafe = set()
        if params:
            scan = _scan(callgraph, key, scans)
            for site in scan.derefs:
                if (len(site.path) == 1 and site.path[0] in params
                        and not site.guarded):
                    unsafe.add(site.path[0])
        summaries[key] = unsafe
    # Fixpoint: passing an untested parameter into an unsafe parameter
    # makes the forwarding parameter unsafe too.
    changed = True
    while changed:
        changed = False
        for key in sorted(callgraph.functions):
            info = callgraph.functions[key]
            params = set(function_params(info.node)) - {"self", "cls"}
            if not params:
                continue
            pending = params - summaries[key]
            if not pending:
                continue
            scan = _scan(callgraph, key, scans)
            for site in scan.calls:
                hits = unsafe_arguments(
                    callgraph, key, site, summaries,
                    lambda path: (len(path) == 1 and path[0] in pending),
                )
                for hit in hits:
                    if hit.path[0] not in summaries[key]:
                        summaries[key].add(hit.path[0])
                        changed = True
    return {key: frozenset(value) for key, value in summaries.items()}


class UnsafeArgument:
    """One argument flowing unguarded into a deref-unsafe parameter."""

    __slots__ = ("path", "node", "callee", "param")

    def __init__(self, path, node, callee, param):
        self.path = path
        self.node = node
        self.callee = callee  # (rel, qualname) of the dereferencing callee
        self.param = param    # the unsafe parameter name it lands on


def unsafe_arguments(callgraph, caller_key, site, summaries, match):
    """Arguments at *site* flowing unguarded into an unsafe parameter.

    *match* selects which argument paths are of interest; an argument
    already covered by a non-None fact at the call site is safe.
    Returns :class:`UnsafeArgument` hits (first matching callee wins,
    in sorted key order, so messages are deterministic).
    """
    call = site.node
    callees = callgraph.resolve_call(caller_key, call)
    if not callees:
        return []
    hits = []
    for position, arg in enumerate(call.args):
        path = expr_path(arg)
        if path is None or not match(path) or path in site.facts:
            continue
        hit = _position_unsafe(callgraph, callees, position, call,
                               summaries)
        if hit is not None:
            hits.append(UnsafeArgument(path, arg, hit[0], hit[1]))
    for keyword in call.keywords:
        if keyword.arg is None:
            continue
        path = expr_path(keyword.value)
        if path is None or not match(path) or path in site.facts:
            continue
        for callee in callees:
            if keyword.arg in summaries.get(callee, ()):
                hits.append(UnsafeArgument(
                    path, keyword.value, callee, keyword.arg
                ))
                break
    return hits


def _position_unsafe(callgraph, callees, position, call, summaries):
    """First (callee key, param name) argument *position* lands on
    among the callees' unsafe parameters, or None."""
    method_call = isinstance(call.func, ast.Attribute)
    for callee in callees:
        info = callgraph.functions.get(callee)
        if info is None:
            continue
        params = function_params(info.node)
        offset = 0
        if params and params[0] in ("self", "cls") and method_call:
            offset = 1
        index = position + offset
        if index < len(params) and params[index] in summaries.get(
                callee, ()):
            return callee, params[index]
    return None
