"""Finding serializers: human text, machine JSON, and SARIF 2.1.0.

All three are deterministic functions of the LintResult -- no
timestamps, no absolute paths, stable ordering -- so CI artifacts diff
cleanly between runs and the golden-file tests can compare bytes.
"""

import json

from repro.analysis import engine as _engine
from repro.analysis.rules import ALL_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "simlint"
# Tool version, surfaced in SARIF/JSON envelopes; tracks the rule
# catalog, not the repo release.
TOOL_VERSION = "1.0"


def _finding_line(finding):
    tags = []
    if finding.suppressed:
        tags.append("suppressed")
    if finding.baselined:
        tags.append("baselined")
    suffix = f" [{', '.join(tags)}]" if tags else ""
    hint = f" ({finding.hint})" if finding.hint else ""
    return (
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule} {finding.severity}: {finding.message}"
        f"{hint}{suffix}"
    )


def emit_text(result, show_suppressed=False):
    """One line per finding plus a summary tail; '' findings -> clean."""
    lines = [_finding_line(finding) for finding in result.findings]
    if show_suppressed:
        lines.extend(
            _finding_line(finding)
            for finding in result.suppressed + result.baselined
        )
    counts = result.counts()
    summary = (
        f"simlint: {len(result.findings)} finding(s) "
        f"({counts.get('error', 0)} error, {counts.get('warning', 0)} "
        f"warning), {len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.files_scanned} file(s), "
        f"rules {','.join(result.rules_run)}"
    )
    lines.append(summary)
    lines.extend(f"simlint: error: {error}" for error in result.errors)
    return "\n".join(lines) + "\n"


def emit_json(result, show_suppressed=False):
    payload = {
        "schema": _engine.LINT_SCHEMA,
        "tool": {"name": TOOL_NAME, "version": TOOL_VERSION},
        "rules_run": list(result.rules_run),
        "files_scanned": result.files_scanned,
        "counts": result.counts(),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [
            finding.to_dict() for finding in result.suppressed
        ] if show_suppressed else len(result.suppressed),
        "baselined": [
            finding.to_dict() for finding in result.baselined
        ] if show_suppressed else len(result.baselined),
        "errors": list(result.errors),
        "notes": list(result.notes),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_rules():
    return [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": "error" if rule.severity == "error" else "warning",
            },
        }
        for rule in ALL_RULES
    ]


def _sarif_result(finding):
    entry = {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == "error" else "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }
        ],
    }
    if finding.hint:
        entry["properties"] = {"hint": finding.hint}
    if finding.suppressed or finding.baselined:
        entry["suppressions"] = [
            {"kind": "inSource" if finding.suppressed else "external"}
        ]
    return entry


def emit_sarif(result, show_suppressed=True):
    """SARIF log; suppressed findings ride along flagged as such.

    SARIF consumers (GitHub code scanning and friends) understand the
    ``suppressions`` property, so unlike the text/JSON emitters the
    suppressed findings are included by default.
    """
    findings = list(result.findings)
    if show_suppressed:
        findings += result.suppressed + result.baselined
    findings.sort(key=lambda finding: finding.sort_key())
    log = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "rules": _sarif_rules(),
                    },
                },
                "columnKind": "utf16CodeUnits",
                "results": [_sarif_result(f) for f in findings],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


EMITTERS = {
    "text": emit_text,
    "json": emit_json,
    "sarif": emit_sarif,
}
