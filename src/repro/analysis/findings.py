"""Finding model shared by every simlint rule and emitter.

A finding is one contract violation at one source location.  Findings
are plain data -- rules yield them, the engine dedups/sorts/suppresses
them, emitters serialize them -- so the whole pipeline stays
deterministic: two runs over the same tree produce byte-identical
output (a property tested in tests/analysis/test_determinism.py).
"""

from dataclasses import dataclass, field

# Ordered from most to least severe; index = rank used by --fail-on.
SEVERITIES = ("error", "warning")


def severity_rank(severity):
    """Lower rank = more severe; unknown severities sort last."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(slots=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repo-relative with forward slashes (stable across
    machines for golden files and SARIF).  ``suppressed`` marks an
    inline ``# simlint: disable=...`` hit; ``baselined`` marks a
    finding accepted by a ``--baseline`` file.  Both are carried (not
    dropped) so emitters can report counts and ``--show-suppressed``
    can surface them.
    """

    rule: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False
    baselined: bool = False

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def identity(self):
        """Dedup key: the same defect reported twice collapses."""
        return (self.rule, self.path, self.line, self.col, self.message)

    def baseline_key(self):
        """Line-free identity used by the baseline flow.

        Deliberately excludes line/col so that unrelated edits moving a
        tolerated finding around the file do not resurrect it.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self):
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


@dataclass(slots=True)
class LintResult:
    """Everything one lint run produced, pre-sorted and deduped."""

    findings: list = field(default_factory=list)  # active findings
    suppressed: list = field(default_factory=list)  # inline-disabled
    baselined: list = field(default_factory=list)  # accepted by baseline
    files_scanned: int = 0
    rules_run: tuple = ()
    errors: list = field(default_factory=list)  # unparseable files etc.
    notes: list = field(default_factory=list)  # degraded-mode warnings

    def counts(self):
        by_severity = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            by_severity.setdefault(finding.severity, 0)
            by_severity[finding.severity] += 1
        return by_severity

    def worst_rank(self):
        """Rank of the most severe active finding (None when clean)."""
        ranks = [severity_rank(f.severity) for f in self.findings]
        return min(ranks) if ranks else None
