"""R9: scalar drift guard for the columnar (vector) kernels.

Columnar engine v2 (DESIGN.md 6.6) keeps every hot structure in two
implementations: the scalar reference loop and a ``*_vec`` twin that
advances whole batches with numpy kernels or slice assignments.  The
scalar twin is *supposed* to loop; the vector twin defeats its own
purpose the moment someone patches a per-token ``for`` loop over a
whole-batch source back into it -- the benchmark quietly regresses
while every test stays green, because both paths are cycle-identical
by construction.

This rule flags ``for`` loops inside ``*_vec`` functions whose
iterable is a whole-batch getter: a bulk channel drain (``pop_all`` /
``pop_many``), a subentry chain walk (``chain_items``), or a
materialized numpy column (``.tolist()``), directly or wrapped in
``zip()`` / ``enumerate()``.  Bounded per-cycle loops (``range(4)``,
walking the d cuckoo ways, piece lists) stay legal -- they are
per-cycle constants, not per-token batch work.
"""

import ast

from repro.analysis.rules.base import Rule

# Attribute calls that hand back an entire batch at once.
BATCH_GETTERS = ("pop_all", "pop_many", "chain_items", "tolist")


def _batch_call(node):
    """True if *node* is a call to a whole-batch getter."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in BATCH_GETTERS
    )


def _batch_iterable(node):
    """The offending getter name if *node* iterates a whole batch."""
    if _batch_call(node):
        return node.func.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("zip", "enumerate")
    ):
        for arg in node.args:
            if _batch_call(arg):
                return arg.func.attr
    return None


class ScalarDriftRule(Rule):
    """R9: no per-token for-loops over batches inside vector kernels."""

    id = "R9"
    name = "scalar-drift"
    severity = "error"
    summary = "no per-token loops over whole batches in *_vec kernels"
    rationale = (
        "A vector kernel that iterates its batch token-by-token is the "
        "scalar path wearing the vector path's name: cycle counts stay "
        "identical (both paths are bit-exact by contract), so the "
        "regression is invisible to every correctness test and only "
        "surfaces as a slow benchmark.  Catching the loop statically "
        "names the file:line instead."
    )
    hint = (
        "advance the whole batch with a numpy kernel or slice "
        "assignment; if per-token work is unavoidable, move it to the "
        "scalar twin (the function without the _vec suffix)"
    )

    POSITIVE = (
        "def _drain_one_vec(self):\n"
        "    for token in self.resp_in.pop_all():\n"
        "        self.handle(token)\n"
    )
    NEGATIVE = (
        "def _drain_one(self):\n"
        "    for token in self.resp_in.pop_all():\n"
        "        self.handle(token)\n"
        "def _drain_one_vec(self):\n"
        "    batch = self.resp_in.pop_all()\n"
        "    self.resp_out.push_many(batch)\n"
        "    for way in range(4):\n"
        "        self.step(way)\n"
    )

    def check(self, source, ctx):
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.endswith("_vec"):
                continue
            for loop in ast.walk(node):
                if not isinstance(loop, ast.For):
                    continue
                getter = _batch_iterable(loop.iter)
                if getter is None:
                    continue
                yield self.finding(
                    source, loop,
                    f"per-token loop over '{getter}(...)' batch inside "
                    f"vector kernel '{node.name}'",
                )
