"""R2: bulk/fields channel API discipline on hot paths.

Migrated from the standalone ``tests/test_hot_path_lint.py`` walker
(PR 4) into the rule framework: the kernelization pass moved every
hot-path producer/consumer from element-at-a-time ``Channel.push`` /
``pop`` loops to the bulk (``push_many`` / ``pop_many`` / ``pop_all``)
and fields (``push_request`` / ``front_request`` / ``drop`` ...) APIs,
and this rule keeps them there.

Deliberately out of scope (inherited from the original test):

* ``repro/fabric/`` -- arbiters/crossbars grant exactly one token per
  cycle by construction (the paper's arbitration), so a per-token call
  there is the architecture, not a missed batch;
* subscripted receivers like ``ports[channel].push(...)`` -- the
  target channel varies per iteration, which no bulk call on a single
  channel can express;
* freelist-style receivers (``pool.pop()`` and friends) -- LIFO list
  pops, not channels.
"""

import ast

from repro.analysis.rules.base import Rule

# Object-API methods that move one token per call.
SINGLE_TOKEN = ("push", "front")
# Receiver base names that are not channels.
ALLOWED_RECEIVERS = ("pool", "pending", "path", "stack", "heap")


def _receiver_name(node):
    """Base identifier of a call receiver, or None if it varies."""
    if isinstance(node, ast.Subscript):
        return None  # ports[channel].push(...): target varies
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class SingleTokenChannelRule(Rule):
    """R2: no single-token channel calls inside hot-path loops."""

    id = "R2"
    name = "single-token-channel"
    severity = "error"
    summary = "no per-token push/front/pop loops on hot channels"
    rationale = (
        "The batched kernels (DESIGN.md 6.4) get their speed from one "
        "capacity check and one dirty registration per burst; a loop "
        "re-introducing per-token object calls quietly re-serializes "
        "the hot path and shows up only as a slow benchmark.  Catching "
        "it statically names the file:line instead."
    )
    hint = ("use push_many/pop_many/pop_all or the fields API "
            "(push_request/front_request/drop ...) on hot channels")

    POSITIVE = (
        "def tick(self, engine):\n"
        "    for item in batch:\n"
        "        self.resp_out.push(item)\n"
    )
    NEGATIVE = (
        "def tick(self, engine):\n"
        "    self.resp_out.push_many(batch)\n"
        "    for channel, item in pieces:\n"
        "        ports[channel].push(item)\n"
        "        token = pool.pop()\n"
    )

    def check(self, source, ctx):
        if "repro/fabric/" in source.rel:
            return
        seen = set()
        for info in ctx.hot.hot_functions(source):
            for loop in ast.walk(info.node):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call) or id(node) in seen:
                        continue
                    func = node.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    single = func.attr in SINGLE_TOKEN or (
                        func.attr == "pop"
                        and not node.args and not node.keywords
                    )
                    if not single:
                        continue
                    receiver = _receiver_name(func.value)
                    if receiver is None:
                        continue
                    if any(mark in receiver for mark in ALLOWED_RECEIVERS):
                        continue
                    seen.add(id(node))
                    yield self.finding(
                        source, node,
                        f"'{receiver}.{func.attr}(...)' inside a loop in "
                        f"hot function '{info.qualname}'",
                    )
