"""R11: static snapshot-completeness (the lint-time twin of audit_system).

The checkpoint protocol (DESIGN.md, ``repro.checkpoint.protocol``)
keeps an explicit inventory -- :data:`SNAPSHOT_REGISTRY` -- of every
class a pickled system may carry, and ``audit_system`` verifies it at
runtime by walking a real pickle.  That audit only fires when someone
builds a system *and* runs the audit test; a stateful class added to a
subsystem the audit fixture does not exercise drifts silently until a
checkpoint fails in the field.

R11 closes the gap statically: it recomputes the containment relation
from source.  Starting at ``AcceleratorSystem``, every class whose
instances are stored into an attribute of a contained class (directly
constructed, built inside a comprehension, appended to a container
attribute, or returned by a called builder -- via the call graph's
returned-class summaries) is itself contained, and every contained
class must appear in the registry or in ``SNAPSHOT_EXCLUDED`` (the
explicit opt-out table, with a reason).

Precision notes (DESIGN.md 6.10): containment is attribute-assignment
based, widened to *every* construction inside ``__init__``/``_build*``
methods of contained classes (builders construct to keep).  Classes
reaching system state only through module-level constants or through
containers threaded via locals can escape the static walk -- the
runtime audit still catches those -- while temporaries built in a
constructor may be over-approximated into state; both audits together
cover what neither does alone.
"""

import ast

from repro.analysis.rules.base import Rule

# The root of the containment walk: the object checkpoints pickle.
_ROOT_CLASSES = ("AcceleratorSystem",)

# Registration/exclusion table spellings recognized in source.
_REGISTER_FUNC = "register"
_REGISTER_ALL = "_register_all"
_EXCLUDED_TABLE = "SNAPSHOT_EXCLUDED"

# Builder methods whose every construction is treated as kept state.
_BUILDER_PREFIXES = ("__init__", "_build")


def _collect_registry(sources):
    """(registered names, excluded names) declared anywhere in *sources*."""
    registered, excluded = set(), set()
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name == _REGISTER_FUNC and node.args:
                    target = node.args[0]
                    if isinstance(target, ast.Name):
                        registered.add(target.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == _EXCLUDED_TABLE
                            and isinstance(node.value, ast.Dict)):
                        for key in node.value.keys:
                            if (isinstance(key, ast.Constant)
                                    and isinstance(key.value, str)):
                                excluded.add(key.value)
        # The registry file's grouped form: ``for cls, note in (...)``
        # inside _register_all, with (Name, "note") tuple entries.
        for info in source.functions:
            if info.name != _REGISTER_ALL:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.For):
                    continue
                if not isinstance(node.iter, (ast.Tuple, ast.List)):
                    continue
                for entry in node.iter.elts:
                    if (isinstance(entry, (ast.Tuple, ast.List))
                            and entry.elts
                            and isinstance(entry.elts[0], ast.Name)):
                        registered.add(entry.elts[0].id)
    return registered, excluded


class SnapshotCompletenessRule(Rule):
    """R11: every class reachable from system state is registered."""

    id = "R11"
    name = "snapshot-completeness"
    severity = "error"
    summary = ("classes stored into system state must be in "
               "SNAPSHOT_REGISTRY or SNAPSHOT_EXCLUDED")
    rationale = (
        "Snapshots pickle the whole system object graph; audit_system "
        "verifies the registry at runtime but only over the object "
        "graph its fixture builds.  The static containment walk flags "
        "an unregistered stateful class the moment it is assigned into "
        "system state, at lint time, before any checkpoint exists to "
        "fail -- and the explicit SNAPSHOT_EXCLUDED table forces the "
        "\"this is deliberately not snapshot state\" decision to be "
        "written down with a reason."
    )
    hint = (
        "register the class in repro.checkpoint.protocol._register_all "
        "(with a note on what state it carries) after checking it "
        "pickles cleanly, or add it to SNAPSHOT_EXCLUDED with the "
        "reason it is not snapshot state"
    )

    # The registry declaration keeps the fixture past the
    # partial-scope gate even without force_hot (CLI scaffold trees).
    POSITIVE = (
        "class TokenRing:\n"
        "    pass\n"
        "def _register_all(register):\n"
        "    for cls, note in (\n"
        "        (TokenRing, 'ring state'),\n"
        "    ):\n"
        "        register(cls, note)\n"
        "class RogueBuffer:\n"
        "    def __init__(self):\n"
        "        self.rows = []\n"
        "class AcceleratorSystem:\n"
        "    def __init__(self):\n"
        "        self.ring = TokenRing()\n"
        "        self.rogue = RogueBuffer()\n"
    )
    NEGATIVE = (
        "SNAPSHOT_EXCLUDED = {\n"
        "    'ScratchPlan': 'rebuilt from the config on restore',\n"
        "}\n"
        "class TokenQueue:\n"
        "    def __init__(self):\n"
        "        self.items = []\n"
        "def _register_all(register):\n"
        "    for cls, note in (\n"
        "        (TokenQueue, 'ring state'),\n"
        "    ):\n"
        "        register(cls, note)\n"
        "class ScratchPlan:\n"
        "    pass\n"
        "def make_queue():\n"
        "    return TokenQueue()\n"
        "class AcceleratorSystem:\n"
        "    def __init__(self):\n"
        "        self.queue = make_queue()\n"
        "        self.plan = ScratchPlan()\n"
    )

    def check(self, source, ctx):
        buckets = ctx.memo.get(self.id)
        if buckets is None:
            buckets = self._analyze(ctx)
            ctx.memo[self.id] = buckets
        for finding_args in buckets.get(source.rel, ()):
            node, message = finding_args
            yield self.finding(source, node, message)

    # -- whole-program analysis ---------------------------------------------

    def _analyze(self, ctx):
        callgraph = ctx.callgraph
        registered, excluded = _collect_registry(ctx.sources)
        # Whole-program pass, whole program required: a partial scope
        # (e.g. --quick's hot packages) that does not include the
        # registry declarations would flag every registered class.
        # Fixture trees (force_hot) stay checkable without a registry.
        if not registered and not excluded and not ctx.hot.force_hot:
            return {}
        returned = callgraph.returned_classes()
        buckets = {}
        seen_classes = set()
        worklist = [name for name in _ROOT_CLASSES
                    if name in callgraph.class_defs]
        flagged = set()  # (rel, line, class name) dedup
        while worklist:
            class_name = worklist.pop()
            if class_name in seen_classes:
                continue
            seen_classes.add(class_name)
            for method_key in self._methods_of(callgraph, class_name):
                rel = method_key[0]
                info = callgraph.functions[method_key]
                for node, constructed in self._kept_constructions(
                        callgraph, method_key, info, returned):
                    for name in sorted(constructed):
                        if name in excluded:
                            continue
                        if name not in registered:
                            marker = (rel, getattr(node, "lineno", 1),
                                      name)
                            if marker not in flagged:
                                flagged.add(marker)
                                buckets.setdefault(rel, []).append((
                                    node,
                                    f"'{name}' is stored into "
                                    f"'{class_name}' state (via "
                                    f"'{info.qualname}') but is not in "
                                    f"SNAPSHOT_REGISTRY or "
                                    f"SNAPSHOT_EXCLUDED",
                                ))
                        if name not in seen_classes:
                            worklist.append(name)
        for rel in buckets:
            buckets[rel].sort(
                key=lambda pair: (getattr(pair[0], "lineno", 1), pair[1])
            )
        return buckets

    @staticmethod
    def _methods_of(callgraph, class_name):
        keys = []
        for rel, class_qual in callgraph.class_defs.get(class_name, ()):
            table = callgraph.methods.get((rel, class_qual), {})
            keys.extend(sorted(table.values()))
        return keys

    def _kept_constructions(self, callgraph, key, info, returned):
        """(anchor node, constructed class names) kept as state."""
        builder = info.name.startswith(_BUILDER_PREFIXES)
        for node in ast.walk(info.node):
            exprs = ()
            if isinstance(node, ast.Assign):
                if any(self._is_self_target(t) for t in node.targets):
                    exprs = (node.value,)
            elif isinstance(node, ast.AnnAssign):
                if (self._is_self_target(node.target)
                        and node.value is not None):
                    exprs = (node.value,)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in ("append", "extend", "add",
                                          "appendleft", "insert")
                        and self._rooted_in_self(func.value)):
                    exprs = tuple(node.args)
                elif builder:
                    # Builder widening: constructions anywhere in
                    # __init__/_build* count as kept.
                    classes = self._direct_classes(callgraph, key, node,
                                                   returned)
                    if classes:
                        yield node, classes
                    continue
            if not exprs:
                continue
            classes = set()
            for expr in exprs:
                classes |= self._expr_classes(callgraph, key, expr,
                                              returned)
            if classes:
                yield node, classes

    @staticmethod
    def _is_self_target(target):
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    @staticmethod
    def _rooted_in_self(expr):
        node = expr
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def _expr_classes(self, callgraph, key, expr, returned):
        classes = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                classes |= self._direct_classes(callgraph, key, node,
                                                returned)
        return classes

    @staticmethod
    def _direct_classes(callgraph, key, call, returned):
        """Classes one call constructs or returns (summary-resolved)."""
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return set()
        if name in callgraph.class_defs:
            return {name}
        info = callgraph.functions.get(key)
        if (isinstance(func, ast.Name) and func.id == "cls"
                and info is not None and info.class_name is not None):
            return {info.class_name}
        classes = set()
        for callee in callgraph.resolve_call(key, call):
            classes |= set(returned.get(callee, ()))
        return classes
