"""Base class for simlint rules.

A rule is stateless: ``check(source, ctx)`` yields findings for one
parsed file, reading shared indexes (hot-path classification, pooled
token classes) from the :class:`~repro.analysis.engine.LintContext`.
Each rule carries a ``POSITIVE`` and a ``NEGATIVE`` snippet -- the
engine's self-check (``python -m repro lint --quick``) and the fixture
tests both assert the positive fires and the negative stays clean, so
the guard that guards the guards ships with the rules themselves.
"""

from repro.analysis.findings import Finding


class Rule:
    """One enforceable contract.  Subclasses set the class attributes
    and implement :meth:`check`."""

    id = "R0"
    name = "unnamed"
    severity = "error"
    summary = ""
    rationale = ""  # why the contract protects bit-identical cycles
    hint = ""
    POSITIVE = ""  # snippet the rule must flag (self-check fixture)
    NEGATIVE = ""  # snippet the rule must accept

    def check(self, source, ctx):
        raise NotImplementedError

    def finding(self, source, node, message, hint=None, severity=None):
        return Finding(
            rule=self.id,
            name=self.name,
            severity=severity or self.severity,
            path=source.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )
