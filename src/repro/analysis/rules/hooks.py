"""R4/R6/R12: hook gating (syntactic and interprocedural) and mutable
default arguments.

The opt-in instrumentation layers (repro.faults, repro.telemetry,
repro.tracing, repro.checkpoint) hang off well-known attributes --
``_fault`` / ``_tele`` / ``_ledger`` / ``_trace`` on components,
``watchdog`` / ``sampler`` on the engine, ``ledger`` / ``telemetry`` /
``tracer`` / ``checkpointer`` on the accelerator system -- that are
``None`` in the default configuration.  The contract (DESIGN.md
6.2/6.3) is that every invocation is guarded by an ``is not None``
test (directly, through a local alias, in a ternary, or as the left
arm of an ``and``), so the uninstrumented hot path pays exactly one
pointer test and the disabled-hook overhead budgets in bench_sim.py
stay <3%.

R4 checks the direct syntactic form; R12 runs the flow-sensitive
analysis from :mod:`repro.analysis.dataflow` interprocedurally, so a
hook handed to a helper that dereferences its parameter unguarded is
flagged at the call site even though no hook method call appears
there.
"""

import ast

from repro.analysis.dataflow import FlowScan, param_summaries, \
    unsafe_arguments
from repro.analysis.rules.base import Rule

# Attribute names that carry optional instrumentation objects.
HOOK_ATTRS = frozenset({
    "_fault", "_tele", "_ledger",   # component-level hooks
    "_trace", "tracer",             # span-tracing hooks
    "watchdog", "sampler",          # engine-level hooks
    "ledger", "telemetry",          # system-level hooks
    "checkpointer",                 # checkpoint orchestration hook
})

# The instrumentation packages themselves call their own methods
# unconditionally -- that is their job, not a gating violation.
_EXEMPT_PATH_MARKERS = ("repro/faults/", "repro/telemetry/",
                        "repro/tracing/", "repro/checkpoint/",
                        "repro/analysis/")


def _hook_of(expr, assignments):
    """Canonical hook attribute behind *expr*, or None.

    Matches ``self._tele`` style attributes directly and function-local
    aliases (``tele = self._tele; ... tele.foo()``) through the
    assignment table.
    """
    if isinstance(expr, ast.Attribute) and expr.attr in HOOK_ATTRS:
        return expr.attr
    if isinstance(expr, ast.Name):
        for value in assignments.get(expr.id, ()):
            if isinstance(value, ast.Attribute) and value.attr in HOOK_ATTRS:
                return value.attr
    return None


def _test_polarity(test, hook, assignments):
    """How *test* gates *hook*: 'not-none', 'is-none', or None.

    Searches the whole test expression, so BoolOp chains like
    ``self._tele is not None and x.issued_at >= 0`` and calls *inside*
    the test (``self._fault is not None and self._fault.blocked()``)
    are recognized.
    """
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        comparator = node.comparators[0]
        if not (isinstance(comparator, ast.Constant)
                and comparator.value is None):
            continue
        if _hook_of(node.left, assignments) != hook:
            continue
        if isinstance(node.ops[0], ast.IsNot):
            return "not-none"
        if isinstance(node.ops[0], ast.Is):
            return "is-none"
    return None


def _branch_of(conditional, child):
    """Which limb of an If/IfExp/While *child* sits in."""
    if child is conditional.test:
        return "test"
    body = conditional.body if isinstance(conditional.body, list) \
        else [conditional.body]
    if any(child is stmt for stmt in body):
        return "body"
    return "orelse"


class UngatedHookRule(Rule):
    """R4: every optional-hook invocation behind `is not None`."""

    id = "R4"
    name = "ungated-hook"
    severity = "error"
    summary = "fault/telemetry/ledger hook calls must be is-None gated"
    rationale = (
        "Hooks are None in the default configuration; an ungated call "
        "is an AttributeError the moment the instrumented test matrix "
        "does not cover that branch, and a truthiness gate (`if "
        "self._tele:`) invites hooks with __bool__/__len__ semantics to "
        "silently drop events.  The explicit pointer test is also the "
        "entire disabled-hook cost model behind the <3% overhead gates."
    )
    hint = ("wrap the call in `if <hook> is not None:` (alias via a "
            "local first if it is used repeatedly)")

    POSITIVE = (
        "def tick(self, engine):\n"
        "    self._tele.bank_before_tick(self, engine.now)\n"
    )
    NEGATIVE = (
        "def tick(self, engine):\n"
        "    if self._tele is not None:\n"
        "        self._tele.bank_before_tick(self, engine.now)\n"
        "    tele = self._tele\n"
        "    latency = 0 if tele is None else tele.dram_latency()\n"
    )

    def check(self, source, ctx):
        if any(marker in source.rel for marker in _EXEMPT_PATH_MARKERS):
            return
        for info in source.functions:
            assignments = source.local_assignments(info.node)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if source.enclosing_function(node) is not info.node:
                    continue  # nested def: reported under its own name
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                hook = _hook_of(func.value, assignments)
                if hook is None:
                    continue
                if self._guarded(source, info.node, node, hook,
                                 assignments):
                    continue
                yield self.finding(
                    source, node,
                    f"'{ast.unparse(func)}(...)' in '{info.qualname}' is "
                    f"not guarded by an `is not None` test on "
                    f"'{hook}'",
                )

    @staticmethod
    def _guarded(source, func_node, call, hook, assignments):
        for ancestor, child in source.ancestors(call):
            if ancestor is func_node:
                break
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef)):
                break
            if not isinstance(ancestor, (ast.If, ast.IfExp, ast.While)):
                continue
            polarity = _test_polarity(ancestor.test, hook, assignments)
            if polarity is None:
                continue
            branch = _branch_of(ancestor, child)
            if polarity == "not-none" and branch in ("body", "test"):
                return True
            if polarity == "is-none" and branch == "orelse":
                return True
        return False


_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
})


class MutableDefaultRule(Rule):
    """R6: no mutable default arguments anywhere in repro.*."""

    id = "R6"
    name = "mutable-default-arg"
    severity = "error"
    summary = "no mutable default arguments"
    rationale = (
        "A mutable default is shared across every call -- in a "
        "simulator that replays the same configuration twice to prove "
        "bit-identity, state smuggled between runs through a default "
        "list/dict is a determinism bug with no local symptom."
    )
    hint = "default to None and materialize inside the function body"

    POSITIVE = (
        "def enqueue(self, items=[]):\n"
        "    return items\n"
    )
    NEGATIVE = (
        "def enqueue(self, items=None):\n"
        "    return items if items is not None else []\n"
    )

    def check(self, source, ctx):
        for info in source.functions:
            args = info.node.args
            defaults = list(args.defaults) + [
                default for default in args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if isinstance(default, _MUTABLE_DISPLAYS) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                ):
                    yield self.finding(
                        source, default,
                        f"mutable default argument in '{info.qualname}'",
                    )


class InterproceduralHookRule(Rule):
    """R12: hooks must not flow unguarded into dereferencing helpers."""

    id = "R12"
    name = "interprocedural-hook"
    severity = "error"
    summary = ("optional hooks must not flow unguarded into parameters "
               "that are dereferenced")
    rationale = (
        "R4 sees the dereference only when the hook method call is "
        "spelled at the offense site; factoring the call into a helper "
        "(`emit(self._tele, ...)` where `emit` does `tele.record()`) "
        "hides the exact same AttributeError behind one call edge.  "
        "The dataflow pass summarizes every function's deref-unsafe "
        "parameters (transitively, through forwarding helpers) and "
        "flags any optional-hook expression handed to one without a "
        "dominating `is not None` fact at the call site."
    )
    hint = ("test the hook before the call (`if self._tele is not "
            "None: emit(self._tele, ...)`) or make the helper tolerate "
            "None with an early return")

    POSITIVE = (
        "def emit(tele, event):\n"
        "    tele.record(event)\n"
        "def tick(self, engine):\n"
        "    emit(self._tele, 'bank')\n"
    )
    NEGATIVE = (
        "def emit(tele, event):\n"
        "    if tele is None:\n"
        "        return\n"
        "    tele.record(event)\n"
        "def push(tele, event):\n"
        "    tele.record(event)\n"
        "def tick(self, engine):\n"
        "    emit(self._tele, 'bank')\n"
        "    if self._tele is not None:\n"
        "        push(self._tele, 'bank')\n"
    )

    def check(self, source, ctx):
        if any(marker in source.rel for marker in _EXEMPT_PATH_MARKERS):
            return
        summaries = ctx.memo.get(self.id)
        if summaries is None:
            summaries = param_summaries(ctx.callgraph)
            ctx.memo[self.id] = summaries
        callgraph = ctx.callgraph
        for info in source.functions:
            key = (source.rel, info.qualname)
            if key not in callgraph.functions:
                continue
            assignments = source.local_assignments(info.node)
            scan = FlowScan(info.node)
            seen = set()
            for site in scan.calls:
                hits = unsafe_arguments(
                    callgraph, key, site, summaries,
                    lambda path: self._is_hook_path(path, assignments),
                )
                for hit in hits:
                    if id(hit.node) in seen:
                        continue
                    seen.add(id(hit.node))
                    callee_rel, callee_qual = hit.callee
                    yield self.finding(
                        source, hit.node,
                        f"'{ast.unparse(hit.node)}' flows unguarded "
                        f"from '{info.qualname}' into parameter "
                        f"'{hit.param}' of '{callee_qual}' "
                        f"({callee_rel}), which dereferences it",
                    )

    @staticmethod
    def _is_hook_path(path, assignments):
        """Is *path* an optional-hook expression?

        ``self._tele`` / ``engine.watchdog`` style two-element paths
        whose attribute is a known hook name, or a bare local the
        function assigns from one (the alias idiom).
        """
        if len(path) == 2 and path[1] in HOOK_ATTRS:
            return True
        if len(path) == 1:
            for value in assignments.get(path[0], ()):
                if (isinstance(value, ast.Attribute)
                        and value.attr in HOOK_ATTRS):
                    return True
        return False
