"""The simlint rule catalog.

Rules are ordered by id; DESIGN.md 6.5 documents the catalog with the
rationale each rule carries in code.  Selection accepts either the id
("R4") or the slug name ("ungated-hook"), case-insensitively.
"""

from repro.analysis.rules.channels import SingleTokenChannelRule
from repro.analysis.rules.determinism import (
    FloatCycleCompareRule,
    NondeterminismRule,
)
from repro.analysis.rules.hooks import (
    InterproceduralHookRule,
    MutableDefaultRule,
    UngatedHookRule,
)
from repro.analysis.rules.pooling import (
    DirectTokenConstructionRule,
    MissingSlotsRule,
    discover_pooled_classes,
)
from repro.analysis.rules.fusion import FusionPurityRule, FusionSafetyRule
from repro.analysis.rules.schema import (
    SchemaCoherenceRule,
    SchemaLiteralRule,
)
from repro.analysis.rules.snapshot import SnapshotCompletenessRule
from repro.analysis.rules.vectorize import ScalarDriftRule

ALL_RULES = tuple(sorted(
    (
        NondeterminismRule(),
        SingleTokenChannelRule(),
        DirectTokenConstructionRule(),
        UngatedHookRule(),
        FloatCycleCompareRule(),
        MutableDefaultRule(),
        MissingSlotsRule(),
        SchemaLiteralRule(),
        ScalarDriftRule(),
        FusionSafetyRule(),
        SnapshotCompletenessRule(),
        InterproceduralHookRule(),
        FusionPurityRule(),
        SchemaCoherenceRule(),
    ),
    key=lambda rule: int(rule.id[1:]),
))

RULES_BY_KEY = {}
for _rule in ALL_RULES:
    RULES_BY_KEY[_rule.id.lower()] = _rule
    RULES_BY_KEY[_rule.name.lower()] = _rule


def select_rules(spec=None):
    """Resolve a comma-separated id/name spec to rule instances.

    ``None`` / ``"all"`` selects the whole catalog.  Raises ValueError
    naming the unknown entry otherwise, so CLI typos fail loudly.
    """
    if spec is None or spec.strip().lower() in ("", "all"):
        return ALL_RULES
    selected = []
    for part in spec.split(","):
        key = part.strip().lower()
        if not key:
            continue
        rule = RULES_BY_KEY.get(key)
        if rule is None:
            known = ", ".join(rule.id for rule in ALL_RULES)
            raise ValueError(f"unknown rule {part.strip()!r} (known: {known})")
        if rule not in selected:
            selected.append(rule)
    return tuple(selected)


__all__ = [
    "ALL_RULES",
    "RULES_BY_KEY",
    "select_rules",
    "discover_pooled_classes",
]
