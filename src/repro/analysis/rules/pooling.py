"""R3/R7: token pooling discipline and __slots__ on token classes.

Pooled token classes are discovered from the tree itself: any class
passed to (or decorated with) ``repro.core.messages.register_pool``
participates, so a new pooled token type is covered by both rules the
moment it registers -- no linter change needed.
"""

import ast

from repro.analysis.rules.base import Rule

# Function-name prefixes allowed to construct pooled classes directly:
# the acquire helpers whose whole job is the pool-miss fallback path.
ACQUIRE_PREFIXES = ("_new_", "_acquire_", "acquire_")
# Module that owns the pool machinery (constructors there are the API).
POOL_HOME_SUFFIX = "core/messages.py"

# Class-name shape that marks a token/message type for R7 even when it
# is not freelist-pooled.
_TOKEN_NAME_SUFFIXES = (
    "Request", "Response", "Token", "Beat", "Message", "Job",
)


class DirectTokenConstructionRule(Rule):
    """R3: hot paths must acquire pooled tokens, not construct them."""

    id = "R3"
    name = "direct-token-construction"
    severity = "error"
    summary = "no direct pooled-token constructor calls on hot paths"
    rationale = (
        "Steady-state allocation-free operation (REPRO_POOL, DESIGN.md "
        "6.4) holds only while every hot-path token comes from a "
        "freelist acquire; one direct constructor call re-introduces "
        "per-cycle allocation and garbage pressure, and the pool "
        "counters ('fresh' never converging) are a far later, far "
        "vaguer symptom than a named file:line."
    )
    hint = ("go through the acquire helper (e.g. _acquire_response / "
            "channel fields API) so the freelist is consulted first")

    POSITIVE = (
        "from repro.core.messages import register_pool\n"
        "class MomsRequest:\n"
        "    pass\n"
        "register_pool(MomsRequest)\n"
        "def tick(self, engine):\n"
        "    req = MomsRequest(addr, 4, None, 0)\n"
    )
    NEGATIVE = (
        "from repro.core.messages import register_pool\n"
        "class MomsRequest:\n"
        "    pass\n"
        "register_pool(MomsRequest)\n"
        "def _new_request(addr):\n"
        "    MomsRequest._fresh += 1\n"
        "    return MomsRequest(addr, 4, None, 0)\n"
        "def tick(self, engine):\n"
        "    req = _new_request(addr)\n"
    )

    def check(self, source, ctx):
        pooled = ctx.pooled_classes
        if not pooled or source.rel.endswith(POOL_HOME_SUFFIX):
            return
        for info in ctx.hot.hot_functions(source):
            if info.name.startswith(ACQUIRE_PREFIXES):
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if source.enclosing_function(node) is not info.node:
                    continue  # nested def: reported under its own name
                func = node.func
                if isinstance(func, ast.Name):
                    called = func.id
                elif isinstance(func, ast.Attribute):
                    called = func.attr
                else:
                    continue
                if called in pooled:
                    yield self.finding(
                        source, node,
                        f"hot function '{info.qualname}' constructs pooled "
                        f"token '{called}' directly instead of acquiring "
                        f"from its freelist",
                    )


def _has_slots(class_node):
    """dataclass(slots=True) decorator or a __slots__ class attribute."""
    for decorator in class_node.decorator_list:
        if isinstance(decorator, ast.Call):
            target = decorator.func
            name = target.attr if isinstance(target, ast.Attribute) \
                else getattr(target, "id", None)
            if name == "dataclass":
                for keyword in decorator.keywords:
                    if keyword.arg == "slots" \
                            and isinstance(keyword.value, ast.Constant) \
                            and keyword.value.value is True:
                        return True
    for statement in class_node.body:
        targets = ()
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = (statement.target,)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class MissingSlotsRule(Rule):
    """R7: token/message classes must declare __slots__."""

    id = "R7"
    name = "missing-slots"
    severity = "error"
    summary = "token/message classes must use __slots__"
    rationale = (
        "Millions of tokens circulate per run; a per-instance __dict__ "
        "multiplies their footprint and slows every field access on the "
        "hot path.  Freelist pooling also relies on fixed field sets -- "
        "a dict-bearing token can accumulate stale attributes across "
        "recycles, which is exactly the kind of state leak the "
        "bit-identical replays cannot tolerate."
    )
    hint = "declare __slots__ or use @dataclass(slots=True)"

    POSITIVE = (
        "class SpillToken:\n"
        "    def __init__(self, addr):\n"
        "        self.addr = addr\n"
    )
    NEGATIVE = (
        "class SpillToken:\n"
        "    __slots__ = ('addr',)\n"
        "    def __init__(self, addr):\n"
        "        self.addr = addr\n"
    )

    def check(self, source, ctx):
        if not ctx.in_hot_package(source):
            return
        for qualname, class_node in source.classes:
            tokenish = (
                class_node.name in ctx.pooled_classes
                or class_node.name.endswith(_TOKEN_NAME_SUFFIXES)
            )
            if not tokenish:
                continue
            # Exception types named *Error/*Exception never match the
            # suffixes above; bases are not inspected on purpose (a
            # token subclassing a slotted base still needs its own).
            if not _has_slots(class_node):
                yield self.finding(
                    source, class_node,
                    f"token class '{qualname}' has no __slots__",
                )


def discover_pooled_classes(sources):
    """Class names registered with register_pool anywhere in the tree."""
    pooled = set()
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "register_pool":
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        pooled.add(arg.id)
            elif isinstance(node, ast.ClassDef):
                for decorator in node.decorator_list:
                    if isinstance(decorator, ast.Name) \
                            and decorator.id == "register_pool":
                        pooled.add(node.name)
    return frozenset(pooled)
