"""R1/R5: nondeterminism sources and float equality in cycle math.

The reproduction's headline invariant is that a (graph, config, seed)
point produces *bit-identical* cycle counts across engines, pooling,
telemetry, and fault replays.  Anything that lets wall-clock time,
process entropy, or hash/iteration order leak into a tick path breaks
that silently -- the run still "works", the cycle counts just stop
being comparable.  These rules fence the known leaks out of hot code.
"""

import ast

from repro.analysis.rules.base import Rule

# Dotted prefixes whose call anywhere on a hot path is nondeterministic
# (or wall-clock-dependent, which for a cycle-accurate model is the
# same disease).
_FORBIDDEN_PREFIXES = (
    "time.",
    "datetime.",
    "secrets.",
)
_FORBIDDEN_EXACT = (
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
)
_SET_BUILTINS = ("set", "frozenset")
_DICT_VIEWS = ("values", "keys", "items")


def _is_set_expression(node, assignments):
    """Does *node* evaluate to a set (literal, call, or local alias)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _SET_BUILTINS:
        return True
    if isinstance(node, ast.Name):
        for value in assignments.get(node.id, ()):
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name) \
                    and value.func.id in _SET_BUILTINS:
                return True
    return False


class NondeterminismRule(Rule):
    """R1: wall-clock, entropy, and unordered iteration in hot code."""

    id = "R1"
    name = "nondeterminism"
    severity = "error"
    summary = ("no wall-clock, unseeded randomness, or unordered-set "
               "iteration on hot paths")
    rationale = (
        "Cycle counts must be a pure function of (graph, config, seed). "
        "time.*/datetime.* make model state depend on host speed, "
        "os.urandom/uuid4/secrets and module-level random.* draw from "
        "process entropy or cross-test global state, and set iteration "
        "order is hash-randomized -- any of them feeding a cycle-ordered "
        "decision silently forks the trajectory between two runs."
    )
    hint = ("derive times from engine.now, randomness from a seeded "
            "random.Random(seed) carried by the component, and iterate "
            "sorted() views instead of raw sets")

    POSITIVE = (
        "import time\n"
        "def tick(self, engine):\n"
        "    self.started = time.monotonic()\n"
    )
    NEGATIVE = (
        "def tick(self, engine):\n"
        "    self.started = engine.now\n"
        "    for key in sorted(self.waiting):\n"
        "        self.serve(key)\n"
    )

    def check(self, source, ctx):
        for info in ctx.hot.hot_functions(source):
            assignments = source.local_assignments(info.node)
            for node in ast.walk(info.node):
                if isinstance(node, (ast.Call, ast.For, ast.AsyncFor)) \
                        and source.enclosing_function(node) is not info.node:
                    continue  # nested def: reported under its own name
                if isinstance(node, ast.Call):
                    yield from self._check_call(source, info, node)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._check_iteration(
                        source, info, node.iter, assignments)
                elif isinstance(node, ast.comprehension):
                    yield from self._check_iteration(
                        source, info, node.iter, assignments)

    def _check_call(self, source, info, node):
        dotted = source.resolve_call_module(node.func)
        if dotted is None:
            return
        if dotted.startswith("random."):
            # A seeded generator is the sanctioned idiom; only the
            # hidden-global-state module API is forbidden.
            if dotted == "random.Random" and node.args:
                return
            yield self.finding(
                source, node,
                f"hot function '{info.qualname}' calls '{dotted}' "
                f"(module-level RNG shares hidden global state)",
            )
            return
        if dotted in _FORBIDDEN_EXACT or any(
                dotted.startswith(prefix) for prefix in _FORBIDDEN_PREFIXES):
            yield self.finding(
                source, node,
                f"hot function '{info.qualname}' calls '{dotted}' "
                f"(nondeterministic / wall-clock dependent)",
            )

    def _check_iteration(self, source, info, iter_node, assignments):
        if _is_set_expression(iter_node, assignments):
            yield self.finding(
                source, iter_node,
                f"hot function '{info.qualname}' iterates a set "
                f"(hash-randomized order feeding cycle-ordered work)",
            )
            return
        if isinstance(iter_node, ast.Call) \
                and isinstance(iter_node.func, ast.Attribute) \
                and iter_node.func.attr in _DICT_VIEWS \
                and not iter_node.args and not iter_node.keywords:
            yield self.finding(
                source, iter_node,
                f"hot function '{info.qualname}' iterates a "
                f"'.{iter_node.func.attr}()' view; insertion order must "
                f"itself be deterministic for cycle-ordered decisions",
                severity="warning",
            )


class FloatCycleCompareRule(Rule):
    """R5: exact float equality in cycle/latency arithmetic."""

    id = "R5"
    name = "float-cycle-compare"
    severity = "warning"
    summary = "no ==/!= against float literals or true-division results"
    rationale = (
        "Cycle and latency accounting must stay in exact integer "
        "arithmetic; the moment a comparison keys on a float literal or "
        "a true-division result, platform rounding decides a branch and "
        "two hosts can disagree on a cycle count while both look "
        "'correct'."
    )
    hint = ("keep cycle math integral (//, divmod, scaled ints) or "
            "compare with an explicit tolerance")

    POSITIVE = (
        "def occupancy_ratio(used, total):\n"
        "    if used / total == 0.5:\n"
        "        return 'half'\n"
    )
    NEGATIVE = (
        "def occupancy_ratio(used, total):\n"
        "    if used * 2 == total:\n"
        "        return 'half'\n"
    )

    def check(self, source, ctx):
        if not ctx.in_hot_package(source):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparands = [node.left] + list(node.comparators)
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(self._float_ish(expr) for expr in comparands):
                    yield self.finding(
                        source, node,
                        "equality comparison involving float arithmetic "
                        "in cycle/latency code",
                    )
                    break

    @staticmethod
    def _float_ish(expr):
        if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            return True
        return False
