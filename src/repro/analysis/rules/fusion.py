"""R10: fusion-safety guard for fused ``step_n`` kernels.

The macro-tick engine (DESIGN.md 6.9) lets a component cover a whole
run of cycles with one ``step_n(engine, budget)`` call, on the
contract that the batch replicates the exact per-cycle effects of the
fused window *without* consulting per-cycle context: the engine
advances ``now`` only after the call returns, so ``engine.now`` is
frozen at the run's first cycle for the entire batch.  A kernel that
reads ``engine.now`` per element -- inside the loop or comprehension
that walks the batch -- is almost certainly stamping every element
with the run's start cycle where the unfused path would have stamped
``start, start+1, ...``: the fused and unfused runs then diverge in a
way no cycle-count assertion catches (timestamps live in stats,
traces, or queued tokens, not in ``result.cycles``).

Reading ``engine.now`` once, outside any per-element loop, stays
legal: that is how a kernel derives the window base to compute
per-element cycles arithmetically (``base + i``), which is the correct
fused form.
"""

import ast

from repro.analysis.rules.base import Rule

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)


def _engine_param(node):
    """The name bound to the engine inside a ``step_n`` definition.

    The protocol signature is ``step_n(self, engine, budget)``; tolerate
    free functions (``step_n(engine, budget)``) by skipping a leading
    ``self``/``cls``.
    """
    args = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return args[0] if args else None


def _now_reads(node, engine_name):
    """Yield ``engine.now`` attribute reads anywhere under *node*."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "now"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == engine_name
        ):
            yield sub


class FusionSafetyRule(Rule):
    """R10: no per-element ``engine.now`` reads inside ``step_n``."""

    id = "R10"
    name = "fusion-safety"
    severity = "error"
    summary = "no per-element engine.now reads in fused step_n kernels"
    rationale = (
        "The engine advances now only after step_n returns, so "
        "engine.now is frozen at the fused run's first cycle for the "
        "whole batch.  A per-element read stamps every element with "
        "the start cycle where the unfused path would have stamped "
        "start, start+1, ...; the divergence hides in timestamps "
        "(stats, traces, queued tokens) that no cycle-count assertion "
        "compares, breaking the fused/unfused bit-identity contract."
    )
    hint = (
        "read engine.now once before the loop and derive per-element "
        "cycles arithmetically (base + index); work that genuinely "
        "needs the live clock must stay on per-cycle tick()"
    )

    POSITIVE = (
        "def step_n(self, engine, budget):\n"
        "    m = 0\n"
        "    for _ in range(budget):\n"
        "        self.trace.append(engine.now + m)\n"
        "        m += 1\n"
        "    return m\n"
    )
    NEGATIVE = (
        "def step_n(self, engine, budget):\n"
        "    base = engine.now\n"
        "    m = self.mshrs.failing_insert_run(self.addr, budget,\n"
        "                                      vec=True)\n"
        "    self.trace.extend(base + i for i in range(m))\n"
        "    self.stats.stall_mshr += m\n"
        "    return m\n"
    )

    def check(self, source, ctx):
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name != "step_n":
                continue
            engine_name = _engine_param(node)
            if engine_name is None:
                continue
            seen = set()
            for scope in ast.walk(node):
                if isinstance(scope, _LOOPS):
                    # Everything under a loop -- body, condition, and
                    # iterable included -- re-evaluates per iteration.
                    parts = [scope]
                elif isinstance(scope, _COMPREHENSIONS):
                    # Per-element scope; only the first generator's
                    # source iterable evaluates once, outside it.
                    parts = ([scope.key, scope.value]
                             if isinstance(scope, ast.DictComp)
                             else [scope.elt])
                    parts += [cond for gen in scope.generators
                              for cond in gen.ifs]
                    parts += [gen.iter for gen in scope.generators[1:]]
                else:
                    continue
                for part in parts:
                    for read in _now_reads(part, engine_name):
                        if id(read) in seen:
                            continue
                        seen.add(id(read))
                        yield self.finding(
                            source, read,
                            "per-element engine.now read inside fused "
                            f"'{node.name}' kernel (now is frozen at "
                            "the run's first cycle for the whole "
                            "batch)",
                        )
