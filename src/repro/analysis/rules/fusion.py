"""R10/R13: fusion-safety and whole-region fusion purity.

The macro-tick engine (DESIGN.md 6.9) lets a component cover a whole
run of cycles with one ``step_n(engine, budget)`` call, on the
contract that the batch replicates the exact per-cycle effects of the
fused window *without* consulting per-cycle context: the engine
advances ``now`` only after the call returns, so ``engine.now`` is
frozen at the run's first cycle for the entire batch.  A kernel that
reads ``engine.now`` per element -- inside the loop or comprehension
that walks the batch -- is almost certainly stamping every element
with the run's start cycle where the unfused path would have stamped
``start, start+1, ...``: the fused and unfused runs then diverge in a
way no cycle-count assertion catches (timestamps live in stats,
traces, or queued tokens, not in ``result.cycles``).

Reading ``engine.now`` once, outside any per-element loop, stays
legal: that is how a kernel derives the window base to compute
per-element cycles arithmetically (``base + i``), which is the correct
fused form.

R10 checks the ``step_n`` body itself.  R13 extends the contract to
the whole *fused region* -- ``step_n`` plus everything reachable from
it through the call graph -- and to the other silent-cycle clauses of
the protocol: fused cycles may not invoke instrumentation hooks the
kernel did not decline, may not push into channels, may not pop from a
channel whose space watchers were not declined, and may not wake other
components.
"""

import ast

from repro.analysis.callgraph import _call_nodes
from repro.analysis.rules.base import Rule

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)


def _engine_param(node):
    """The name bound to the engine inside a ``step_n`` definition.

    The protocol signature is ``step_n(self, engine, budget)``; tolerate
    free functions (``step_n(engine, budget)``) by skipping a leading
    ``self``/``cls``.
    """
    args = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return args[0] if args else None


def _now_reads(node, engine_name):
    """Yield ``engine.now`` attribute reads anywhere under *node*."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "now"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == engine_name
        ):
            yield sub


def per_element_parts(scope):
    """Sub-nodes of *scope* that re-evaluate once per element, or None.

    For a loop, everything under it -- body, condition, and iterable
    included -- re-evaluates per iteration.  For a comprehension, the
    element expression, every ``if`` filter, and every generator source
    except the first (which evaluates once, outside the scope).  Shared
    by R10 (``engine.now`` reads in ``step_n``) and R13 (the same reads
    in reachable helpers, plus per-element call sites).
    """
    if isinstance(scope, _LOOPS):
        return [scope]
    if isinstance(scope, _COMPREHENSIONS):
        parts = ([scope.key, scope.value]
                 if isinstance(scope, ast.DictComp)
                 else [scope.elt])
        parts += [cond for gen in scope.generators for cond in gen.ifs]
        parts += [gen.iter for gen in scope.generators[1:]]
        return parts
    return None


def loop_scoped(func_node, collect):
    """Unique nodes *collect* yields from per-element parts of *func_node*.

    *collect* is a callable taking one sub-tree and yielding AST nodes;
    nodes found under nested per-element scopes are deduplicated by
    identity, preserving first-visit order.
    """
    seen = set()
    found = []
    for scope in ast.walk(func_node):
        parts = per_element_parts(scope)
        if parts is None:
            continue
        for part in parts:
            for node in collect(part):
                if id(node) in seen:
                    continue
                seen.add(id(node))
                found.append(node)
    return found


class FusionSafetyRule(Rule):
    """R10: no per-element ``engine.now`` reads inside ``step_n``."""

    id = "R10"
    name = "fusion-safety"
    severity = "error"
    summary = "no per-element engine.now reads in fused step_n kernels"
    rationale = (
        "The engine advances now only after step_n returns, so "
        "engine.now is frozen at the fused run's first cycle for the "
        "whole batch.  A per-element read stamps every element with "
        "the start cycle where the unfused path would have stamped "
        "start, start+1, ...; the divergence hides in timestamps "
        "(stats, traces, queued tokens) that no cycle-count assertion "
        "compares, breaking the fused/unfused bit-identity contract."
    )
    hint = (
        "read engine.now once before the loop and derive per-element "
        "cycles arithmetically (base + index); work that genuinely "
        "needs the live clock must stay on per-cycle tick()"
    )

    POSITIVE = (
        "def step_n(self, engine, budget):\n"
        "    m = 0\n"
        "    for _ in range(budget):\n"
        "        self.trace.append(engine.now + m)\n"
        "        m += 1\n"
        "    return m\n"
    )
    NEGATIVE = (
        "def step_n(self, engine, budget):\n"
        "    base = engine.now\n"
        "    m = self.mshrs.failing_insert_run(self.addr, budget,\n"
        "                                      vec=True)\n"
        "    self.trace.extend(base + i for i in range(m))\n"
        "    self.stats.stall_mshr += m\n"
        "    return m\n"
    )

    def check(self, source, ctx):
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name != "step_n":
                continue
            engine_name = _engine_param(node)
            if engine_name is None:
                continue
            reads = loop_scoped(
                node, lambda part: _now_reads(part, engine_name)
            )
            for read in reads:
                yield self.finding(
                    source, read,
                    "per-element engine.now read inside fused "
                    f"'{node.name}' kernel (now is frozen at "
                    "the run's first cycle for the whole "
                    "batch)",
                )


# -- R13: whole-region purity ---------------------------------------------

# Component-level instrumentation hooks whose side effects must not
# occur during silently fused cycles.
_FUSED_HOOK_ATTRS = frozenset({"_fault", "_tele", "_ledger", "_trace"})

# Channel space-watcher lists; a pop during a silent cycle is legal
# only when a terminating decline proves both are empty.
_SPACE_ATTRS = frozenset({"_space_subs", "_space_requests"})

# Traversal does not descend into the engine/channel primitives: their
# internals are the scheduler's contract, not the fused kernel's, and
# the kernel-visible operations on them (push/pop/wake) are checked at
# the call site by name.
_SKIP_CLASSES = frozenset({
    "Channel", "SoaChannel", "DelayLine", "Engine", "LegacyEngine",
})


def _terminates(body):
    return any(isinstance(stmt, (ast.Return, ast.Raise)) for stmt in body)


def _decline_candidates(test):
    """Attribute names a terminating ``if`` declines fusion on.

    Recognizes the protocol's two decline spellings: ``X.attr is not
    None`` ("hook present, stay per-cycle") and a bare truthy attribute
    in an ``or`` chain ("space watchers registered, stay per-cycle").
    ``and`` chains are not declines -- a single truthy conjunct does
    not guarantee the bail-out.
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        for value in test.values:
            yield from _decline_candidates(value)
        return
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and isinstance(test.left, ast.Attribute)):
        yield test.left.attr
        return
    if isinstance(test, ast.Attribute):
        yield test.attr


def _declined_names(func_node):
    declined = set()
    for stmt in ast.walk(func_node):
        if isinstance(stmt, ast.If) and _terminates(stmt.body):
            declined.update(_decline_candidates(stmt.test))
    return declined


def _hook_derefs(node):
    """Yield (hook name, anchor node) dereferences under *node*."""
    for sub in ast.walk(node):
        if (isinstance(sub, (ast.Attribute, ast.Subscript))
                and isinstance(sub.value, ast.Attribute)
                and sub.value.attr in _FUSED_HOOK_ATTRS):
            yield sub.value.attr, sub
        elif (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _FUSED_HOOK_ATTRS):
            yield sub.func.attr, sub


def _reads_now(func_node):
    """Does *func_node* read the simulation clock anywhere?

    Through its own ``engine`` parameter or through a stored engine
    reference (``self._engine.now`` / ``self.engine.now``).
    """
    for sub in ast.walk(func_node):
        if not (isinstance(sub, ast.Attribute) and sub.attr == "now"):
            continue
        base = sub.value
        if isinstance(base, ast.Name) and base.id == "engine":
            return True
        if isinstance(base, ast.Attribute) and base.attr in ("engine",
                                                             "_engine"):
            return True
    return False


class FusionPurityRule(Rule):
    """R13: the whole fused region honors the silent-cycle contract."""

    id = "R13"
    name = "fusion-purity"
    severity = "error"
    summary = ("step_n and everything it reaches may only touch state "
               "its decline tests cover")
    rationale = (
        "A fused run replays silent cycles in bulk, so the protocol "
        "(DESIGN.md 6.9) is a whole-region property: any helper the "
        "kernel calls can invoke an undeclined hook, push a token, pop "
        "past a waiting space watcher, or wake another component -- "
        "side effects the per-cycle path would have interleaved with "
        "other components' ticks, silently breaking fused/unfused "
        "bit-identity.  R10 sees only the step_n body; R13 closes the "
        "region over the call graph and checks every clause."
    )
    hint = (
        "decline fusion (return 0) while the offending hook or space "
        "watcher is active, keep the mutation on the per-cycle tick() "
        "path, or restructure the helper so the fused call cannot "
        "reach it"
    )

    POSITIVE = (
        "class RoguePE:\n"
        "    def step_n(self, engine, budget):\n"
        "        self._tele.record(budget)\n"
        "        return 0\n"
    )
    NEGATIVE = (
        "class QuietPE:\n"
        "    def step_n(self, engine, budget):\n"
        "        if self._tele is not None or self._trace is not None:\n"
        "            return 0\n"
        "        if self._fault is not None or self._ledger is not None:\n"
        "            return 0\n"
        "        base = engine.now\n"
        "        m = self._drain(budget)\n"
        "        self.stats.busy += m\n"
        "        self.marks.append(base + m)\n"
        "        return m\n"
        "    def _drain(self, budget):\n"
        "        count = 0\n"
        "        for _ in range(budget):\n"
        "            count += 1\n"
        "        return count\n"
    )

    def check(self, source, ctx):
        buckets = ctx.memo.get(self.id)
        if buckets is None:
            buckets = self._analyze(ctx)
            ctx.memo[self.id] = buckets
        for node, message in buckets.get(source.rel, ()):
            yield self.finding(source, node, message)

    # -- whole-program analysis ---------------------------------------------

    def _analyze(self, ctx):
        callgraph = ctx.callgraph
        buckets = {}
        flagged = set()  # (rel, line, facet) dedup across kernels

        def report(rel, node, facet, message):
            marker = (rel, getattr(node, "lineno", 1), facet)
            if marker in flagged:
                return
            flagged.add(marker)
            buckets.setdefault(rel, []).append((node, message))

        for key in sorted(callgraph.functions):
            info = callgraph.functions[key]
            if info.name != "step_n":
                continue
            owner = info.class_name or key[1]
            label = f"'{owner}.step_n'" if info.class_name \
                else "'step_n'"
            # The kernel declines its hooks up front, so a call *through*
            # a declined hook (`self._ledger.issue(...)` behind `if
            # self._ledger is not None`) is dead in the fused window --
            # traversing its name-dispatch edge would drag unrelated
            # `issue` methods into the region.
            declined_hooks = (_declined_names(info.node)
                              & _FUSED_HOOK_ATTRS)
            region = self._region(callgraph, key, declined_hooks)
            declined = set()
            for region_key in region:
                declined |= _declined_names(
                    callgraph.functions[region_key].node
                )
            space_ok = bool(declined & _SPACE_ATTRS)
            for region_key in sorted(region):
                self._check_function(
                    callgraph, key, region_key, region, declined,
                    space_ok, label, report,
                )
        for rel in buckets:
            buckets[rel].sort(key=lambda pair: (
                getattr(pair[0], "lineno", 1),
                getattr(pair[0], "col_offset", 0),
                pair[1],
            ))
        return buckets

    @staticmethod
    def _region(callgraph, seed, declined_hooks):
        """Fused region: closure over call edges alive under the declines."""

        def through_declined(func_expr):
            node = func_expr
            while isinstance(node, ast.Attribute):
                if node.attr in declined_hooks:
                    return True
                node = node.value
            return False

        seen = set()
        queue = [seed]
        while queue:
            key = queue.pop(0)
            if key in seen or key not in callgraph.functions:
                continue
            info = callgraph.functions[key]
            if info.class_name in _SKIP_CLASSES:
                continue
            seen.add(key)
            for call in _call_nodes(info.node):
                if through_declined(call.func):
                    continue
                for callee in callgraph.resolve_call(key, call):
                    if callee not in seen:
                        queue.append(callee)
        return seen

    def _check_function(self, callgraph, step_key, region_key, region,
                        declined, space_ok, label, report):
        rel = region_key[0]
        info = callgraph.functions[region_key]
        node = info.node
        here = (f"in '{info.qualname}' (fused region of {label})"
                if region_key != step_key else f"in {label}")
        for hook, anchor in _hook_derefs(node):
            if hook not in declined:
                report(
                    rel, anchor, f"hook:{hook}",
                    f"'{hook}' dereference {here} without a fusion "
                    f"decline on '{hook}' (hook side effects must not "
                    f"run inside silently fused cycles)",
                )
        for call in ast.walk(node):
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)):
                continue
            attr = call.func.attr
            if attr == "push":
                report(
                    rel, call, "push",
                    f"channel push {here}: fused cycles are silent and "
                    f"must not produce tokens",
                )
            elif attr == "pop" and not space_ok:
                report(
                    rel, call, "pop",
                    f"channel pop {here} without declining fusion on "
                    f"registered space watchers (_space_subs / "
                    f"_space_requests): a silent pop would skip their "
                    f"wake",
                )
            elif attr in ("wake", "wake_at"):
                if not any(isinstance(arg, ast.Name)
                           and arg.id == "self" for arg in call.args):
                    report(
                        rel, call, "wake",
                        f"wake of another component {here}: fused "
                        f"cycles must not alter other components' "
                        f"schedules",
                    )
        if region_key != step_key:
            engine_name = _engine_param(node)
            if engine_name is not None and node.name != "step_n":
                reads = loop_scoped(
                    node, lambda part: _now_reads(part, engine_name)
                )
                for read in reads:
                    report(
                        rel, read, "now",
                        f"per-element engine.now read {here} (now is "
                        f"frozen for the whole fused batch)",
                    )
        # Per-element call sites: a helper that reads the clock even
        # once becomes a per-element read when invoked from a loop.
        calls = loop_scoped(
            node,
            lambda part: (sub for sub in ast.walk(part)
                          if isinstance(sub, ast.Call)),
        )
        for call in calls:
            for callee in callgraph.resolve_call(region_key, call):
                if callee not in region or callee == region_key:
                    continue
                callee_info = callgraph.functions[callee]
                if _reads_now(callee_info.node):
                    report(
                        rel, call, "now-call",
                        f"per-element call to "
                        f"'{callee_info.qualname}' {here}, which "
                        f"reads the simulation clock (now is frozen "
                        f"for the whole fused batch)",
                    )
                    break
