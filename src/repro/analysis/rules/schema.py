"""R8: versioned-row literals must reference the schema constants.

Journal rows (``repro.experiments.common.JOURNAL_SCHEMA``), activity
summaries (``repro.core.stats.ACTIVITY_SCHEMA_VERSION``) and telemetry
exports (``TELEMETRY_SCHEMA_VERSION``) are all consumed by tolerant
readers that key their compatibility decisions on the embedded version
number.  A writer that inlines the number as a literal keeps "working"
when the constant is bumped -- and silently stamps rows with a stale
version, which is exactly the drift the tolerant parsing was built to
survive, not to create.
"""

import ast

from repro.analysis.rules.base import Rule

_VERSION_KEYS = ("schema", "version")


class SchemaLiteralRule(Rule):
    """R8: no integer literals under 'schema'/'version' dict keys."""

    id = "R8"
    name = "schema-literal"
    severity = "error"
    summary = "schema/version row fields must reference the constants"
    rationale = (
        "Tolerant readers (journal --resume, telemetry validators) "
        "compare the embedded version against the module constant; a "
        "literal in the writer decouples the two, so bumping the "
        "constant no longer bumps the rows and stale data passes as "
        "current."
    )
    hint = ("reference JOURNAL_SCHEMA / ACTIVITY_SCHEMA_VERSION / "
            "TELEMETRY_SCHEMA_VERSION (or define a constant next to the "
            "new writer)")

    POSITIVE = (
        "def journal_row(point):\n"
        "    return {'schema': 2, 'point': repr(point)}\n"
    )
    NEGATIVE = (
        "JOURNAL_SCHEMA = 2\n"
        "def journal_row(point):\n"
        "    return {'schema': JOURNAL_SCHEMA, 'point': repr(point)}\n"
    )

    def check(self, source, ctx):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant)
                        and key.value in _VERSION_KEYS
                        and isinstance(value, ast.Constant)
                        and type(value.value) is int):
                    yield self.finding(
                        source, value,
                        f"row field '{key.value}' is the integer literal "
                        f"{value.value}; writers must reference the "
                        f"schema constant",
                    )
