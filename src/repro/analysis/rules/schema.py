"""R8/R14: versioned-row literals and whole-program schema coherence.

Journal rows (``repro.experiments.common.JOURNAL_SCHEMA``), activity
summaries (``repro.core.stats.ACTIVITY_SCHEMA_VERSION``) and telemetry
exports (``TELEMETRY_SCHEMA_VERSION``) are all consumed by tolerant
readers that key their compatibility decisions on the embedded version
number.  A writer that inlines the number as a literal keeps "working"
when the constant is bumped -- and silently stamps rows with a stale
version, which is exactly the drift the tolerant parsing was built to
survive, not to create (R8).

R14 checks the other half of the contract: the *key sets* the writers
emit and the readers consume.  Each versioned schema is pinned in
:data:`SCHEMA_CONTRACTS` -- the version number and the exact set of
string keys the writer's dict literals carry at that version.  The
pass recomputes both from source; keys that changed while the version
constant did not is the silent-drift bug the versioning exists to
prevent, and a reader consulting a key no writer emits is dead
tolerant-fallback code waiting to mask a typo.  Bumping a version
legitimately requires re-pinning the contract here -- that forced diff
is the review hook.
"""

import ast

from repro.analysis.rules.base import Rule

_VERSION_KEYS = ("schema", "version")


class SchemaLiteralRule(Rule):
    """R8: no integer literals under 'schema'/'version' dict keys."""

    id = "R8"
    name = "schema-literal"
    severity = "error"
    summary = "schema/version row fields must reference the constants"
    rationale = (
        "Tolerant readers (journal --resume, telemetry validators) "
        "compare the embedded version against the module constant; a "
        "literal in the writer decouples the two, so bumping the "
        "constant no longer bumps the rows and stale data passes as "
        "current."
    )
    hint = ("reference JOURNAL_SCHEMA / ACTIVITY_SCHEMA_VERSION / "
            "TELEMETRY_SCHEMA_VERSION (or define a constant next to the "
            "new writer)")

    POSITIVE = (
        "def journal_row(point):\n"
        "    return {'schema': 2, 'point': repr(point)}\n"
    )
    NEGATIVE = (
        "JOURNAL_SCHEMA = 2\n"
        "def journal_row(point):\n"
        "    return {'schema': JOURNAL_SCHEMA, 'point': repr(point)}\n"
    )

    def check(self, source, ctx):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant)
                        and key.value in _VERSION_KEYS
                        and isinstance(value, ast.Constant)
                        and type(value.value) is int):
                    yield self.finding(
                        source, value,
                        f"row field '{key.value}' is the integer literal "
                        f"{value.value}; writers must reference the "
                        f"schema constant",
                    )


# -- R14: the pinned schema contracts --------------------------------------

class SchemaContract:
    """One versioned row schema: its constant, writer, and readers.

    ``rel`` matches a repo-relative path by exact name or trailing
    ``/<rel>`` component; ``writer_keys`` is the full recursive set of
    string keys the writer's dict literals carry at ``version``
    (nested dicts included -- readers index into them).
    """

    __slots__ = ("name", "rel", "constant", "version", "writer",
                 "writer_keys", "readers", "extra_reader_keys")

    def __init__(self, name, rel, constant, version, writer,
                 writer_keys, readers=(), extra_reader_keys=()):
        self.name = name
        self.rel = rel
        self.constant = constant
        self.version = version
        self.writer = writer
        self.writer_keys = frozenset(writer_keys)
        self.readers = tuple(readers)  # (rel, qualname) pairs
        self.extra_reader_keys = frozenset(extra_reader_keys)


# The pin table.  Changing a writer's keys requires bumping its version
# constant; bumping the constant requires re-pinning the entry here
# (both directions produce an R14 finding until done).
SCHEMA_CONTRACTS = (
    SchemaContract(
        name="engine-activity",
        rel="repro/core/stats.py",
        constant="ACTIVITY_SCHEMA_VERSION",
        version=3,
        writer="EngineActivity.as_dict",
        writer_keys={
            "version", "cycles_simulated", "cycles_skipped",
            "component_ticks", "component_wakes", "all_tick_equivalent",
            "runs", "fused_runs", "fused_cycles", "mean_run_len",
            "fusion_abort_reasons", "by_kind",
        },
    ),
    SchemaContract(
        name="telemetry-summary",
        rel="repro/telemetry/collector.py",
        constant="TELEMETRY_SCHEMA_VERSION",
        version=2,
        writer="Telemetry.summary",
        writer_keys={
            "version", "cycles", "sample_interval", "samples",
            "samples_dropped", "spans", "spans_dropped", "mshr_peak",
            "mshr_mean", "fusion", "fused_runs", "fused_cycles",
            "mean_run_len", "abort_reasons", "pe_stalls", "bank_stalls",
            "cache", "requests", "hits", "secondary_misses",
            "primary_misses", "no_dram_fraction", "merge_rate",
            "moms_latency", "miss_latency", "dram_latency", "dram",
            "single_line_fraction", "effective_bw_ratio",
        },
        readers=(("repro/report.py", "telemetry_summary_line"),),
        # Latency percentiles come from LatencyHistogram.compact(),
        # whose rows nest under the *_latency keys.
        extra_reader_keys={"p50", "p99"},
    ),
    SchemaContract(
        name="journal-row",
        rel="repro/experiments/common.py",
        constant="JOURNAL_SCHEMA",
        version=2,
        writer="_run_points_hardened.finish",
        writer_keys={
            "schema", "index", "fingerprint", "point", "status",
            "attempt", "payload", "error",
        },
        readers=(
            ("repro/experiments/common.py", "_decode_payload"),
            ("repro/experiments/common.py", "_load_journal"),
        ),
    ),
    # Self-check contract: matched only by the in-memory fixture rel
    # the rule tests lint against (no repo file is named fixture.py).
    SchemaContract(
        name="fixture-row",
        rel="fixture.py",
        constant="ROW_SCHEMA",
        version=1,
        writer="as_row",
        writer_keys={"schema", "alpha"},
        readers=(("fixture.py", "read_row"),),
    ),
)


def _rel_matches(rel, pin):
    return rel == pin or rel.endswith("/" + pin)


def _module_constant(source, name):
    """(value, node) of a module-level integer assignment, or None."""
    for stmt in source.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (isinstance(target, ast.Name) and target.id == name
                    and isinstance(stmt.value, ast.Constant)
                    and type(stmt.value.value) is int):
                return stmt.value.value, stmt
    return None


def _function_info(source, qualname):
    for info in source.functions:
        if info.qualname == qualname:
            return info
    return None


def _literal_dict_keys(func_node):
    """All string keys of dict literals in *func_node*, nested included."""
    keys = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    keys.add(key.value)
    return keys


def _key_reads(func_node):
    """Yield (key, anchor node) string-key reads in *func_node*.

    ``row["k"]`` (load context), ``row.get("k", ...)``, ``"k" in row``.
    """
    for node in ast.walk(func_node):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            yield node.slice.value, node
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            yield node.args[0].value, node
        elif (isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)):
            yield node.left.value, node


class SchemaCoherenceRule(Rule):
    """R14: writer/reader key sets must match the pinned contract."""

    id = "R14"
    name = "schema-coherence"
    severity = "error"
    summary = ("versioned schema key sets must match the pin table, "
               "with a version bump on change")
    rationale = (
        "Tolerant readers mask schema drift by design: a writer that "
        "grows or renames a key without bumping its version constant "
        "ships rows old readers silently misparse, and a reader "
        "consulting a key no writer emits falls back to its default "
        "forever -- both bugs with no local symptom.  Recomputing the "
        "key sets from source and diffing them against the pinned "
        "contract turns either drift into a lint finding at the "
        "offending line."
    )
    hint = (
        "if the key change is intentional, bump the schema's version "
        "constant and re-pin the entry in SCHEMA_CONTRACTS "
        "(repro/analysis/rules/schema.py) in the same commit"
    )

    POSITIVE = (
        "ROW_SCHEMA = 1\n"
        "def as_row():\n"
        "    return {'schema': ROW_SCHEMA, 'alpha': 1, 'beta': 2}\n"
        "def read_row(row):\n"
        "    return row['alpha']\n"
    )
    NEGATIVE = (
        "ROW_SCHEMA = 1\n"
        "def as_row():\n"
        "    return {'schema': ROW_SCHEMA, 'alpha': 1}\n"
        "def read_row(row):\n"
        "    return row.get('alpha', 0)\n"
    )

    def check(self, source, ctx):
        for contract in SCHEMA_CONTRACTS:
            yield from self._check_version_and_writer(source, contract)
            yield from self._check_readers(source, ctx, contract)

    def _check_version_and_writer(self, source, contract):
        if not _rel_matches(source.rel, contract.rel):
            return
        version = None
        found = _module_constant(source, contract.constant)
        if found is not None:
            version, node = found
            if version != contract.version:
                yield self.finding(
                    source, node,
                    f"{contract.constant} is {version} but the "
                    f"'{contract.name}' contract pins version "
                    f"{contract.version}: re-pin the entry in "
                    f"SCHEMA_CONTRACTS with the new version and key "
                    f"set",
                )
                return  # stale pin table; key diffs would be noise
        info = _function_info(source, contract.writer)
        if info is None:
            return  # writer moved/removed: pin update caught in review
        keys = _literal_dict_keys(info.node)
        if keys != contract.writer_keys:
            added = sorted(keys - contract.writer_keys)
            removed = sorted(contract.writer_keys - keys)
            parts = []
            if added:
                parts.append(f"added {added}")
            if removed:
                parts.append(f"removed {removed}")
            yield self.finding(
                source, info.node,
                f"'{contract.writer}' keys changed without a version "
                f"bump ({', '.join(parts)}): '{contract.name}' is "
                f"pinned at version {contract.version} with the old "
                f"key set",
            )

    def _check_readers(self, source, ctx, contract):
        readers_here = [qual for rel, qual in contract.readers
                        if _rel_matches(source.rel, rel)]
        if not readers_here:
            return
        allowed = self._writer_keys(ctx, contract)
        if allowed is None:
            return  # writer not in the linted tree; nothing to diff
        allowed = allowed | contract.extra_reader_keys
        for qualname in readers_here:
            info = _function_info(source, qualname)
            if info is None:
                continue
            for key, node in _key_reads(info.node):
                if key not in allowed:
                    yield self.finding(
                        source, node,
                        f"'{qualname}' reads key '{key}' that no "
                        f"'{contract.name}' writer emits: the tolerant "
                        f"fallback would mask this permanently",
                    )

    @staticmethod
    def _writer_keys(ctx, contract):
        """Recursive writer key set recomputed from the linted tree."""
        memo = ctx.memo.setdefault("R14", {})
        if contract.name in memo:
            return memo[contract.name]
        keys = None
        for source in ctx.sources:
            if not _rel_matches(source.rel, contract.rel):
                continue
            info = _function_info(source, contract.writer)
            if info is not None:
                keys = frozenset(_literal_dict_keys(info.node))
                break
        memo[contract.name] = keys
        return keys
