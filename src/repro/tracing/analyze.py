"""Critical-path decomposition of sampled request spans.

Each completed span is cut into consecutive per-stage segments on the
request's own timeline, labelled queueing or service:

========== ========= ====================================================
stage      kind      segment
========== ========= ====================================================
queue      queueing  PE issue -> bank outcome (crossbar + input queues)
miss_wait  queueing  bank outcome -> line drain begins (subentry wait)
drain      service   drain begins -> this request's replay
return     service   replay (or hit outcome) -> PE retire
total      --        PE issue -> PE retire
dram_queue queueing  line-fetch issue -> DRAM channel accepts it
dram_svc   service   DRAM accept -> last beat delivered
========== ========= ====================================================

``queue + miss_wait + drain + return == total`` for misses and
``queue + return == total`` for hits -- an exact accounting the tests
pin.  The DRAM stages describe the span's *line fetch* (shared by
every request that merged into the same MSHR), so they are aggregated
separately rather than summed into ``total``.

Percentiles are **exact** (nearest-rank over the stored per-stage
samples), unlike the telemetry histograms' log2-bucket upper bounds:
tail attribution is the whole point here, so the analyzer keeps the
raw durations and pays the memory.
"""

import math

QUEUEING_STAGES = ("queue", "miss_wait", "dram_queue")
SERVICE_STAGES = ("drain", "return", "dram_svc")
STAGE_ORDER = ("queue", "miss_wait", "drain", "return",
               "dram_queue", "dram_svc", "total")


def decompose(span):
    """Per-stage durations (cycles) for one span; missing stages omitted."""
    stages = {}
    issue = span["issue"]
    outcome = span.get("outcome_cycle")
    drain_begin = span.get("drain_begin")
    replay = span.get("replay")
    retire = span.get("retire")
    if outcome is not None:
        stages["queue"] = outcome - issue
        if drain_begin is not None:
            stages["miss_wait"] = drain_begin - outcome
        if drain_begin is not None and replay is not None:
            stages["drain"] = replay - drain_begin
        if retire is not None:
            tail_from = replay if replay is not None else outcome
            stages["return"] = retire - tail_from
    if retire is not None:
        stages["total"] = retire - issue
    accept = span.get("dram_accept")
    if accept is not None and "fetch_issue" in span:
        # A private-bank fetch that merged at the shared level can join
        # a DRAM transaction accepted before this fetch even issued
        # (accept < fetch_issue); such late joiners paid no DRAM
        # queueing of their own, so the stage floors at zero.
        stages["dram_queue"] = max(0, accept - span["fetch_issue"])
        if span.get("dram_deliver") is not None:
            stages["dram_svc"] = span["dram_deliver"] - accept
    return stages


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_values:
        return 0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def _stage_stats(values):
    values = sorted(values)
    count = len(values)
    return {
        "count": count,
        "p50": percentile(values, 0.50),
        "p99": percentile(values, 0.99),
        "p999": percentile(values, 0.999),
        "max": values[-1] if values else 0,
        "mean": round(sum(values) / count, 2) if count else 0.0,
    }


def analyze_spans(spans):
    """Aggregate exact per-stage stats over *spans* (completed only).

    Returns ``{stage: {count, p50, p99, p999, max, mean, kind}}`` in
    the fixed :data:`STAGE_ORDER`, plus queueing/service cycle totals
    under ``"_totals"`` so reports can state the critical-path split
    in one line.
    """
    samples = {stage: [] for stage in STAGE_ORDER}
    queueing = service = 0
    for span in spans:
        for stage, duration in decompose(span).items():
            samples[stage].append(duration)
            if stage in QUEUEING_STAGES:
                queueing += duration
            elif stage in SERVICE_STAGES:
                service += duration
    out = {}
    for stage in STAGE_ORDER:
        if not samples[stage]:
            continue
        stats = _stage_stats(samples[stage])
        if stage in QUEUEING_STAGES:
            stats["kind"] = "queueing"
        elif stage in SERVICE_STAGES:
            stats["kind"] = "service"
        else:
            stats["kind"] = "end_to_end"
        out[stage] = stats
    out["_totals"] = {"queueing_cycles": queueing, "service_cycles": service}
    return out
