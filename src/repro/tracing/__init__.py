"""Request-level causal tracing (see DESIGN.md Section 6.8).

Public surface: :class:`SpansConfig` / :class:`SpanTracer` /
:class:`FlightRecorder` (collection), :func:`analyze_spans`
(critical-path decomposition), and the exporters/validators in
:mod:`repro.tracing.export`.
"""

from repro.tracing.analyze import analyze_spans, decompose, percentile
from repro.tracing.export import (
    spans_jsonl_bytes,
    validate_flow_trace,
    validate_span_summary,
    validate_spans_jsonl,
    write_flow_trace,
    write_span_summary,
    write_spans_jsonl,
)
from repro.tracing.spans import (
    SPAN_SCHEMA_VERSION,
    FlightRecorder,
    SpanTracer,
    SpansConfig,
    sample_hash,
)

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "FlightRecorder",
    "SpanTracer",
    "SpansConfig",
    "analyze_spans",
    "decompose",
    "percentile",
    "sample_hash",
    "spans_jsonl_bytes",
    "validate_flow_trace",
    "validate_span_summary",
    "validate_spans_jsonl",
    "write_flow_trace",
    "write_span_summary",
    "write_spans_jsonl",
]
