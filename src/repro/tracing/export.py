"""Span exporters and their schema validators.

Two artifacts, both self-validated by the CLI before it exits:

* **Span JSONL** -- a versioned meta header line, then one canonical
  JSON object per sampled span.  The encoding is byte-deterministic:
  spans are sorted by ``(issue, pe, seq)``, keys are sorted, and the
  separators are fixed, so the determinism tests can literally
  ``bytes``-compare exports from the demand and legacy engines.
* **Chrome trace flow events** -- the ``trace_event`` format with
  ``ph: "s"/"t"/"f"`` flow arrows binding each span's PE slice to its
  bank and DRAM slices.  Open in https://ui.perfetto.dev: one track
  per PE, one per bank, one per DRAM channel; arrows follow sampled
  requests across them (1 simulated cycle = 1 us).
"""

import json

from repro.tracing.analyze import decompose
from repro.tracing.spans import INTERNAL_KEYS, SPAN_SCHEMA_VERSION

_JSON = {"sort_keys": True, "separators": (",", ":")}

_PID_PES = 1
_PID_BANKS = 2
_PID_DRAM = 3


def _public(span):
    """The exported view of a span: observations plus derived stages."""
    record = {
        key: value for key, value in span.items() if key not in INTERNAL_KEYS
    }
    record["stages"] = decompose(span)
    return record


def _ordered(spans):
    return sorted(spans, key=lambda s: (s["issue"], s["pe"], s["seq"]))


def spans_jsonl_bytes(tracer):
    """The canonical span-stream encoding (used directly by tests)."""
    header = {
        "schema": SPAN_SCHEMA_VERSION,
        "kind": "spans",
        "sample_rate": tracer.config.sample_rate,
        "requests_seen": tracer.requests_seen,
        "spans": len(tracer.spans),
    }
    lines = [json.dumps(header, **_JSON)]
    lines.extend(
        json.dumps(_public(span), **_JSON) for span in _ordered(tracer.spans)
    )
    return ("\n".join(lines) + "\n").encode("ascii")


def write_spans_jsonl(tracer, path):
    with open(path, "wb") as handle:
        handle.write(spans_jsonl_bytes(tracer))
    return path


def validate_spans_jsonl(path):
    """Schema-check a span JSONL file; raises ValueError on problems."""
    with open(path, "r", encoding="ascii") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty span stream")
    header = json.loads(lines[0])
    if header.get("kind") != "spans":
        raise ValueError(f"{path}: missing spans meta header")
    if header.get("schema") != SPAN_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {header.get('schema')!r} != "
            f"{SPAN_SCHEMA_VERSION}"
        )
    if header.get("spans") != len(lines) - 1:
        raise ValueError(
            f"{path}: header says {header.get('spans')} spans, "
            f"file has {len(lines) - 1}"
        )
    for index, line in enumerate(lines[1:], start=2):
        span = json.loads(line)
        for key in ("pe", "seq", "issue", "events", "stages"):
            if key not in span:
                raise ValueError(f"{path}:{index}: span missing {key!r}")
        stages = span["stages"]
        for stage, duration in stages.items():
            if duration < 0:
                raise ValueError(
                    f"{path}:{index}: negative {stage} ({duration})"
                )
        if "total" in stages:
            # Exact accounting: the on-request stages sum to total.
            parts = sum(
                stages.get(stage, 0)
                for stage in ("queue", "miss_wait", "drain", "return")
            )
            if parts != stages["total"]:
                raise ValueError(
                    f"{path}:{index}: stage sum {parts} != "
                    f"total {stages['total']}"
                )
    return {"meta": header, "spans": len(lines) - 1}


# -- Chrome trace flow events -----------------------------------------------


def _meta(pid, name):
    return {"ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": name}}


def _slice(pid, tid, name, start, end, args):
    return {"ph": "X", "pid": pid, "tid": tid, "name": name,
            "ts": start, "dur": max(1, end - start), "args": args}


def _flow(ph, flow_id, pid, tid, ts):
    event = {"ph": ph, "pid": pid, "tid": tid, "ts": ts,
             "name": "request", "cat": "moms", "id": flow_id}
    if ph == "f":
        event["bp"] = "e"  # bind to the enclosing slice's end
    return event


def write_flow_trace(tracer, path):
    """Chrome ``trace_event`` JSON with flow arrows per sampled span."""
    spans = [s for s in _ordered(tracer.spans) if "retire" in s]
    banks = sorted({s["bank"] for s in spans if "bank" in s})
    bank_tid = {bank: index for index, bank in enumerate(banks)}
    events = [
        _meta(_PID_PES, "PEs"),
        _meta(_PID_BANKS, "MOMS banks"),
        _meta(_PID_DRAM, "DRAM"),
    ]
    for tid, bank in enumerate(banks):
        events.append({"ph": "M", "pid": _PID_BANKS, "tid": tid,
                       "name": "thread_name", "args": {"name": bank}})
    for flow_id, span in enumerate(spans):
        name = f"pe{span['pe']}#{span['seq']}"
        stages = decompose(span)
        events.append(_slice(_PID_PES, span["pe"], name,
                             span["issue"], span["retire"],
                             {"outcome": span.get("outcome", "?"),
                              "stages": stages}))
        events.append(_flow("s", flow_id, _PID_PES, span["pe"],
                            span["issue"]))
        if "outcome_cycle" in span and "bank" in span:
            tid = bank_tid[span["bank"]]
            end = span.get("replay", span["outcome_cycle"] + 1)
            events.append(_slice(_PID_BANKS, tid, name,
                                 span["outcome_cycle"], end,
                                 {"outcome": span["outcome"],
                                  "line_addr": span.get("line_addr"),
                                  "fan_in": span.get("fan_in")}))
            events.append(_flow("t", flow_id, _PID_BANKS, tid,
                                span["outcome_cycle"]))
        if "dram_accept" in span:
            deliver = span.get("dram_deliver", span["dram_accept"] + 1)
            events.append(_slice(_PID_DRAM, 0, name,
                                 span["dram_accept"], deliver,
                                 {"line_addr": span.get("line_addr")}))
            events.append(_flow("t", flow_id, _PID_DRAM, 0,
                                span["dram_accept"]))
        events.append(_flow("f", flow_id, _PID_PES, span["pe"],
                            span["retire"]))
    payload = {"traceEvents": events, "displayTimeUnit": "ms",
               "otherData": {"schema": SPAN_SCHEMA_VERSION,
                             "sample_rate": tracer.config.sample_rate}}
    with open(path, "w", encoding="ascii") as handle:
        json.dump(payload, handle, **_JSON)
    return path


def validate_flow_trace(path):
    """Schema-check a flow trace; raises ValueError on problems."""
    with open(path, "r", encoding="ascii") as handle:
        payload = json.load(handle)
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError(f"{path}: no traceEvents")
    flows = {}
    counts = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue
        for key in ("ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{path}: event {index} missing {key!r}")
        if ph == "X":
            if event.get("dur", -1) < 0:
                raise ValueError(f"{path}: event {index} bad dur")
        elif ph in ("s", "t", "f"):
            if "id" not in event:
                raise ValueError(f"{path}: flow event {index} missing id")
            flows.setdefault(event["id"], []).append(ph)
        else:
            raise ValueError(f"{path}: unexpected phase {ph!r}")
    for flow_id, phases in flows.items():
        if phases[0] != "s" or phases[-1] != "f" or len(phases) < 2:
            raise ValueError(
                f"{path}: flow {flow_id} malformed ({''.join(phases)})"
            )
    return counts


def write_span_summary(summary, path):
    with open(path, "w", encoding="ascii") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def validate_span_summary(path):
    with open(path, "r", encoding="ascii") as handle:
        summary = json.load(handle)
    for key in ("schema", "sample_rate", "requests_seen", "stages",
                "merge_fanin", "recorder"):
        if key not in summary:
            raise ValueError(f"{path}: summary missing {key!r}")
    if summary["schema"] != SPAN_SCHEMA_VERSION:
        raise ValueError(f"{path}: schema {summary['schema']!r}")
    return summary
