"""The ``python -m repro spans`` subcommand.

Runs one (graph, algorithm) point with the span tracer attached and
exports the collection under one path prefix::

    python -m repro spans --graph RV --algorithm bfs --rate 16 \
        --spans-out out/rv_bfs

writes ``out/rv_bfs.spans.jsonl`` (canonical sampled span stream),
``out/rv_bfs.flow.json`` (Chrome trace_event flow arrows, load it at
https://ui.perfetto.dev), and ``out/rv_bfs.spansummary.json``
(exact per-stage percentiles + merge fan-in distributions).  Every
export is re-read and schema-validated before the command reports
success, so the CI spans-smoke job is just this command.

``--engine`` / ``--kernels`` (shared with the profile/trace groups)
select the simulation mode; the span stream is byte-identical across
all four combinations.
"""

import os


def add_spans_arguments(parser):
    """Attach the spans-specific flags to the __main__ parser."""
    parser.add_argument(
        "--rate", type=int, default=16, metavar="N",
        help="trace 1 of every N requests per PE (default 16)",
    )
    parser.add_argument(
        "--depth", type=int, default=256, metavar="EVENTS",
        help="flight-recorder ring depth (default 256)",
    )
    parser.add_argument(
        "--spans-out", default="tracing/spans", metavar="PREFIX",
        help="output path prefix (default tracing/spans)",
    )


def run_spans(args, log=print):
    """Run the traced point, export, validate; returns an exit code."""
    # Mode knobs must land in the environment before the simulation
    # stack is imported (engine/kernel selection happens at build).
    if getattr(args, "engine", None):
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "kernels", None):
        os.environ["REPRO_KERNELS"] = args.kernels
    from repro.accel.config import (
        ArchitectureConfig,
        SCALED_DEFAULTS,
        _design,
    )
    from repro.accel.system import AcceleratorSystem
    from repro.experiments.common import bench_graph, iteration_budget
    from repro.fabric.design import MOMS_TWO_LEVEL
    from repro.report import format_table
    from repro.tracing.analyze import STAGE_ORDER
    from repro.tracing.export import (
        validate_flow_trace,
        validate_span_summary,
        validate_spans_jsonl,
        write_flow_trace,
        write_span_summary,
        write_spans_jsonl,
    )
    from repro.tracing.spans import SpansConfig

    quick = not args.full
    graph = bench_graph(args.graph, quick=quick)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, args.algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    log(f"[spans] {args.graph} / {args.algorithm}: "
        f"{graph.n_nodes:,} nodes, {graph.n_edges:,} edges, "
        f"sampling 1/{args.rate} requests")
    system = AcceleratorSystem(
        graph, args.algorithm, config,
        spans=SpansConfig(sample_rate=args.rate,
                          recorder_depth=args.depth),
    )
    result = system.run(
        max_iterations=iteration_budget(args.algorithm, quick)
    )
    tracer = system.tracer
    summary = result.stats["spans"]
    log(f"[spans] ran {result.cycles:,} cycles, "
        f"{result.iterations} iteration(s); traced "
        f"{summary['spans_completed']}/{summary['requests_seen']:,} "
        f"requests ({summary['spans_live']} still in flight)")

    prefix = args.spans_out
    parent = os.path.dirname(prefix)
    if parent:
        os.makedirs(parent, exist_ok=True)
    spans_path = f"{prefix}.spans.jsonl"
    flow_path = f"{prefix}.flow.json"
    summary_path = f"{prefix}.spansummary.json"

    write_spans_jsonl(tracer, spans_path)
    write_flow_trace(tracer, flow_path)
    write_span_summary(
        dict(summary, graph=args.graph, algorithm=args.algorithm,
             run_cycles=result.cycles, gteps=result.gteps),
        summary_path,
    )

    # Self-validate every export; a schema violation is a command
    # failure (this is the CI gate).
    spans_info = validate_spans_jsonl(spans_path)
    flow_counts = validate_flow_trace(flow_path)
    validate_span_summary(summary_path)

    stages = summary["stages"]
    rows = [
        dict(stages[stage], stage=stage)
        for stage in STAGE_ORDER
        if stage in stages
    ]
    log("")
    log(format_table(
        rows,
        columns=["stage", "kind", "count", "p50", "p99", "p999",
                 "max", "mean"],
        title="per-stage latency decomposition (cycles, exact "
              "nearest-rank percentiles)",
    ))
    totals = stages.get("_totals", {})
    queueing = totals.get("queueing_cycles", 0)
    service = totals.get("service_cycles", 0)
    split = queueing / (queueing + service) if queueing + service else 0.0
    log("")
    log(f"[spans] critical path: {queueing:,} queueing vs "
        f"{service:,} service cycles ({split:.0%} queueing) | "
        f"mshr merge rate {result.stats['mshr_merge_rate']:.1%}")
    log(f"[spans] {spans_path}: {spans_info['spans']} spans validated")
    log(f"[spans] {flow_path}: validated ({flow_counts})")
    log(f"[spans] {summary_path}: written")
    log("[spans] open the flow trace at https://ui.perfetto.dev "
        "(arrows follow sampled requests across PE/bank/DRAM tracks)")
    return 0
