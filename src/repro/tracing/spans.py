"""Sampled per-request span tracing plus an always-on flight recorder.

The aggregate telemetry of :mod:`repro.telemetry` says *that* p99 miss
latency is high; this module says *where* a request spent its cycles.
A :class:`SpanTracer` follows individual MOMS requests end to end --
PE issue, crossbar hop, bank accept, MSHR hit/merge/allocate, subentry
enqueue, DRAM queue/burst/response, replay, retire -- as timestamped
span records, and keeps the last N events of *every* request in a
bounded ring (:class:`FlightRecorder`) so stall and fault reports can
show what the machine was doing just before it wedged.

Three contracts, all pinned by tests:

* **Observe, never perturb.**  Every hook in the simulator is ``is
  None``-gated exactly like the sampler/watchdog/checkpointer hooks;
  with no tracer attached the off-path cost is one attribute test per
  site (budgeted <3% in ``bench_sim.py``).  With a tracer attached,
  cycle counts and results are bit-identical to an untraced run.
* **Deterministic sampling.**  Whether a request is traced depends
  only on ``splitmix64(mix(pe, seq))`` of its issuing PE and that
  PE's issue sequence number -- both functions of the simulated
  schedule, not of host state or engine internals -- so the demand and
  legacy engines, and the vector and scalar kernels, emit
  byte-identical span streams.
* **Snapshot-safe.**  Tracer state is plain data (dicts, deques,
  ints) registered in the checkpoint ``SNAPSHOT_REGISTRY``; a traced
  run snapshots and resumes bit-identically.

Request identity: ``req_id`` values are *reused* (unweighted requests
use the destination offset, so two edges into the same vertex carry
the same id concurrently; weighted ones recycle a per-PE free list),
so spans are keyed ``(pe, per-PE issue seq)`` and in-flight matching
uses FIFO deques per ``(pe, req_id, line_addr)``.  The line address
is part of the key because responses are only issue-ordered *per
line*: a hit for one line can overtake a miss for another even when
both share a ``req_id``.  Line fetches are tracked for **every**
primary miss (not only sampled ones) because a sampled secondary miss
merges into whatever fetch its line already has.
"""

from collections import deque
from dataclasses import dataclass

from repro.faults.plan import _MASK64, _splitmix64

SPAN_SCHEMA_VERSION = 1
LINE_BYTES = 64

# Span-record keys that are bookkeeping, not observations; stripped
# from the exported JSONL (see repro.tracing.export).
INTERNAL_KEYS = ("sampled",)


def sample_hash(pe, seq):
    """The sampling hash for request *seq* issued by PE *pe*.

    Mixes the two coordinates into one 64-bit lane and runs the same
    splitmix64 finalizer the fault plans use.  Everything feeding it
    is schedule-determined, which is the whole determinism story.
    """
    _state, value = _splitmix64(((pe + 1) << 40) ^ seq)
    return value & _MASK64


@dataclass(frozen=True)
class SpansConfig:
    """Frozen tracer configuration.

    ``sample_rate`` traces 1 of every N requests per PE (1 = every
    request); ``recorder_depth`` bounds the flight-recorder ring.
    """

    sample_rate: int = 16
    recorder_depth: int = 256

    def __post_init__(self):
        if self.sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        if self.recorder_depth < 1:
            raise ValueError("recorder_depth must be >= 1")


class FlightRecorder:
    """Always-on bounded ring of the most recent tracer events.

    Unlike the sampled spans this sees *every* hook event, so its tail
    is the "what just happened" evidence embedded in watchdog stall
    reports, fault reports, and failed-replay output.  Events are
    stored as compact tuples and only formatted when a report is
    actually built.
    """

    def __init__(self, depth=256):
        self.depth = depth
        self.events = deque(maxlen=depth)
        self.recorded = 0

    def record(self, cycle, kind, where, detail):
        self.recorded += 1
        self.events.append((cycle, kind, where, detail))

    def tail(self, limit=None):
        """The last *limit* events, oldest first, as plain dicts."""
        events = list(self.events)
        if limit is not None and limit < len(events):
            events = events[len(events) - limit:]
        return [
            {"cycle": cycle, "event": kind, "where": where, "detail": detail}
            for cycle, kind, where, detail in events
        ]

    def format_tail(self, limit=16):
        """The tail as aligned report lines (oldest first)."""
        return [
            "[{cycle:>10}] {event:<12} {where:<16} {detail}".format(**event)
            for event in self.tail(limit)
        ]


class SpanTracer:
    """Per-request span collection behind ``is None``-gated hooks.

    Attach with :meth:`attach`; the tracer installs itself as
    ``engine.tracer`` (so stall reports can reach the flight
    recorder) and as the ``_trace`` hook on every PE, MOMS bank,
    crossbar, and DRAM channel.  It is *event-driven*: the engine run
    loop never polls it.
    """

    def __init__(self, config=None):
        if config is None or config is True:
            config = SpansConfig()
        self.config = config
        self.recorder = FlightRecorder(config.recorder_depth)
        self.spans = []  # completed sampled spans
        self.requests_seen = 0
        self.sampled = 0
        self.fanin = {}  # bank name -> {merge fan-in -> drains}
        self._seq = {}  # pe -> requests issued so far
        self._inflight = {}  # (pe, req_id, line_addr) -> request deque
        self._fetches = {}  # (bank name, line_addr) -> deque of fetches
        self._line_owner = {}  # fill channel -> DRAM-facing bank name

    # -- wiring ------------------------------------------------------------

    def attach(self, system):
        """Install the tracer's hooks across *system* (returns self)."""
        system.engine.tracer = self
        for pe in system.pes:
            pe._trace = self
        hierarchy = system.hierarchy
        for bank in hierarchy.banks:
            bank._trace = self
            self._line_owner[bank.line_in] = bank.name
        for crossbar in hierarchy.crossbars:
            crossbar._trace = self
        for channel in system.mem.channels:
            channel._trace = self
        return self

    # -- matching helpers --------------------------------------------------

    @staticmethod
    def _first(queue, present, absent):
        """Oldest record in *queue* with *present* set and *absent* not.

        FIFO matching: requests sharing a ``(pe, req_id, line_addr)``
        key target the same line, so they move through the same bank
        and back in issue order and the oldest un-annotated record is
        always the one the event belongs to.
        """
        if not queue:
            return None
        for record in queue:
            if absent in record:
                continue
            if present is not None and present not in record:
                continue
            return record
        return None

    def _request_record(self, pe, req_id, line_addr, present, absent):
        return self._first(self._inflight.get((pe, req_id, line_addr)),
                           present, absent)

    def _fetch_record(self, bank, line_addr, present, absent):
        return self._first(self._fetches.get((bank, line_addr)),
                           present, absent)

    # -- PE hooks ----------------------------------------------------------

    def moms_issue(self, pe, req_id, addr, now):
        seq = self._seq.get(pe, 0)
        self._seq[pe] = seq + 1
        self.requests_seen += 1
        self.recorder.record(now, "issue", f"pe{pe}", req_id)
        sampled = sample_hash(pe, seq) % self.config.sample_rate == 0
        record = {"pe": pe, "seq": seq, "req_id": req_id,
                  "issue": now, "sampled": sampled}
        if sampled:
            self.sampled += 1
            record["events"] = [[now, f"issue@pe{pe}"]]
        key = (pe, req_id, addr // LINE_BYTES)
        self._inflight.setdefault(key, deque()).append(record)

    def moms_retire(self, pe, req_id, addr, now):
        self.recorder.record(now, "retire", f"pe{pe}", req_id)
        key = (pe, req_id, addr // LINE_BYTES)
        queue = self._inflight.get(key)
        if not queue:
            return  # e.g. a fault mutated the id in flight
        record = queue.popleft()
        if not queue:
            del self._inflight[key]
        if record["sampled"]:
            record["retire"] = now
            record["events"].append([now, f"retire@pe{pe}"])
            self.spans.append(record)

    # -- bank hooks --------------------------------------------------------

    def _bank_outcome(self, outcome, bank, req_id, port, line_addr, now):
        if req_id is None:
            # Shared-level event serving a private bank's line fetch.
            fetch = self._fetch_record(f"private{port}", line_addr,
                                       None, "l2_outcome")
            if fetch is not None:
                fetch["l2_outcome"] = outcome
                fetch["l2_cycle"] = now
            return
        record = self._request_record(port, req_id, line_addr,
                                      None, "outcome")
        if record is None:
            return
        record["outcome"] = outcome
        record["outcome_cycle"] = now
        record["bank"] = bank
        record["line_addr"] = line_addr
        if record["sampled"]:
            record["events"].append([now, f"{outcome}@{bank}"])

    def bank_hit(self, bank, req_id, port, line_addr, now):
        self.recorder.record(now, "hit", bank,
                             line_addr if req_id is None else req_id)
        self._bank_outcome("hit", bank, req_id, port, line_addr, now)

    def bank_merge(self, bank, req_id, port, line_addr, now):
        """Secondary miss: merged into the line's existing MSHR."""
        self.recorder.record(now, "merge", bank,
                             line_addr if req_id is None else req_id)
        self._bank_outcome("secondary", bank, req_id, port, line_addr, now)

    def bank_alloc(self, bank, req_id, port, line_addr, now):
        """Primary miss: MSHR allocated, line fetch issued downstream.

        The fetch record is created for *every* primary miss -- later
        sampled secondaries merge into whichever fetch their line
        already has, sampled or not.
        """
        self.recorder.record(now, "alloc", bank, line_addr)
        self._fetches.setdefault((bank, line_addr), deque()).append(
            {"fetch_issue": now}
        )
        self._bank_outcome("primary", bank, req_id, port, line_addr, now)

    def bank_drain(self, bank, line_addr, fan_in, now):
        """The fetched line arrived; *fan_in* merged requests replay."""
        self.recorder.record(now, "drain", bank, line_addr)
        per_bank = self.fanin.setdefault(bank, {})
        per_bank[fan_in] = per_bank.get(fan_in, 0) + 1
        fetch = self._fetch_record(bank, line_addr, None, "drain_begin")
        if fetch is not None:
            fetch["drain_begin"] = now
            fetch["fan_in"] = fan_in
            fetch["remaining"] = fan_in

    def bank_replay(self, bank, req_id, port, line_addr, now):
        self.recorder.record(now, "replay", bank,
                             line_addr if req_id is None else req_id)
        fetch = self._fetch_record(bank, line_addr, "drain_begin", None)
        if fetch is not None:
            fetch["remaining"] -= 1
            if fetch["remaining"] <= 0:
                queue = self._fetches[(bank, line_addr)]
                queue.remove(fetch)
                if not queue:
                    del self._fetches[(bank, line_addr)]
        if req_id is None:
            # Shared-level fill dispatch towards a private bank: carry
            # the DRAM timing down into the private fetch record.
            target = self._fetch_record(f"private{port}", line_addr,
                                        "l2_outcome", "dram_accept")
            if target is not None and fetch is not None:
                for key in ("dram_accept", "dram_deliver"):
                    if key in fetch:
                        target[key] = fetch[key]
            return
        record = self._request_record(port, req_id, line_addr,
                                      "outcome", "replay")
        if record is None:
            return
        record["replay"] = now
        if fetch is not None:
            for key in ("fetch_issue", "drain_begin", "fan_in",
                        "dram_accept", "dram_deliver",
                        "l2_outcome", "l2_cycle"):
                if key in fetch:
                    record[key] = fetch[key]
        if record["sampled"]:
            record["events"].append([now, f"replay@{bank}"])

    # -- fabric hooks ------------------------------------------------------

    def xbar_hop(self, name, token, now):
        req_id = getattr(token, "req_id", None)
        port = getattr(token, "port", 0)
        addr = getattr(token, "addr", None)
        is_response = hasattr(token, "data")
        self.recorder.record(now, "xbar", name,
                             addr if req_id is None else req_id)
        if addr is None:
            return
        line_addr = addr // LINE_BYTES
        if req_id is None:
            if is_response:
                fetch = self._fetch_record(f"private{port}", line_addr,
                                           "l2_outcome", "hop_fill")
                if fetch is not None:
                    fetch["hop_fill"] = now
            else:
                fetch = self._fetch_record(f"private{port}", line_addr,
                                           None, "l2_outcome")
                if fetch is not None:
                    fetch["hop_req"] = now
            return
        if is_response:
            record = self._request_record(port, req_id, line_addr,
                                          "outcome", "hop_resp")
            key, label = "hop_resp", "resp"
        else:
            record = self._request_record(port, req_id, line_addr,
                                          None, "outcome")
            key, label = "hop_req", "req"
        if record is None or key in record:
            return
        record[key] = now
        if record["sampled"]:
            record["events"].append([now, f"xbar[{label}]@{name}"])

    # -- DRAM hooks --------------------------------------------------------

    def dram_accept(self, channel, request, now):
        self.recorder.record(now, "dram_accept", channel, request.addr)
        owner = self._line_owner.get(request.respond_to)
        if owner is None:
            return  # burst/write traffic, not a MOMS line fetch
        fetch = self._fetch_record(owner, request.addr // LINE_BYTES,
                                   None, "dram_accept")
        if fetch is not None:
            fetch["dram_accept"] = now

    def dram_deliver(self, channel, respond_to, addr, now):
        """A line beat delivered; the last beat wins the timestamp."""
        self.recorder.record(now, "dram_deliver", channel, addr)
        owner = self._line_owner.get(respond_to)
        if owner is None:
            return
        fetch = self._fetch_record(owner, addr // LINE_BYTES,
                                   "dram_accept", "drain_begin")
        if fetch is not None:
            fetch["dram_deliver"] = now

    # -- results -----------------------------------------------------------

    def live_spans(self):
        """Sampled spans still in flight (not retired) at this cycle."""
        return sum(
            1
            for queue in self._inflight.values()
            for record in queue
            if record["sampled"]
        )

    def merge_fanin(self):
        """Per-bank {fan-in: drains} with deterministic key order."""
        return {
            bank: {
                str(fan_in): self.fanin[bank][fan_in]
                for fan_in in sorted(self.fanin[bank])
            }
            for bank in sorted(self.fanin)
        }

    def summary(self):
        """Compact aggregate for run stats / sweep journal rows."""
        from repro.tracing.analyze import analyze_spans

        return {
            "schema": SPAN_SCHEMA_VERSION,
            "sample_rate": self.config.sample_rate,
            "requests_seen": self.requests_seen,
            "spans_sampled": self.sampled,
            "spans_completed": len(self.spans),
            "spans_live": self.live_spans(),
            "stages": analyze_spans(self.spans),
            "merge_fanin": self.merge_fanin(),
            "recorder": {
                "depth": self.recorder.depth,
                "recorded": self.recorder.recorded,
            },
        }
