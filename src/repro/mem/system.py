"""Functional backing store plus the per-channel timed models.

The :class:`MemorySystem` is the single source of truth for memory
*contents* (a numpy byte array, so accelerator runs are functionally
exact), while each :class:`DramChannel` models the *timing* of the
channel that owns an address range under 2,048-byte interleaving.
"""

import numpy as np

from repro.mem.dram import LINE_BYTES, DramChannel, DramTimings, MemRequest
from repro.mem.interleave import AddressInterleaver


class MemorySystem:
    """N interleaved DRAM channels over one flat, functional store."""

    def __init__(self, engine, size_bytes, n_channels=4, timings=None,
                 granule=2048):
        if size_bytes % LINE_BYTES:
            raise ValueError("memory size must be a multiple of 64 bytes")
        self.size_bytes = size_bytes
        self.timings = timings or DramTimings()
        self.interleaver = AddressInterleaver(n_channels, granule)
        self._buf = np.zeros(size_bytes, dtype=np.uint8)
        self.channels = [
            DramChannel(self.timings, self, name=f"dram{i}").attach(engine)
            for i in range(n_channels)
        ]

    @property
    def n_channels(self):
        return len(self.channels)

    # -- functional access ------------------------------------------------

    def read_bytes(self, addr, nbytes):
        """Copy of [addr, addr+nbytes); used by channels at delivery time."""
        return self._buf[addr:addr + nbytes].copy()

    def write_bytes(self, addr, data, nbytes=None):
        data = np.asarray(data, dtype=np.uint8)
        n = len(data) if nbytes is None else min(nbytes, len(data))
        self._buf[addr:addr + n] = data[:n]

    def view_u32(self, addr, count):
        """Mutable uint32 view of *count* words at 4-aligned *addr*."""
        if addr % 4:
            raise ValueError("unaligned u32 access")
        return self._buf.view(np.uint32)[addr // 4:addr // 4 + count]

    def view_f32(self, addr, count):
        """Mutable float32 view of *count* words at 4-aligned *addr*."""
        if addr % 4:
            raise ValueError("unaligned f32 access")
        return self._buf.view(np.float32)[addr // 4:addr // 4 + count]

    def view_u64(self, addr, count):
        """Mutable uint64 view of *count* words at 8-aligned *addr*."""
        if addr % 8:
            raise ValueError("unaligned u64 access")
        return self._buf.view(np.uint64)[addr // 8:addr // 8 + count]

    # -- timed access -----------------------------------------------------

    def channel_of(self, addr):
        """Index of the channel owning global byte address *addr*."""
        return self.interleaver.channel_of(addr)

    def split_burst(self, request):
        """Split a global burst into per-channel sub-requests.

        Each piece keeps the parent's tag and respond_to; pieces never
        cross an interleaving granule so each lands on one channel.
        Returns a list of (channel_index, MemRequest) pairs.
        """
        pieces = []
        for channel, _local, nbytes, global_addr in self.interleaver.split(
            request.addr, request.nbytes
        ):
            offset = global_addr - request.addr
            piece_data = None
            if request.is_write:
                piece_data = np.asarray(request.data, dtype=np.uint8)[
                    offset:offset + nbytes
                ]
            pieces.append(
                (
                    channel,
                    MemRequest(
                        addr=global_addr,
                        nbytes=nbytes,
                        kind=request.kind,
                        is_write=request.is_write,
                        tag=request.tag,
                        respond_to=request.respond_to,
                        data=piece_data,
                    ),
                )
            )
        return pieces

    # -- statistics ---------------------------------------------------------

    def total_bytes_read(self):
        return sum(ch.stats.bytes_read for ch in self.channels)

    def total_bytes_written(self):
        return sum(ch.stats.bytes_written for ch in self.channels)

    def single_line_fraction(self):
        """Share of read lines fetched as single accesses, all channels.

        The visible form of the paper's ~50% random-read shell
        limitation: singles are serviced at half the burst beat rate.
        """
        single = sum(ch.stats.lines_single for ch in self.channels)
        total = sum(ch.stats.lines_total for ch in self.channels)
        return single / total if total else 0.0

    def effective_bandwidth_ratio(self):
        """Beats delivered per busy cycle across channels (1.0 = burst)."""
        beats = sum(ch.stats.total_beats for ch in self.channels)
        busy = sum(ch.stats.busy_cycles for ch in self.channels)
        return beats / busy if busy else 1.0

    def reset_stats(self):
        for channel in self.channels:
            channel.stats.__init__()
