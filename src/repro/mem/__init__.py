"""DRAM substrate: functional backing store + timed channel models.

The memory system mirrors the paper's AWS f1 setup: one to four DDR4
channels, each with a fixed access latency and a service rate that
depends on the request kind -- 64-byte bursts stream at full bandwidth
(16 GB/s -> one line per cycle at 250 MHz) while single random reads
are limited by the shell to roughly half of that (one line per two
cycles), exactly the asymmetry the paper measured in Section V-A.
Global addresses are interleaved across channels every 2,048 bytes.
"""

from repro.mem.dram import LINE_BYTES, DramChannel, DramTimings, MemRequest, MemResponse
from repro.mem.interleave import AddressInterleaver
from repro.mem.system import MemorySystem

__all__ = [
    "AddressInterleaver",
    "DramChannel",
    "DramTimings",
    "LINE_BYTES",
    "MemRequest",
    "MemResponse",
    "MemorySystem",
]
