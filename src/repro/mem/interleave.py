"""Address interleaving across DRAM channels.

The paper interleaves the global address space across the available
channels every 2,048 bytes to maximize aggregate bandwidth (Section
IV-B).  The interleaver maps a global byte address to a (channel,
local address) pair and can split multi-granule bursts into the
per-channel pieces they touch.
"""

from repro.sim.kernels import channels_of_batch

DEFAULT_GRANULE = 2048


class AddressInterleaver:
    """Round-robin interleaving of a flat address space over channels."""

    def __init__(self, n_channels, granule=DEFAULT_GRANULE):
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if granule < 1 or granule & (granule - 1):
            raise ValueError("granule must be a positive power of two")
        self.n_channels = n_channels
        self.granule = granule

    def channel_of(self, addr):
        """Channel that owns global byte address *addr*."""
        return (addr // self.granule) % self.n_channels

    def channels_of(self, addrs):
        """Owning channel per address in *addrs*, as an int64 array.

        The columnar form of :meth:`channel_of`: one integer-arithmetic
        numpy pass instead of a per-address division loop.
        """
        return channels_of_batch(addrs, self.granule, self.n_channels)

    def to_local(self, addr):
        """Translate a global address to (channel, channel-local address)."""
        granule_index = addr // self.granule
        channel = granule_index % self.n_channels
        local = (granule_index // self.n_channels) * self.granule + (
            addr % self.granule
        )
        return channel, local

    def to_global(self, channel, local):
        """Inverse of :meth:`to_local`."""
        granule_index = (local // self.granule) * self.n_channels + channel
        return granule_index * self.granule + local % self.granule

    def split(self, addr, nbytes):
        """Split [addr, addr+nbytes) into per-channel contiguous pieces.

        Returns a list of (channel, local_addr, piece_bytes, global_addr)
        tuples in global address order.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        granule = self.granule
        offset = addr % granule
        if offset + nbytes <= granule:
            # Fast path: the burst stays inside one granule (every MOMS
            # line read and most DMA bursts), so the piece list is the
            # whole request -- no boundary walk needed.
            granule_index = addr // granule
            local = (granule_index // self.n_channels) * granule + offset
            return [(granule_index % self.n_channels, local, nbytes, addr)]
        pieces = []
        cursor = addr
        end = addr + nbytes
        while cursor < end:
            boundary = (cursor // self.granule + 1) * self.granule
            piece_end = min(end, boundary)
            channel, local = self.to_local(cursor)
            pieces.append((channel, local, piece_end - cursor, cursor))
            cursor = piece_end
        return pieces
