"""Timed model of one DRAM channel behind the AWS f1 shell.

The model captures the two properties the paper's results hinge on:

* a fixed access latency (tens of accelerator cycles), during which a
  miss-optimized memory system accumulates secondary misses, and
* a service rate that depends on the request kind: 64-byte *burst*
  beats stream at one line per cycle (16 GB/s at 250 MHz) while
  *single* random reads only achieve one line per two cycles (the
  ~8 GB/s shell limitation measured in Section V-A).

Each channel responds strictly in order; out-of-order behaviour only
arises when a transfer is interleaved across several channels, which
is exactly the situation the paper's PEs are designed to tolerate.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.sim.kernels import fifo_service_starts, vector_enabled
from repro.sim import Channel, Component

LINE_BYTES = 64


class _Segment:
    """A read burst's response beats as one arithmetic-progression record.

    The vector-kernel form of the response schedule: beat *i* of the
    segment matures at ``t_next + i * step`` with address ``addr + i *
    64`` and beat index ``beat + i`` -- so delivery pops whole due runs
    with integer arithmetic instead of one (ready, response, requester)
    tuple per beat, and the response tokens only materialize at the
    moment they enter the requester's FIFO.  Fields mutate in place as
    beats deliver; ``n`` is the beats remaining.

    Write acknowledgements and any faulted run stay on per-beat tuples
    (a latency-spike clamp or reorder fault rewrites individual beats,
    which the segment form cannot express), so a schedule mixes entry
    kinds only across those paths, never within one.
    """

    __slots__ = ("t_next", "step", "n", "addr", "beat", "last_index",
                 "tag", "respond_to", "issued_at")

    def __init__(self, t_next, step, n, addr, beat, last_index, tag,
                 respond_to, issued_at):
        self.t_next = t_next
        self.step = step
        self.n = n
        self.addr = addr
        self.beat = beat
        self.last_index = last_index
        self.tag = tag
        self.respond_to = respond_to
        self.issued_at = issued_at


@dataclass
class DramTimings:
    """Latency/bandwidth parameters of one channel (in cycles).

    The default latency models the AWS f1 shell's round trip (several
    hundred ns at 250 MHz), which is what gives a MOMS its coalescing
    window: the longer a line is in flight, the more pending misses
    pile onto its MSHR.
    """

    latency: int = 150
    cycles_per_beat_burst: int = 1
    cycles_per_beat_single: int = 2
    request_queue_depth: int = 32
    max_deliveries_per_cycle: int = 4

    def cycles_per_beat(self, kind):
        if kind == "burst":
            return self.cycles_per_beat_burst
        if kind == "single":
            return self.cycles_per_beat_single
        raise ValueError(f"unknown request kind {kind!r}")


@dataclass(slots=True)
class MemRequest:
    """A read or write request against the global address space.

    ``respond_to`` is the channel into which response beats (or the
    write acknowledgement) are pushed; ``tag`` is returned verbatim
    with every response so requesters can match them.
    """

    addr: int
    nbytes: int
    kind: str = "burst"  # 'burst' | 'single'
    is_write: bool = False
    tag: object = None
    respond_to: object = None
    data: object = None  # numpy uint8 array for writes

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("request must cover at least one byte")
        if self.kind not in ("burst", "single"):
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.is_write and self.data is None:
            raise ValueError("write request needs data")

    @property
    def beats(self):
        return -(-self.nbytes // LINE_BYTES)


@dataclass(slots=True)
class MemResponse:
    """One 64-byte beat of read data, or a write acknowledgement.

    ``issued_at`` is the cycle the channel accepted the originating
    request; telemetry uses it to histogram accept->delivery latency
    (queueing + service + backpressure included).
    """

    tag: object
    addr: int
    data: object = None
    beat: int = 0
    last: bool = True
    is_write_ack: bool = False
    issued_at: int = -1


def _acquire_response(tag, addr, beat, last, is_write_ack, issued_at):
    """Pooled MemResponse acquisition (see repro.core.messages)."""
    pool = MemResponse._pool
    if pool:
        response = pool.pop()
        response.tag = tag
        response.addr = addr
        response.data = None
        response.beat = beat
        response.last = last
        response.is_write_ack = is_write_ack
        response.issued_at = issued_at
        return response
    MemResponse._fresh += 1
    return MemResponse(tag=tag, addr=addr, beat=beat, last=last,
                       is_write_ack=is_write_ack, issued_at=issued_at)


def _acquire_request(addr, nbytes, kind, is_write, tag, respond_to, data):
    """Pooled MemRequest acquisition (see repro.core.messages).

    The one sanctioned construction site for hot-path MemRequests
    (simlint R3): issuers that used to inline the pool-or-construct
    fallback call this instead, so the freelist is always consulted
    first and the pool-miss accounting stays in one place.
    """
    pool = MemRequest._pool
    if pool:
        request = pool.pop()
        request.addr = addr
        request.nbytes = nbytes
        request.kind = kind
        request.is_write = is_write
        request.tag = tag
        request.respond_to = respond_to
        request.data = data
        return request
    MemRequest._fresh += 1
    return MemRequest(addr=addr, nbytes=nbytes, kind=kind,
                      is_write=is_write, tag=tag, respond_to=respond_to,
                      data=data)


@dataclass
class DramStats:
    bytes_read: int = 0
    bytes_written: int = 0
    busy_cycles: int = 0
    reads_single: int = 0
    reads_burst: int = 0
    writes: int = 0
    lines_single: int = 0
    lines_burst: int = 0
    lines_written: int = 0
    peak_queue: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def lines_total(self):
        """Read lines delivered, burst + single."""
        return self.lines_burst + self.lines_single

    @property
    def total_beats(self):
        """All data-bus beats serviced (reads and writes)."""
        return self.lines_burst + self.lines_single + self.lines_written

    @property
    def single_line_fraction(self):
        """Share of read lines fetched as single (non-burst) accesses.

        The paper's shell serves singles at half the burst rate, so a
        fraction near 1.0 means the run is paying the ~50% random-read
        bandwidth penalty of Section V-A.
        """
        total = self.lines_total
        return self.lines_single / total if total else 0.0

    @property
    def effective_bandwidth_ratio(self):
        """Beats delivered per busy cycle: 1.0 = pure burst streaming,
        0.5 = all single-beat reads."""
        return self.total_beats / self.busy_cycles if self.busy_cycles \
            else 1.0

    def as_dict(self):
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "busy_cycles": self.busy_cycles,
            "reads_single": self.reads_single,
            "reads_burst": self.reads_burst,
            "writes": self.writes,
            "lines_single": self.lines_single,
            "lines_burst": self.lines_burst,
            "lines_written": self.lines_written,
            "peak_queue": self.peak_queue,
            "single_line_fraction": round(self.single_line_fraction, 4),
            "effective_bandwidth_ratio": round(
                self.effective_bandwidth_ratio, 4),
        }


class DramChannel(Component):
    """One DDR4 channel: request queue, data bus, fixed-latency responses."""

    demand_driven = True
    # Opt-in hooks; class attributes so the unfaulted/unchecked path
    # pays a single "is None" test (see repro.faults).
    _fault = None
    _ledger = None
    # Opt-in telemetry collector (repro.telemetry), same gating: one
    # "is None" test per delivered beat when unset.
    _tele = None
    # Opt-in span tracer (repro.tracing), same gating: one "is None"
    # test per accepted request / delivered beat when unset.
    _trace = None

    def __init__(self, timings, store, name="dram"):
        self.timings = timings
        self.store = store
        self.name = name
        self.req = Channel(timings.request_queue_depth, name=f"{name}.req")
        # Mixed deque of per-beat (ready_time, MemResponse, respond_to)
        # tuples and _Segment records (vector mode, unfaulted reads).
        self._scheduled = deque()
        self._sched_beats = 0  # total undelivered beats across entries
        self._next_free = 0
        self._vec = vector_enabled()
        self.stats = DramStats()

    def attach(self, engine):
        """Register this channel's FIFOs with *engine*."""
        engine.add_channel(self.req)
        engine.add_component(self)
        engine.add_time_source(self)
        # New requests wake the channel at their visibility cycle;
        # response maturity is re-armed per tick (see _arm).
        self.req.subscribe_data(self)
        return self

    def tick(self, engine):
        if self._fault is not None:
            blackout_end = self._fault.dram_blackout_until(engine.now)
            if blackout_end:
                # Channel dead for the window: no accepts, no deliveries.
                # Self-arm the wake at the window end; queued requests
                # and due responses are simply served late.
                engine.wake_at(self, blackout_end)
                return
        delivered = self._deliver(engine)
        self._accept(engine)
        self._arm(engine, delivered)

    def _arm(self, engine, delivered):
        """Schedule the wake for the head of the response queue.

        A head maturing in the future sets a timer; a head that is due
        but undelivered was either rate-limited this cycle (re-arm next
        cycle) or blocked on a full requester FIFO (one-shot space wake
        from that FIFO's next commit).  Queued requests need no arming
        here: popping the request FIFO dirties it, and its commit
        re-fires the data subscription while tokens remain.
        """
        if not self._scheduled:
            return
        head = self._scheduled[0]
        if type(head) is tuple:
            head_time, _, respond_to = head
        else:
            head_time, respond_to = head.t_next, head.respond_to
        if head_time > engine.now:
            engine.wake_at(self, head_time)
        elif delivered >= self.timings.max_deliveries_per_cycle \
                or respond_to is None:
            engine.wake(self)
        else:
            respond_to.request_space_wake(self)

    def next_event_time(self):
        """Next cycle at which a scheduled response becomes ready."""
        if not self._scheduled:
            return None
        head = self._scheduled[0]
        return head[0] if type(head) is tuple else head.t_next

    def _tail_ready(self):
        """Maturity cycle of the newest scheduled beat."""
        tail = self._scheduled[-1]
        if type(tail) is tuple:
            return tail[0]
        return tail.t_next + (tail.n - 1) * tail.step

    @property
    def pending(self):
        """Response beats scheduled but not yet delivered."""
        return self._sched_beats

    def _deliver(self, engine):
        delivered = 0
        limit = self.timings.max_deliveries_per_cycle
        scheduled = self._scheduled
        now = engine.now
        store = self.store
        ledger = self._ledger
        tele = self._tele
        trace = self._trace
        response_pool = MemResponse._pool
        while delivered < limit and scheduled:
            head = scheduled[0]
            if type(head) is not tuple:
                # Segment entry: pop the due run with arithmetic and
                # materialize response tokens only as they enter the
                # requester's FIFO.
                t_next = head.t_next
                if t_next > now:
                    break
                step = head.step
                n_due = (now - t_next) // step + 1
                if n_due > head.n:
                    n_due = head.n
                respond_to = head.respond_to
                if respond_to is None:
                    # Fire-and-forget beats evaporate without ever
                    # materializing (their release point).
                    take = min(n_due, limit - delivered)
                    if ledger is not None:
                        for i in range(take):
                            ledger.retire(("dram", self.name),
                                          head.addr + i * LINE_BYTES)
                else:
                    space = respond_to.free_slots()
                    if space <= 0:
                        break  # head-of-line blocking at the requester
                    take = min(n_due, limit - delivered, space)
                    # One contiguous copy covers the whole batch (the
                    # segment's beats are address-consecutive); each
                    # response slices its 64-byte window out of it.
                    blob = store.read_bytes(head.addr, take * LINE_BYTES)
                    addr = head.addr
                    beat = head.beat
                    last_index = head.last_index
                    tag = head.tag
                    issued_at = head.issued_at
                    batch = []
                    for i in range(take):
                        response = _acquire_response(
                            tag, addr, beat, beat == last_index, False,
                            issued_at,
                        )
                        response.data = \
                            blob[i * LINE_BYTES:(i + 1) * LINE_BYTES]
                        if ledger is not None:
                            ledger.retire(("dram", self.name), addr)
                        if tele is not None and issued_at >= 0:
                            tele.dram_deliver(self.name, now - issued_at)
                        if trace is not None:
                            trace.dram_deliver(self.name, respond_to,
                                               addr, now)
                        batch.append(response)
                        addr += LINE_BYTES
                        beat += 1
                    respond_to.push_many(batch)
                head.n -= take
                head.beat += take
                head.addr += take * LINE_BYTES
                head.t_next = t_next + take * step
                self._sched_beats -= take
                delivered += take
                if head.n == 0:
                    scheduled.popleft()
                continue
            if head[0] > now:
                break
            _, response, respond_to = head
            if respond_to is None:
                # Fire-and-forget request: the beat evaporates here, so
                # this is its release point (data was never attached).
                scheduled.popleft()
                self._sched_beats -= 1
                if ledger is not None:
                    ledger.retire(("dram", self.name), response.addr)
                if response_pool is not None:
                    response_pool.append(response)
                delivered += 1
                continue
            space = respond_to.free_slots()
            if space <= 0:
                break  # head-of-line blocking at the requester
            # Consecutive due beats bound for the same requester move as
            # one push_many (one capacity check, one dirty registration)
            # -- clamped to free space so partial delivery still happens
            # exactly as with per-beat pushes.
            batch = []
            while (
                len(batch) < space
                and delivered + len(batch) < limit
                and scheduled
                and type(scheduled[0]) is tuple
                and scheduled[0][0] <= now
                and scheduled[0][2] is respond_to
            ):
                _, response, _ = scheduled.popleft()
                self._sched_beats -= 1
                if ledger is not None:
                    ledger.retire(("dram", self.name), response.addr)
                if tele is not None and response.issued_at >= 0:
                    tele.dram_deliver(self.name, now - response.issued_at)
                if trace is not None:
                    trace.dram_deliver(self.name, respond_to,
                                       response.addr, now)
                if response.data is None and not response.is_write_ack:
                    response.data = store.read_bytes(response.addr, LINE_BYTES)
                batch.append(response)
            respond_to.push_many(batch)
            delivered += len(batch)
        return delivered

    def _accept(self, engine):
        if self.req._visible:
            self._accept_one(engine.now)

    def _accept_one(self, now):
        """Accept the head request at cycle *now* (one per cycle).

        Factored out of :meth:`_accept` so a fused run can replay the
        exact per-cycle accept with each silent cycle's clock value --
        *now* is a parameter precisely so ``step_n`` never reads
        ``engine.now`` per element.
        """
        req = self.req
        request = req.pop()
        timings = self.timings
        stats = self.stats
        start = max(now, self._next_free)
        beats = request.beats
        tag = request.tag
        addr = request.addr
        respond_to = request.respond_to
        if self._trace is not None:
            # Before the accept-side recycle below clears respond_to,
            # which the tracer uses to attribute the fetch to a bank.
            self._trace.dram_accept(self.name, request, now)
        extra_latency = 0 if self._fault is None \
            else self._fault.dram_extra_latency(now)
        if request.is_write:
            self.store.write_bytes(addr, request.data, request.nbytes)
            service = beats * timings.cycles_per_beat_burst
            self._next_free = start + service
            stats.bytes_written += request.nbytes
            stats.writes += 1
            stats.lines_written += beats
            stats.busy_cycles += service
            if respond_to is not None:
                ack = _acquire_response(tag, addr, 0, True, True, now)
                self._schedule(
                    start + service + timings.latency + extra_latency,
                    ack, respond_to)
        else:
            cpb = timings.cycles_per_beat(request.kind)
            ready_base = start + timings.latency + extra_latency
            if self._vec and self._fault is None:
                self._schedule_segment(ready_base, cpb, beats, addr, tag,
                                       respond_to, now)
            else:
                last = beats - 1
                for beat in range(beats):
                    response = _acquire_response(
                        tag, addr + beat * LINE_BYTES, beat, beat == last,
                        False, now,
                    )
                    self._schedule(ready_base + (beat + 1) * cpb, response,
                                   respond_to)
            self._next_free = start + beats * cpb
            stats.bytes_read += beats * LINE_BYTES
            stats.busy_cycles += beats * cpb
            if request.kind == "single":
                stats.reads_single += 1
                stats.lines_single += beats
            else:
                stats.reads_burst += 1
                stats.lines_burst += beats
            queue_depth = req._visible + self._sched_beats
            if queue_depth > stats.peak_queue:
                stats.peak_queue = queue_depth
        # The channel is a request's single consumer; recycle it (the
        # write payload reference is dropped so pooled tokens never pin
        # a node-value array).
        pool = MemRequest._pool
        if pool is not None:
            request.data = None
            request.tag = None
            request.respond_to = None
            pool.append(request)

    def step_n(self, engine, budget):
        """Fused-tick protocol (see ``repro.sim.Component.step_n``).

        The multi-cycle run a DRAM channel performs under a stable
        singleton wake set is the accept drain: one queued request
        popped per cycle while no response beat is deliverable -- the
        schedule head is either still maturing (the engine's timer
        horizon already bounds *budget* below it) or head-of-line
        blocked on a full requester FIFO that nothing can drain during
        silent cycles.  The batch stops before the first write (store
        writes and ack scheduling stay per-cycle), keeps at least one
        request visible so the queue's per-cycle commit wake chain
        stays intact, and replays each accept with its own cycle value
        via :meth:`_accept_one`.
        """
        if (self._fault is not None or self._trace is not None
                or self._ledger is not None):
            return 0
        req = self.req
        visible = req._visible
        if visible < 2 or req._space_subs or req._space_requests:
            return 0
        now = engine.now
        limit = budget
        scheduled = self._scheduled
        if scheduled:
            head = scheduled[0]
            if type(head) is tuple:
                head_time, _, respond_to = head
            else:
                head_time, respond_to = head.t_next, head.respond_to
            if head_time <= now:
                # Due head: fusable only while head-of-line blocked on
                # a full requester FIFO; deliverable or evaporating
                # heads do real work every cycle.
                if respond_to is None or respond_to.free_slots() > 0:
                    return 0
            elif head_time - now < limit:
                # Belt and braces: _arm's wake_at already put this
                # maturity in the engine's timer heap, which clamps the
                # budget -- but don't depend on that invariant here.
                limit = head_time - now
        else:
            # Empty schedule: newly accepted beats mature no earlier
            # than now + latency + 1, past any in-window cycle.
            if self.timings.latency < limit:
                limit = self.timings.latency
        m = visible - 1
        if limit < m:
            m = limit
        if m < 1:
            return 0
        ring = req._ring
        head_i = req._head
        mask = req._mask
        k = 0
        while k < m and not ring[(head_i + k) & mask].is_write:
            k += 1
        if k < 1:
            return 0
        if self._vec and k >= 16 and self._next_free >= now + k:
            self._accept_batch_vec(k, now)
        else:
            for j in range(k):
                self._accept_one(now + j)
        return k

    def _accept_batch_vec(self, k, now):
        """Vector accept kernel: *k* queued reads on a backlogged bus.

        Only valid when ``_next_free`` stays at or ahead of every
        accept cycle (caller-checked), so each request's start time is
        ``next_free`` plus the cumulative service of the requests
        before it -- one ``fifo_service_starts`` pass -- and the stats
        become whole-batch reductions.  Bit-identical to *k*
        consecutive :meth:`_accept_one` calls; reachable only with the
        fault/trace/ledger hooks unset, so the recycle below matches
        the per-cycle path exactly.
        """
        req = self.req
        timings = self.timings
        stats = self.stats
        latency = timings.latency
        visible0 = req._visible
        requests = [req.pop() for _ in range(k)]
        beats = [r.beats for r in requests]
        cpbs = [timings.cycles_per_beat(r.kind) for r in requests]
        services = [b * c for b, c in zip(beats, cpbs)]
        starts = fifo_service_starts(self._next_free, services)
        pool = MemRequest._pool
        depth = visible0 + self._sched_beats
        peak = stats.peak_queue
        singles = 0
        lines_single = 0
        for j, request in enumerate(requests):
            n = beats[j]
            self._schedule_segment(
                int(starts[j]) + latency, cpbs[j], n, request.addr,
                request.tag, request.respond_to, now + j,
            )
            # Same post-pop depth _accept_one computes: one fewer
            # queued request, this request's beats now scheduled.
            depth += n - 1
            if depth > peak:
                peak = depth
            if request.kind == "single":
                singles += 1
                lines_single += n
            if pool is not None:
                request.data = None
                request.tag = None
                request.respond_to = None
                pool.append(request)
        total_beats = sum(beats)
        total_service = sum(services)
        self._next_free = int(starts[-1]) + services[-1]
        stats.bytes_read += total_beats * LINE_BYTES
        stats.busy_cycles += total_service
        stats.reads_single += singles
        stats.reads_burst += k - singles
        stats.lines_single += lines_single
        stats.lines_burst += total_beats - lines_single
        stats.peak_queue = peak

    def _schedule(self, ready_time, response, respond_to):
        if self._scheduled and ready_time < self._tail_ready():
            if self._fault is not None:
                # An injected latency spike ending between two requests
                # would step the schedule backwards; clamp to the tail
                # so the FIFO delivery order stays intact.
                ready_time = self._tail_ready()
            else:
                # Constant latency and FIFO acceptance keep this monotonic.
                raise AssertionError(
                    "DRAM response schedule went out of order"
                )
        self._scheduled.append((ready_time, response, respond_to))
        self._sched_beats += 1
        if self._ledger is not None:
            self._ledger.issue(("dram", self.name), response.addr)
        if self._fault is not None:
            self._fault.dram_maybe_reorder(self._scheduled)

    def _schedule_segment(self, ready_base, cpb, beats, addr, tag,
                          respond_to, now):
        """Schedule a read burst's beats as one :class:`_Segment`.

        The vector-kernel counterpart of the per-beat ``_schedule``
        loop: beat *i* matures at ``ready_base + (i + 1) * cpb`` with
        address ``addr + i * 64``, exactly the tuples the scalar path
        appends.  Only reachable while unfaulted (the fault hooks
        rewrite individual beats), so the monotonicity violation is
        always an error here.
        """
        first_ready = ready_base + cpb
        if self._scheduled and first_ready < self._tail_ready():
            raise AssertionError("DRAM response schedule went out of order")
        self._scheduled.append(_Segment(
            first_ready, cpb, beats, addr, 0, beats - 1, tag, respond_to,
            now,
        ))
        self._sched_beats += beats
        if self._ledger is not None:
            for beat in range(beats):
                self._ledger.issue(("dram", self.name),
                                   addr + beat * LINE_BYTES)

    def is_idle(self):
        return not self._scheduled and not self.req.pending


# The DRAM tokens circulate through the same freelist machinery as the
# MOMS tokens.  Imported at module bottom: repro.core's package init
# pulls in the hierarchy, which imports this module's classes.
from repro.core.messages import register_pool  # noqa: E402

register_pool(MemRequest)
register_pool(MemResponse)
