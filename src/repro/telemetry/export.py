"""Time-series (JSONL / CSV) and summary export of a telemetry run.

The JSONL layout is one object per line:

* line 1 -- a ``{"type": "meta", ...}`` header carrying the schema
  version, the sampling interval, the run window, and the sorted list
  of series names;
* every further line -- a ``{"type": "sample", "cycle": N, ...}`` gauge
  row (missing keys mean the series did not exist yet at that cycle).

The CSV is the same matrix with one column per series, for spreadsheet
or pandas consumption without a JSON parser.
"""

import csv
import json

from repro.telemetry.collector import TELEMETRY_SCHEMA_VERSION


def series_names(telemetry):
    """Sorted union of gauge names across all sampled rows."""
    names = set()
    for row in telemetry.samples:
        names.update(row)
    names.discard("cycle")
    return sorted(names)


def write_timeline_jsonl(telemetry, path):
    """Write the meta header + one JSON line per sample; returns rows."""
    meta = {
        "type": "meta",
        "version": TELEMETRY_SCHEMA_VERSION,
        "sample_interval": telemetry.sample_interval,
        "start_cycle": telemetry.start_cycle,
        "end_cycle": telemetry.end_cycle,
        "samples": len(telemetry.samples),
        "samples_dropped": telemetry.samples_dropped,
        "series": series_names(telemetry),
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(meta) + "\n")
        for row in telemetry.samples:
            fh.write(json.dumps({"type": "sample", **row}) + "\n")
    return len(telemetry.samples)


def write_timeline_csv(telemetry, path):
    """Write the sampled gauges as one CSV matrix; returns rows."""
    names = series_names(telemetry)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["cycle"] + names)
        for row in telemetry.samples:
            writer.writerow(
                [row["cycle"]] + [row.get(name, "") for name in names]
            )
    return len(telemetry.samples)


def write_summary_json(telemetry, path, extra=None):
    """Write ``telemetry.summary()`` (+ stall tables) as one JSON file."""
    payload = telemetry.summary()
    payload["pe_stall_table"] = telemetry.pe_stall_table()
    payload["bank_stall_table"] = telemetry.bank_stall_table()
    payload["moms_latency_per_pe"] = {
        str(index): histogram.as_dict()
        for index, histogram in sorted(telemetry.moms_latency.items())
    }
    payload["miss_latency_per_bank"] = {
        name: histogram.as_dict()
        for name, histogram in sorted(telemetry.miss_latency.items())
    }
    payload["dram_latency_per_channel"] = {
        name: histogram.as_dict()
        for name, histogram in sorted(telemetry.dram_latency.items())
    }
    payload["bank_structures"] = {
        bank.name: {
            "mshr": bank.mshrs.stats.as_dict(),
            "subentries": bank.subentries.stats.as_dict(),
            "cache": bank.cache.stats.as_dict(),
        }
        for bank in telemetry.banks
    }
    payload["dram_channels"] = {
        channel.name: channel.stats.as_dict()
        for channel in telemetry.dram_channels
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return payload


def validate_timeline_jsonl(path):
    """Check the JSONL schema; raises ``ValueError`` on violation.

    Returns ``{"meta": ..., "samples": N}`` on success.  Used by the CI
    telemetry-smoke job.
    """
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError("timeline is empty")
    meta = json.loads(lines[0])
    if meta.get("type") != "meta":
        raise ValueError("first line must be the meta header")
    if not isinstance(meta.get("version"), int):
        raise ValueError("meta header lacks an integer version")
    if not isinstance(meta.get("series"), list):
        raise ValueError("meta header lacks the series list")
    known = set(meta["series"]) | {"type", "cycle"}
    last_cycle = -1
    count = 0
    for i, line in enumerate(lines[1:], start=2):
        row = json.loads(line)
        if row.get("type") != "sample":
            raise ValueError(f"line {i}: expected a sample row")
        cycle = row.get("cycle")
        if not isinstance(cycle, int) or cycle <= last_cycle:
            raise ValueError(f"line {i}: cycles must be increasing ints")
        last_cycle = cycle
        for key, value in row.items():
            if key == "type":
                continue
            if key not in known:
                raise ValueError(f"line {i}: series {key!r} not in meta")
            if not isinstance(value, (int, float)):
                raise ValueError(f"line {i}: {key!r} is non-numeric")
        count += 1
    return {"meta": meta, "samples": count}
