"""Cycle-resolved telemetry: gauges, latency histograms, stall accounting.

The paper's headline argument is about *occupancy over time* -- a
miss-optimized memory system wins because thousands of misses stay in
flight across the DRAM latency window -- yet scalar end-of-run counters
cannot show that shape.  This module records it:

* **Gauges / timelines** -- a periodic sampler (driven from the engine
  run loop, one ``is None`` test per step when disabled) snapshots MSHR
  occupancy per bank, subentry-buffer fill, DRAM queue depths and
  rolling bandwidth (burst vs single split), and PE input/output
  backpressure into a per-run time series.
* **Latency histograms** -- log2-bucketed issue->response latency per
  requester (PE MOMS reads), per bank (miss issue -> line return) and
  per DRAM channel (request accept -> beat delivery).
* **Stall attribution** -- every PE and bank cycle in the run window is
  attributed to exactly one category (busy, pipeline, waiting-on-mem,
  output-backpressure, raw-stall, mshr-full, subentry-full,
  downstream-full, idle); the per-component table sums exactly to the
  run's cycle count by construction.
* **Spans** -- PE phase intervals (idle/init/pointers/stream/writeback)
  for the Chrome ``trace_event`` export (:mod:`repro.telemetry.trace`).

All hooks follow the fault-subsystem convention: a ``_tele`` class
attribute that defaults to ``None``, so the disabled path costs one
attribute load and ``is None`` test per site and the enabled path
never perturbs architectural state -- cycle counts and results are
bit-identical with telemetry on or off, on both engines.

Demand-driven caveat: samples are taken on *simulated* cycles only.
During fast-forwarded idle windows no component state changes, so the
skipped samples would have repeated the previous row; the timeline
simply has no duplicate points there.
"""

import math
from collections import deque
from dataclasses import dataclass

from repro.accel.pe import (
    IDLE as PE_IDLE,
    INIT_CONST,
    INIT_VIN,
    POINTERS,
    STREAM,
    WRITEBACK,
)

# v2 added the "fusion" block (macro-tick run counters, explicit
# zeros when fusion is off); consumers are tolerant of missing keys.
TELEMETRY_SCHEMA_VERSION = 2

# Stall-attribution categories.  Every accounted cycle lands in exactly
# one of these; BUSY and PIPELINE are the productive buckets.
BUSY = "busy"
PIPELINE = "pipeline"
WAIT_MEM = "waiting-on-mem"
BACKPRESSURE = "output-backpressure"
RAW = "raw-stall"
MSHR_FULL = "mshr-full"
SUBENTRY_FULL = "subentry-full"
DOWNSTREAM_FULL = "downstream-full"
IDLE = "idle"

PE_REASONS = (BUSY, PIPELINE, WAIT_MEM, BACKPRESSURE, RAW, IDLE)
BANK_REASONS = (BUSY, WAIT_MEM, BACKPRESSURE, MSHR_FULL, SUBENTRY_FULL,
                DOWNSTREAM_FULL, IDLE)


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of one telemetry collection.

    ``sample_interval`` is the gauge-sampling period in cycles; when the
    sample buffer exceeds ``max_samples`` the collector decimates it
    (drops every other row) and doubles the interval, bounding memory
    on arbitrarily long runs.  ``max_spans`` bounds the phase-span list
    the same way (further spans are counted, not stored).
    """

    sample_interval: int = 256
    max_samples: int = 1 << 16
    max_spans: int = 250_000


class LatencyHistogram:
    """Log2-bucketed latency histogram.

    Bucket ``b`` counts latencies with ``bit_length() == b``, i.e. the
    interval ``[2**(b-1), 2**b - 1]`` (bucket 0 is exactly latency 0),
    which is how the FPGA implementation would bucket with a priority
    encoder.
    """

    N_BUCKETS = 48  # covers latencies up to 2**47 cycles

    __slots__ = ("counts", "total", "sum", "max")

    def __init__(self):
        self.counts = [0] * self.N_BUCKETS
        self.total = 0
        self.sum = 0
        self.max = 0

    def record(self, latency):
        if latency < 0:
            latency = 0
        bucket = latency.bit_length()
        if bucket >= self.N_BUCKETS:
            bucket = self.N_BUCKETS - 1
        self.counts[bucket] += 1
        self.total += 1
        self.sum += latency
        if latency > self.max:
            self.max = latency

    def merge(self, other):
        for bucket, count in enumerate(other.counts):
            self.counts[bucket] += count
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        return self

    @property
    def mean(self):
        return self.sum / self.total if self.total else 0.0

    def percentile(self, fraction):
        """Upper bound of the log2 bucket holding the given quantile."""
        if not self.total:
            return 0
        target = max(1, math.ceil(self.total * fraction))
        cumulative = 0
        for bucket, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                return (1 << bucket) - 1 if bucket else 0
        return self.max

    def as_dict(self):
        buckets = {
            str(bucket): count
            for bucket, count in enumerate(self.counts) if count
        }
        return {
            "count": self.total,
            "mean": round(self.mean, 2),
            "max": self.max,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "log2_buckets": buckets,
        }

    def compact(self):
        """The few numbers worth carrying in a sweep journal row."""
        return {
            "count": self.total,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


class _Account:
    """Cycle-attribution bookkeeping for one PE or bank."""

    __slots__ = ("label", "last_tick", "snapshot", "buckets")

    def __init__(self, label):
        self.label = label
        self.last_tick = None  # cycle of the not-yet-classified last tick
        self.snapshot = None
        self.buckets = {}

    def add(self, reason, cycles):
        if cycles:
            self.buckets[reason] = self.buckets.get(reason, 0) + cycles

    def total(self):
        return sum(self.buckets.values())


# -- per-component snapshots and classifiers --------------------------------
#
# A tick is classified at the *next* settle point (the following tick or
# the run's finalize) from the deltas of cheap monotonic counters, so
# the hooks never need to thread outcome flags through the tick bodies.


def _pe_snapshot(pe):
    stats = pe.stats
    dma_pushes = 0
    for port in pe.dma.channel_ports:
        if port is not None:
            dma_pushes += port.total_pushed
    return (
        stats.edges_processed,
        stats.raw_stalls,
        stats.moms_request_stalls + stats.id_stalls,
        pe.dma_resp.total_popped,
        pe.moms_resp.total_popped,
        pe.moms_req.total_pushed,
        dma_pushes,
        stats.jobs_completed,
        getattr(pe, "_applied", 0),
        getattr(pe, "_wb_sent", 0),
        len(pe._pipeline),
    )


def _pe_wait_reason(pe):
    """Why the PE is not progressing, judged from its current state."""
    phase = pe._phase
    if phase == PE_IDLE:
        return IDLE
    if phase in (INIT_CONST, INIT_VIN, POINTERS, WRITEBACK):
        return WAIT_MEM  # blocked on DMA beats or write acknowledgements
    # STREAM: prefer the output-side diagnosis when the request port is
    # the binding constraint, then in-flight memory, then the arithmetic
    # pipeline.
    if pe._edge_queue and pe.moms_req.free_slots() == 0:
        return BACKPRESSURE
    if pe._outstanding_moms or pe._bursts_outstanding:
        return WAIT_MEM
    if pe._pipeline:
        return PIPELINE
    return BUSY


def _classify_pe_tick(pe, old, new):
    if (new[0] > old[0] or new[3] > old[3] or new[4] > old[4]
            or new[5] > old[5] or new[6] > old[6] or new[7] > old[7]
            or new[8] != old[8] or new[9] != old[9] or new[10] != old[10]):
        return BUSY
    if new[1] > old[1]:
        return RAW
    if new[2] > old[2]:
        return BACKPRESSURE
    return _pe_wait_reason(pe)


def _bank_snapshot(bank):
    stats = bank.stats
    return (
        stats.requests,
        stats.responses,
        stats.lines_returned,
        stats.stall_mshr,
        stats.stall_subentry,
        stats.stall_downstream,
        stats.stall_response_port,
    )


def _bank_wait_reason(bank):
    if bank._drain_items is not None:
        # A mid-drain bank only sleeps when the response port is full
        # (with room it re-wakes itself every cycle), so a gap in this
        # state is backpressure, matching the all-tick engine's
        # per-cycle stall_response_port accounting.
        return BACKPRESSURE
    if bank.mshrs.occupancy:
        return WAIT_MEM
    return IDLE


def _classify_bank_tick(bank, old, new):
    if new[0] > old[0] or new[1] > old[1] or new[2] > old[2]:
        return BUSY
    if new[3] > old[3]:
        return MSHR_FULL
    if new[4] > old[4]:
        return SUBENTRY_FULL
    if new[5] > old[5]:
        return DOWNSTREAM_FULL
    if new[6] > old[6]:
        return BACKPRESSURE
    return _bank_wait_reason(bank)


def _gap_reason(tick_reason, wait_reason):
    """Attribute the sleep window following a tick.

    A tick that ended in a stall keeps stalling until the wake that
    ends the gap; a productive (or idle) tick's gap is attributed from
    the component's wait state instead.
    """
    if tick_reason in (BUSY, IDLE):
        return wait_reason
    return tick_reason


class Telemetry:
    """One run's telemetry collection, attached to an AcceleratorSystem.

    The engine drives the sampler (``engine.sampler``); PEs, banks and
    DRAM channels call the per-event hooks through their ``_tele``
    attribute.  Everything here observes -- no method mutates any
    simulated structure.
    """

    def __init__(self, config=None):
        self.config = config or TelemetryConfig()
        self.sample_interval = max(1, int(self.config.sample_interval))
        self.next_sample = 0  # read by the engine run loop
        self.samples = []
        self.samples_dropped = 0
        self.start_cycle = 0
        self.end_cycle = None
        self._system = None
        self._pes = []
        self._banks = []
        self._dram = []
        self._pe_accounts = {}
        self._bank_accounts = {}
        # Latency histograms.
        self.moms_latency = {}  # pe_index -> LatencyHistogram
        self.miss_latency = {}  # bank name -> LatencyHistogram
        self.dram_latency = {}  # channel name -> LatencyHistogram
        self._moms_issue_times = {}  # (pe_index, req_id) -> deque of cycles
        self._miss_issue_times = {}  # (bank name, line_addr) -> cycle
        # Spans.
        self.spans = []  # (track, track_id, label, start, end)
        self.spans_dropped = 0
        self._open_phase = {}  # pe_index -> (phase, start)
        # Rolling-bandwidth baselines per DRAM channel.
        self._dram_prev = {}  # name -> (cycle, bytes, burst_lines, single_lines)

    # -- wiring --------------------------------------------------------------

    def attach(self, system):
        """Install hooks on *system*'s engine, PEs, banks and channels."""
        self._system = system
        engine = system.engine
        engine.sampler = self
        now = engine.now
        self.next_sample = now
        for pe in system.pes:
            pe._tele = self
            self._pes.append(pe)
            self._pe_accounts[pe] = _Account(f"pe{pe.pe_index}")
            self.moms_latency[pe.pe_index] = LatencyHistogram()
            self._open_phase[pe.pe_index] = (pe._phase, now)
        for bank in system.hierarchy.banks:
            bank._tele = self
            self._banks.append(bank)
            self._bank_accounts[bank] = _Account(bank.name)
            self.miss_latency[bank.name] = LatencyHistogram()
        for channel in system.mem.channels:
            channel._tele = self
            self._dram.append(channel)
            self.dram_latency[channel.name] = LatencyHistogram()
            stats = channel.stats
            self._dram_prev[channel.name] = (
                now, stats.bytes_read + stats.bytes_written,
                stats.lines_burst, stats.lines_single,
            )
        return self

    @property
    def banks(self):
        """The attached cache banks (for structure-stat export)."""
        return tuple(self._banks)

    @property
    def dram_channels(self):
        """The attached DRAM channels (for structure-stat export)."""
        return tuple(self._dram)

    def begin(self, engine):
        """Mark the start of the accounted run window."""
        self.start_cycle = engine.now
        self.next_sample = engine.now

    def finalize(self, engine):
        """Close the run window: settle trailing ticks, gaps and spans."""
        end = engine.now
        self.end_cycle = end
        for pe, account in self._pe_accounts.items():
            self._settle_tail(
                account, end,
                lambda old, new, c=pe: _classify_pe_tick(c, old, new),
                lambda c=pe: _pe_wait_reason(c),
                lambda c=pe: _pe_snapshot(c),
            )
        for bank, account in self._bank_accounts.items():
            self._settle_tail(
                account, end,
                lambda old, new, c=bank: _classify_bank_tick(c, old, new),
                lambda c=bank: _bank_wait_reason(c),
                lambda c=bank: _bank_snapshot(c),
            )
        for pe_index, (phase, start) in list(self._open_phase.items()):
            if end > start:
                self._add_span("pe", pe_index, phase, start, end)
            self._open_phase[pe_index] = (phase, end)

    def _settle_tail(self, account, end, classify, wait_reason, snapshot):
        last = account.last_tick
        if last is None:
            account.add(IDLE, end - self.start_cycle - account.total())
            return
        reason = classify(account.snapshot, snapshot())
        account.add(reason, 1)
        trailing = end - last - 1
        if trailing > 0:
            account.add(_gap_reason(reason, wait_reason()), trailing)
        account.last_tick = None
        account.snapshot = None

    # -- sampler (driven by Engine.run) --------------------------------------

    def sample(self, engine):
        """Record one gauge row; called by the engine when due."""
        now = engine.now
        row = {"cycle": now}
        total_mshr = 0
        total_subentries = 0
        for bank in self._banks:
            occupancy = bank.mshrs.occupancy
            row[f"bank.{bank.name}.mshr"] = occupancy
            live = bank.subentries.entries_live
            row[f"bank.{bank.name}.subentries"] = live
            row[f"bank.{bank.name}.line_in"] = bank.line_in.pending
            total_mshr += occupancy
            total_subentries += live
        row["mshr_total"] = total_mshr
        row["subentries_total"] = total_subentries
        for channel in self._dram:
            stats = channel.stats
            name = channel.name
            row[f"dram.{name}.queue"] = (
                channel.req.pending + channel.pending
            )
            prev_cycle, prev_bytes, prev_burst, prev_single = \
                self._dram_prev[name]
            elapsed = now - prev_cycle
            total_bytes = stats.bytes_read + stats.bytes_written
            if elapsed > 0:
                row[f"dram.{name}.bw_bytes_per_cycle"] = round(
                    (total_bytes - prev_bytes) / elapsed, 3
                )
            else:
                row[f"dram.{name}.bw_bytes_per_cycle"] = 0.0
            row[f"dram.{name}.burst_lines"] = stats.lines_burst - prev_burst
            row[f"dram.{name}.single_lines"] = (
                stats.lines_single - prev_single
            )
            self._dram_prev[name] = (
                now, total_bytes, stats.lines_burst, stats.lines_single,
            )
        for pe in self._pes:
            index = pe.pe_index
            row[f"pe.{index}.edge_queue"] = len(pe._edge_queue)
            row[f"pe.{index}.moms_outstanding"] = pe._outstanding_moms
            row[f"pe.{index}.req_fill"] = pe.moms_req.pending
            row[f"pe.{index}.resp_fill"] = pe.moms_resp.pending
        row["channel_tokens_total"] = sum(
            channel.pending for channel in engine._channels
        )
        self.samples.append(row)
        if len(self.samples) > self.config.max_samples:
            # Bound memory on long runs: halve resolution, keep coverage.
            self.samples_dropped += len(self.samples) - \
                len(self.samples[::2])
            self.samples = self.samples[::2]
            self.sample_interval *= 2
        interval = self.sample_interval
        self.next_sample = now - now % interval + interval

    # -- per-tick accounting hooks -------------------------------------------

    def pe_before_tick(self, pe, now):
        """Settle the PE's previous tick and sleep gap (called at tick start)."""
        account = self._pe_accounts[pe]
        snapshot = _pe_snapshot(pe)
        last = account.last_tick
        if last is None:
            account.add(IDLE, now - self.start_cycle)
        else:
            reason = _classify_pe_tick(pe, account.snapshot, snapshot)
            account.add(reason, 1)
            gap = now - last - 1
            if gap > 0:
                account.add(_gap_reason(reason, _pe_wait_reason(pe)), gap)
        account.last_tick = now
        account.snapshot = snapshot

    def bank_before_tick(self, bank, now):
        """Settle the bank's previous tick and sleep gap."""
        account = self._bank_accounts[bank]
        snapshot = _bank_snapshot(bank)
        last = account.last_tick
        if last is None:
            account.add(IDLE, now - self.start_cycle)
        else:
            reason = _classify_bank_tick(bank, account.snapshot, snapshot)
            account.add(reason, 1)
            gap = now - last - 1
            if gap > 0:
                account.add(_gap_reason(reason, _bank_wait_reason(bank)),
                            gap)
        account.last_tick = now
        account.snapshot = snapshot

    # -- span hooks ----------------------------------------------------------

    def _add_span(self, track, track_id, label, start, end):
        if len(self.spans) >= self.config.max_spans:
            self.spans_dropped += 1
            return
        self.spans.append((track, track_id, label, start, end))

    def pe_phase(self, pe_index, new_phase, now):
        """PE phase transition: close the open span, open the next."""
        phase, start = self._open_phase[pe_index]
        if now > start:
            self._add_span("pe", pe_index, phase, start, now)
        self._open_phase[pe_index] = (new_phase, now)

    # -- latency hooks -------------------------------------------------------

    def moms_issue(self, pe_index, req_id, now):
        key = (pe_index, req_id)
        times = self._moms_issue_times.get(key)
        if times is None:
            times = self._moms_issue_times[key] = deque()
        times.append(now)

    def moms_retire(self, pe_index, req_id, now):
        key = (pe_index, req_id)
        times = self._moms_issue_times.get(key)
        if not times:
            return  # issued before telemetry attached; drop silently
        self.moms_latency[pe_index].record(now - times.popleft())
        if not times:
            del self._moms_issue_times[key]

    def miss_issue(self, bank_name, line_addr, now):
        # One MSHR per line per bank, so the key is unique while in flight.
        self._miss_issue_times[(bank_name, line_addr)] = now

    def miss_return(self, bank_name, line_addr, now):
        issued = self._miss_issue_times.pop((bank_name, line_addr), None)
        if issued is not None:
            self.miss_latency[bank_name].record(now - issued)

    def dram_deliver(self, channel_name, latency):
        self.dram_latency[channel_name].record(latency)

    # -- results -------------------------------------------------------------

    @property
    def cycles(self):
        end = self.end_cycle
        if end is None:
            return 0
        return end - self.start_cycle

    def _account_rows(self, accounts, reasons):
        rows = []
        for account in accounts.values():
            row = {"component": account.label}
            total = 0
            for reason in reasons:
                value = account.buckets.get(reason, 0)
                row[reason] = value
                total += value
            for reason, value in account.buckets.items():
                if reason not in reasons:
                    row[reason] = value
                    total += value
            row["total"] = total
            rows.append(row)
        return rows

    def pe_stall_table(self):
        """Per-PE cycle accounting; each row's total == run cycles."""
        return self._account_rows(self._pe_accounts, PE_REASONS)

    def bank_stall_table(self):
        """Per-bank cycle accounting; each row's total == run cycles."""
        return self._account_rows(self._bank_accounts, BANK_REASONS)

    def _bucket_totals(self, accounts):
        totals = {}
        for account in accounts.values():
            for reason, value in account.buckets.items():
                totals[reason] = totals.get(reason, 0) + value
        return totals

    def merged_latency(self, histograms):
        merged = LatencyHistogram()
        for histogram in histograms.values():
            merged.merge(histogram)
        return merged

    def mshr_timeline(self):
        """(cycle, total in-flight misses) pairs from the sampled gauges."""
        return [(row["cycle"], row["mshr_total"]) for row in self.samples]

    def summary(self):
        """Compact, JSON-safe digest for journal rows and reports."""
        mshr = [row["mshr_total"] for row in self.samples]
        engine = self._system.engine if self._system is not None else None
        fused_runs = getattr(engine, "fused_runs", 0)
        fused_cycles = getattr(engine, "fused_cycles", 0)
        abort_reasons = dict(
            getattr(engine, "fusion_abort_reasons", {}) or {}
        )
        bank_stats = [bank.stats for bank in self._banks]
        requests = sum(s.requests for s in bank_stats)
        hits = sum(s.cache_hits for s in bank_stats)
        secondary = sum(s.secondary_misses for s in bank_stats)
        primary = sum(s.primary_misses for s in bank_stats)
        dram_stats = [channel.stats for channel in self._dram]
        lines_single = sum(s.lines_single for s in dram_stats)
        lines_total = sum(s.lines_total for s in dram_stats)
        busy = sum(s.busy_cycles for s in dram_stats)
        beats = sum(s.total_beats for s in dram_stats)
        return {
            "version": TELEMETRY_SCHEMA_VERSION,
            "cycles": self.cycles,
            "sample_interval": self.sample_interval,
            "samples": len(self.samples),
            "samples_dropped": self.samples_dropped,
            "spans": len(self.spans),
            "spans_dropped": self.spans_dropped,
            "mshr_peak": max(mshr, default=0),
            "mshr_mean": round(sum(mshr) / len(mshr), 2) if mshr else 0.0,
            # Macro-tick fusion counters: execution-strategy metadata
            # (how the engine advanced time), recorded with explicit
            # zeros when fusion is off so the keys are never absent.
            "fusion": {
                "fused_runs": fused_runs,
                "fused_cycles": fused_cycles,
                "mean_run_len": round(fused_cycles / fused_runs, 2)
                if fused_runs else 0.0,
                "abort_reasons": {
                    reason: abort_reasons[reason]
                    for reason in sorted(abort_reasons)
                },
            },
            "pe_stalls": self._bucket_totals(self._pe_accounts),
            "bank_stalls": self._bucket_totals(self._bank_accounts),
            "cache": {
                "requests": requests,
                "hits": hits,
                "secondary_misses": secondary,
                "primary_misses": primary,
                "no_dram_fraction": round(
                    (hits + secondary) / requests, 4) if requests else 0.0,
                "merge_rate": round(
                    secondary / (secondary + primary), 4
                ) if secondary + primary else 0.0,
            },
            "moms_latency": self.merged_latency(self.moms_latency).compact(),
            "miss_latency": self.merged_latency(self.miss_latency).compact(),
            "dram_latency": self.merged_latency(self.dram_latency).compact(),
            "dram": {
                "single_line_fraction": round(
                    lines_single / lines_total, 4) if lines_total else 0.0,
                "effective_bw_ratio": round(
                    beats / busy, 4) if busy else 1.0,
            },
        }
