"""The ``python -m repro trace`` subcommand.

Runs one (graph, algorithm) point with telemetry enabled and exports
the collection next to each other under one path prefix::

    python -m repro trace --graph RV --algorithm pagerank \
        --interval 64 --out out/rv_pagerank

writes ``out/rv_pagerank.trace.json`` (Chrome trace_event, load it at
https://ui.perfetto.dev), ``out/rv_pagerank.timeline.jsonl`` (gauge
time series), ``out/rv_pagerank.summary.json`` (histograms + stall
tables), and with ``--csv`` also ``out/rv_pagerank.timeline.csv``.

Every export is re-read and schema-validated before the command
reports success, so the CI telemetry-smoke job is just this command.
"""

import os


def add_trace_arguments(parser):
    """Attach the trace-specific flags to the __main__ parser."""
    parser.add_argument(
        "--graph", default="RV", metavar="KEY",
        help="benchmark graph key (see repro.graph.datasets; default RV)",
    )
    parser.add_argument(
        "--algorithm", default="pagerank",
        choices=("pagerank", "bfs", "sssp", "scc"),
        help="algorithm to run (default pagerank)",
    )
    parser.add_argument(
        "--interval", type=int, default=64, metavar="CYCLES",
        help="gauge sampling interval in cycles (default 64)",
    )
    parser.add_argument(
        "--out", default="telemetry/trace", metavar="PREFIX",
        help="output path prefix (default telemetry/trace)",
    )
    parser.add_argument(
        "--csv", action="store_true",
        help="also write the timeline as CSV",
    )


def run_trace(args, log=print):
    """Run the traced point, export, validate; returns an exit code."""
    # Mode knobs must land in the environment before the simulation
    # stack is imported (engine/kernel selection happens at build).
    if getattr(args, "engine", None):
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "kernels", None):
        os.environ["REPRO_KERNELS"] = args.kernels
    # Imported here: the CLI parser must stay importable without the
    # simulation stack.
    from repro.accel.config import (
        ArchitectureConfig,
        SCALED_DEFAULTS,
        _design,
    )
    from repro.accel.system import AcceleratorSystem
    from repro.experiments.common import bench_graph, iteration_budget
    from repro.fabric.design import MOMS_TWO_LEVEL
    from repro.report import format_table, telemetry_summary_line
    from repro.telemetry.collector import (
        BANK_REASONS,
        PE_REASONS,
        TelemetryConfig,
    )
    from repro.telemetry.export import (
        validate_timeline_jsonl,
        write_summary_json,
        write_timeline_csv,
        write_timeline_jsonl,
    )
    from repro.telemetry.trace import (
        validate_chrome_trace,
        write_chrome_trace,
    )

    quick = not args.full
    graph = bench_graph(args.graph, quick=quick)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, args.algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )
    log(f"[trace] {args.graph} / {args.algorithm}: "
        f"{graph.n_nodes:,} nodes, {graph.n_edges:,} edges, "
        f"sampling every {args.interval} cycles")
    system = AcceleratorSystem(
        graph, args.algorithm, config,
        telemetry=TelemetryConfig(sample_interval=args.interval),
    )
    result = system.run(
        max_iterations=iteration_budget(args.algorithm, quick)
    )
    telemetry = system.telemetry
    log(f"[trace] ran {result.cycles:,} cycles, "
        f"{result.iterations} iteration(s), "
        f"{result.edges_processed:,} edges")

    prefix = args.out
    parent = os.path.dirname(prefix)
    if parent:
        os.makedirs(parent, exist_ok=True)
    trace_path = f"{prefix}.trace.json"
    timeline_path = f"{prefix}.timeline.jsonl"
    summary_path = f"{prefix}.summary.json"

    events = write_chrome_trace(telemetry, trace_path)
    rows = write_timeline_jsonl(telemetry, timeline_path)
    write_summary_json(telemetry, summary_path, extra={
        "graph": args.graph,
        "algorithm": args.algorithm,
        "run_cycles": result.cycles,
        "gteps": result.gteps,
    })
    if args.csv:
        write_timeline_csv(telemetry, f"{prefix}.timeline.csv")

    # Self-validate every export; a schema violation is a command
    # failure (this is the CI gate).
    trace_counts = validate_chrome_trace(trace_path)
    timeline_info = validate_timeline_jsonl(timeline_path)

    log("")
    log(format_table(
        telemetry.pe_stall_table(),
        columns=["component"] + list(PE_REASONS) + ["total"],
        title="PE cycle accounting (sums to run cycles per row)",
    ))
    log("")
    log(format_table(
        telemetry.bank_stall_table(),
        columns=["component"] + list(BANK_REASONS) + ["total"],
        title="bank cycle accounting",
    ))
    log("")
    log(telemetry_summary_line(telemetry.summary()))
    log(f"[trace] {trace_path}: {events} events validated "
        f"({trace_counts})")
    log(f"[trace] {timeline_path}: {rows} rows validated "
        f"({len(timeline_info['meta']['series'])} series)")
    log(f"[trace] {summary_path}: written")
    log("[trace] open the trace at https://ui.perfetto.dev "
        "(or chrome://tracing)")
    return 0
