"""Chrome ``trace_event`` export of a telemetry collection.

The output follows the Trace Event Format's "JSON Object Format"
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
loadable by Perfetto (https://ui.perfetto.dev) and legacy
``chrome://tracing``:

* ``"X"`` complete events -- one per PE phase span (idle / init /
  pointers / stream / writeback), on one track (``tid``) per PE;
* ``"C"`` counter events -- per-bank MSHR + subentry occupancy, DRAM
  queue depth and rolling bandwidth, emitted from the sampled gauge
  rows;
* ``"M"`` metadata events naming the processes and threads.

Timestamps are microseconds in the format; we map 1 simulated cycle to
1 us so Perfetto's time axis reads directly in cycles.
"""

import json

# Synthetic process ids grouping the tracks in the viewer.
_PID_PES = 1
_PID_MEMORY = 2

_COUNTER_PREFIXES = ("bank.", "dram.")


def to_chrome_trace(telemetry, cycle_us=1.0):
    """Build the trace as a JSON-ready dict (1 cycle == ``cycle_us`` us)."""
    events = [
        {"ph": "M", "pid": _PID_PES, "name": "process_name",
         "args": {"name": "processing elements"}},
        {"ph": "M", "pid": _PID_MEMORY, "name": "process_name",
         "args": {"name": "memory system"}},
    ]
    for pe_index in sorted(telemetry.moms_latency):
        events.append({
            "ph": "M", "pid": _PID_PES, "tid": pe_index,
            "name": "thread_name", "args": {"name": f"pe{pe_index}"},
        })
    for track, track_id, label, start, end in telemetry.spans:
        if track != "pe" or label == "idle":
            continue  # idle gaps read better as empty space on the track
        events.append({
            "ph": "X", "pid": _PID_PES, "tid": track_id,
            "name": label, "cat": "phase",
            "ts": start * cycle_us, "dur": (end - start) * cycle_us,
        })
    for row in telemetry.samples:
        ts = row["cycle"] * cycle_us
        mshr_args = {"total": row.get("mshr_total", 0)}
        subentry_args = {"total": row.get("subentries_total", 0)}
        queue_args = {}
        bw_args = {}
        for key, value in row.items():
            if key.startswith("bank."):
                _, bank, series = key.split(".", 2)
                if series == "mshr":
                    mshr_args[bank] = value
                elif series == "subentries":
                    subentry_args[bank] = value
            elif key.startswith("dram."):
                _, channel, series = key.split(".", 2)
                if series == "queue":
                    queue_args[channel] = value
                elif series == "bw_bytes_per_cycle":
                    bw_args[channel] = value
        events.append({"ph": "C", "pid": _PID_MEMORY, "tid": 0,
                       "name": "mshr in flight", "ts": ts,
                       "args": mshr_args})
        events.append({"ph": "C", "pid": _PID_MEMORY, "tid": 0,
                       "name": "subentries live", "ts": ts,
                       "args": subentry_args})
        if queue_args:
            events.append({"ph": "C", "pid": _PID_MEMORY, "tid": 0,
                           "name": "dram queue depth", "ts": ts,
                           "args": queue_args})
        if bw_args:
            events.append({"ph": "C", "pid": _PID_MEMORY, "tid": 0,
                           "name": "dram bandwidth B/cycle", "ts": ts,
                           "args": bw_args})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "cycles_per_us": 1.0 / cycle_us if cycle_us else 0.0,
            "start_cycle": telemetry.start_cycle,
            "end_cycle": telemetry.end_cycle,
        },
    }


def write_chrome_trace(telemetry, path, cycle_us=1.0):
    """Write the trace JSON to *path*; returns the event count."""
    trace = to_chrome_trace(telemetry, cycle_us=cycle_us)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])


def validate_chrome_trace(path):
    """Parse *path* and check trace_event structural rules.

    Raises ``ValueError`` on the first violation; returns a dict of
    per-phase-type event counts on success.  This is what the CI
    telemetry-smoke job runs against the exported artifact.
    """
    with open(path) as fh:
        trace = json.load(fh)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    counts = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"event {i} has no phase type 'ph'")
        if "name" not in event:
            raise ValueError(f"event {i} ({ph}) has no name")
        if ph in ("X", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                raise ValueError(f"event {i} ({ph}) has non-numeric ts")
            if "pid" not in event or "tid" not in event:
                raise ValueError(f"event {i} ({ph}) lacks pid/tid")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i} (X) has invalid dur")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"event {i} (C) has no args values")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"event {i} (C) arg {key!r} is non-numeric"
                    )
        counts[ph] = counts.get(ph, 0) + 1
    return counts
