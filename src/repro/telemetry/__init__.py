"""Opt-in cycle-resolved telemetry: timelines, histograms, stalls.

Everything here is off unless a run passes ``telemetry=`` to
:class:`repro.accel.system.AcceleratorSystem` (or sets
``REPRO_TELEMETRY=1`` for sweeps); the disabled hooks are single
``is None`` tests on class attributes.
"""

from repro.telemetry.collector import (
    TELEMETRY_SCHEMA_VERSION,
    LatencyHistogram,
    Telemetry,
    TelemetryConfig,
)
from repro.telemetry.export import (
    validate_timeline_jsonl,
    write_summary_json,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.telemetry.trace import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "LatencyHistogram",
    "Telemetry",
    "TelemetryConfig",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "validate_timeline_jsonl",
    "write_summary_json",
    "write_timeline_csv",
    "write_timeline_jsonl",
]
