"""Fig. 11: throughput across MOMS architectures x {PR, SCC, SSSP}."""

from conftest import run_experiment

from repro.experiments import fig11_architectures
from repro.report import geomean


def test_fig11_architectures(benchmark):
    rows = run_experiment(benchmark, fig11_architectures)

    def geo(arch_substr, algorithm):
        values = [r["geomean"] for r in rows
                  if arch_substr in r["architecture"]
                  and r["algorithm"] == algorithm]
        return geomean(values)

    for algorithm in ("pagerank", "scc", "sssp"):
        two_level = geo("two-level", algorithm)
        traditional = geo("traditional", algorithm)
        shared = geo("shared", algorithm)
        # MOMSes beat the traditional non-blocking cache, and the
        # two-level organization beats the shared-only one (paper V-B).
        assert two_level > traditional, algorithm
        assert two_level > shared, algorithm
