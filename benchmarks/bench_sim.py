"""Quick simulator benchmark suite -> BENCH_sim.json.

Measures the wall-clock effect of the demand-driven engine, the
columnar vector kernels, the hot-path kernelization (SoA channels,
token pooling, batched stepping), and the parallel sweep runner on a
fixed four-point suite (PageRank on the RV stand-in across the shared
/ private / two-level / traditional organizations -- the same workload
family as Fig. 1/11), as a three-way serial pass:

* **baseline**: the seed schedule -- all-tick legacy engine
  (``REPRO_ENGINE=legacy``), scalar kernels, points run serially;
* **optimized (serial, scalar)**: demand-driven engine with
  ``REPRO_KERNELS=scalar`` -- isolates the engine effect;
* **optimized (serial, vector)**: demand-driven engine with the
  columnar vector kernels (the shipping default) -- the kernel win
  rides on top of the engine win;
* **optimized (parallel)**: demand engine + vector kernels, points run
  through :func:`repro.experiments.common.run_points` with
  ``REPRO_JOBS`` workers (defaults to the CPU count), so multi-core
  hosts show the real combined speedup; single-worker hosts record the
  skip (``{"skipped": ...}`` with the host core count) instead of null.

``engine_speedup_serial`` is baseline over demand-scalar,
``kernel_speedup_serial`` is demand-scalar over demand-vector, and
``combined_speedup`` is the baseline wall over the best optimized wall.
Cycle counts are asserted identical between every pass -- the speedup
is free of model drift by construction, and the scalar/vector race is
the bit-identity gate for the columnar engine.  Each point also
reports steady-state token constructions per simulated cycle (near
zero with the freelists circulating), and a dedicated micro-benchmark
races the same point with pooling disabled (``REPRO_POOL=0``) to
quantify the drop.  Micro-benchmarks of ``Channel.push_many`` and the
disabled fault/telemetry/checkpoint gates (<3% budget each) round out
the file.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py [--quick] \
        [--output BENCH_sim.json]

``--quick`` runs the same suite and gates on a smaller graph with a
one-iteration budget (the CI perf-smoke configuration).

A separate **deep-queue pass** races the scalar and vector kernels on
an MSHR-starved single-PE point (long-latency, deep-queued DRAM,
deeper cuckoo kick chains -- see ``_DEEP``) where most cycles are
fused macro-tick retry runs; it records
``kernel_speedup_serial_deep`` alongside the CI-scale figures.
``--scale`` moves that pass's RMAT graph scale for exploration.

Legacy-engine passes record ``tick_fraction: null``: the all-tick
engine's fraction is 1.0 by definition, and recording the tautology
would let it be mistaken for a demand-engine measurement.
"""

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.core import messages
from repro.core.stats import EngineActivity
from repro.experiments.common import bench_graph, default_jobs, run_points
from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
)
from repro.graph import web_graph
from repro.graph.generators import rmat_graph
from repro.mem.dram import DramTimings
from repro.sim import Channel
from repro.sim.engine import Engine

SUITE = (
    ("traditional", MOMS_TRADITIONAL),
    ("two-level", MOMS_TWO_LEVEL),
    ("shared", MOMS_SHARED),
    ("private", MOMS_PRIVATE),
)

# --quick swaps the suite point for a smaller graph and budget; the
# passes, assertions, and gates are identical (CI perf-smoke config).
_QUICK = {"graph": "WT", "iterations": 1}
_FULL = {"graph": "RV", "iterations": 2}
_SCALE = _FULL

# Deep-queue point: a single-PE / single-bank / single-channel shared
# MOMS starved at the MSHR file -- a tiny structure budget against a
# long-latency, deep-queued DRAM channel, with deeper cuckoo kick
# chains.  Most simulated cycles are full-table retry storms, which is
# exactly the regime the fused macro-tick runs batch; the scalar /
# vector race on this point is the honest measure of that batching
# (``kernel_speedup_serial_deep``).  ``--scale`` moves the RMAT graph
# scale for exploration; CI and the committed figure use the default.
_DEEP = {
    "rmat_scale": 10,
    "edge_factor": 16,
    "seed": 5,
    "iterations": 1,
    "structure_scale": 1 / 256,
    "dram_latency": 1000,
    "request_queue_depth": 512,
    "mshr_max_kicks": 32,
}


def _tick_fraction(activity):
    """Demand-engine tick fraction, or None on the legacy engine.

    The legacy all-tick engine executes every component every cycle by
    construction, so its "fraction" is the definition, not a
    measurement -- recording 1.0 would let it be mistaken for a
    demand-engine result.  Legacy passes record null instead.
    """
    if os.environ.get("REPRO_ENGINE") == "legacy":
        return None
    return round(activity.tick_fraction, 4)


def _point(label_org):
    label, organization = label_org
    graph = bench_graph(_SCALE["graph"], True)
    config = ArchitectureConfig(
        _design(4, 4, organization, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    start = time.perf_counter()
    system = AcceleratorSystem(graph, "pagerank", config)
    messages.reset_pool_counters()
    result = system.run(max_iterations=_SCALE["iterations"])
    wall = time.perf_counter() - start
    fresh = messages.fresh_allocations()
    activity = EngineActivity.from_engine(system.engine)
    return {
        "organization": label,
        "cycles": result.cycles,
        "gteps": result.gteps,
        "wall_s": round(wall, 3),
        "tick_fraction": _tick_fraction(activity),
        "fresh_tokens": fresh,
        "allocs_per_cycle": round(fresh / result.cycles, 5)
        if result.cycles else 0.0,
        "activity": activity.as_dict(),
    }


def run_pass(engine_kind, jobs, kernels="vector"):
    os.environ["REPRO_ENGINE"] = engine_kind
    os.environ["REPRO_KERNELS"] = kernels
    start = time.perf_counter()
    rows = run_points(_point, list(SUITE), jobs=jobs)
    wall = time.perf_counter() - start
    activity = EngineActivity()
    for row in rows:
        activity.merge(row.pop("activity"))
    return {
        "engine": engine_kind,
        "kernels": kernels,
        "jobs": jobs,
        "wall_s": round(wall, 3),
        "points": rows,
        "tick_fraction": _tick_fraction(activity),
        "allocs_per_cycle": round(
            sum(row["fresh_tokens"] for row in rows)
            / max(1, sum(row["cycles"] for row in rows)), 5
        ),
        "summary": activity.summary_line(jobs=jobs),
    }


def _deep_config():
    config = ArchitectureConfig(
        _design(1, 1, MOMS_SHARED, "pagerank", n_channels=1,
                mshr_max_kicks=_DEEP["mshr_max_kicks"]),
        **dict(SCALED_DEFAULTS,
               structure_scale=_DEEP["structure_scale"]),
    )
    config.dram_timings = DramTimings(
        latency=_DEEP["dram_latency"],
        request_queue_depth=_DEEP["request_queue_depth"],
    )
    return config


def _deep_leg(graph, kernels):
    os.environ["REPRO_ENGINE"] = "demand"
    os.environ["REPRO_KERNELS"] = kernels
    system = AcceleratorSystem(graph, "pagerank", _deep_config())
    start = time.perf_counter()
    result = system.run(max_iterations=_DEEP["iterations"])
    wall = time.perf_counter() - start
    activity = EngineActivity.from_engine(system.engine)
    return {
        "kernels": kernels,
        "cycles": result.cycles,
        "gteps": result.gteps,
        "wall_s": round(wall, 3),
        "tick_fraction": _tick_fraction(activity),
        "fused_runs": activity.fused_runs,
        "fused_cycles": activity.fused_cycles,
        "mean_run_len": round(activity.mean_run_len, 1),
        "fused_cycle_fraction": round(
            activity.fused_cycles / result.cycles, 4
        ) if result.cycles else 0.0,
        "fusion_abort_reasons": {
            reason: activity.fusion_abort_reasons[reason]
            for reason in sorted(activity.fusion_abort_reasons)
        },
    }


def run_deep_pass(rmat_scale):
    """Scalar-vs-vector race on the deep-queue point.

    Both legs run the demand engine with fusion at its default, so the
    race isolates what the batched ``step_n`` kernels (closed-form LCG
    jumps, columnar retry batches) buy over the same fused runs
    executed with the scalar reference loops.  Cycle counts and per-run
    stats are asserted identical -- the speedup is free of model drift
    by construction.
    """
    graph = rmat_graph(rmat_scale, edge_factor=_DEEP["edge_factor"],
                       seed=_DEEP["seed"])
    scalar = _deep_leg(graph, "scalar")
    vector = _deep_leg(graph, "vector")
    assert scalar["cycles"] == vector["cycles"], (scalar, vector)
    assert scalar["gteps"] == vector["gteps"], (scalar, vector)
    assert scalar["fused_cycles"] == vector["fused_cycles"], \
        (scalar, vector)
    return {
        "point": (
            f"PageRank / rmat-{rmat_scale} ef{_DEEP['edge_factor']} / "
            f"shared 1x1, 1 channel, latency "
            f"{_DEEP['dram_latency']}, queue "
            f"{_DEEP['request_queue_depth']}, "
            f"{_DEEP['mshr_max_kicks']}-kick MSHRs, "
            f"structure_scale 1/{round(1 / _DEEP['structure_scale'])}"
        ),
        "rmat_scale": rmat_scale,
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "iterations": _DEEP["iterations"],
        "cycles": scalar["cycles"],
        "scalar": scalar,
        "vector": vector,
        "cycles_identical": True,
        "kernel_speedup_serial_deep": round(
            scalar["wall_s"] / vector["wall_s"], 2
        ),
    }


def bench_pooling_off(quick):
    """Token constructions per cycle with pooling disabled vs enabled.

    ``REPRO_POOL`` is read once at import, so the pooling-off leg runs
    in a fresh interpreter; the pooling-on leg matches it in-process on
    the same point for an apples-to-apples allocation rate.
    """
    scale = _QUICK if quick else _FULL
    script = (
        "import json\n"
        "from repro.accel.config import ArchitectureConfig, "
        "SCALED_DEFAULTS, _design\n"
        "from repro.accel.system import AcceleratorSystem\n"
        "from repro.core import messages\n"
        "from repro.experiments.common import bench_graph\n"
        "from repro.fabric.design import MOMS_TWO_LEVEL\n"
        f"graph = bench_graph({scale['graph']!r}, True)\n"
        "config = ArchitectureConfig(_design(4, 4, MOMS_TWO_LEVEL, "
        "'pagerank', n_channels=2), **SCALED_DEFAULTS)\n"
        "system = AcceleratorSystem(graph, 'pagerank', config)\n"
        "messages.reset_pool_counters()\n"
        f"result = system.run(max_iterations={scale['iterations']})\n"
        "print(json.dumps({'fresh': messages.fresh_allocations(), "
        "'cycles': result.cycles, "
        "'pooling': messages.POOLING_ENABLED}))\n"
    )

    def leg(pool_env):
        env = dict(os.environ)
        env["REPRO_POOL"] = pool_env
        env["REPRO_ENGINE"] = "demand"
        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", script], env=env, check=True,
            capture_output=True, text=True,
        ).stdout
        return json.loads(output.strip().splitlines()[-1])

    off = leg("0")
    on = leg("1")
    assert off["cycles"] == on["cycles"], (off, on)
    assert not off["pooling"] and on["pooling"]
    return {
        "point": f"PageRank / {scale['graph']} / two-level 4x4",
        "cycles": on["cycles"],
        "allocs_per_cycle_unpooled": round(off["fresh"] / off["cycles"], 4),
        "allocs_per_cycle_pooled": round(on["fresh"] / on["cycles"], 4),
        "allocation_reduction": round(
            off["fresh"] / max(1, on["fresh"]), 1
        ),
    }


def bench_push_many(tokens=200_000, batch=16):
    """Per-token push versus one push_many call per batch."""

    def rounds(use_bulk):
        engine = Engine()
        channel = engine.add_channel(Channel(batch))
        start = time.perf_counter()
        for _ in range(tokens // batch):
            if use_bulk:
                channel.push_many(list(range(batch)))
            else:
                for item in range(batch):
                    channel.push(item)
            channel.commit()
            for _ in range(batch):
                channel.pop()
            channel.commit()
        return time.perf_counter() - start

    push_wall = rounds(use_bulk=False)
    bulk_wall = rounds(use_bulk=True)
    return {
        "tokens": tokens,
        "batch": batch,
        "push_wall_s": round(push_wall, 3),
        "push_many_wall_s": round(bulk_wall, 3),
        "speedup": round(push_wall / bulk_wall, 2),
    }


def _gate_cost_ns(loops=1_000_000):
    """Cost of one *disabled* safety hook, in nanoseconds.

    A disabled hook is a class-attribute load plus an ``is None`` test;
    the two work loops below differ by exactly three such gates, so the
    per-gate cost is the wall-clock difference divided by ``3 * loops``.
    """

    class Plain:
        def work(self, token, state):
            state[token & 7] = state.get(token & 7, 0) + 1
            return token

    class Gated(Plain):
        _ledger = None
        _fault = None

        def work(self, token, state):
            if self._ledger is not None:
                self._ledger.verify(("bench", 0), token)
            if self._fault is not None:
                token = self._fault.corrupt_moms_token(token)
            state[token & 7] = state.get(token & 7, 0) + 1
            if self._ledger is not None:
                self._ledger.retire(("bench", 0), token)
            return token

    def wall(obj):
        state = {}
        work = obj.work
        start = time.perf_counter()
        for i in range(loops):
            work(i, state)
        return time.perf_counter() - start

    plain = min(wall(Plain()) for _ in range(3))
    gated = min(wall(Gated()) for _ in range(3))
    return max((gated - plain) / (loops * 3) * 1e9, 0.1)


# Every token crosses a bounded number of gate sites on its PE -> bank
# -> DRAM round trip: three ledger gates at the PE, two at the bank,
# four at the DRAM channel, plus the MSHR-insert and drain-corruption
# fault gates.  Eight per *issued* token (summed over all three
# scopes, so a full round trip is counted three times over) is a
# comfortable over-estimate.
_GATE_SITES_PER_TOKEN = 8


def bench_checks_overhead(repeats=3):
    """Zero-cost-when-disabled gate for the fault/invariant hooks.

    Every hook added by the robustness subsystem is an ``is None`` test
    on a class attribute (``Engine.watchdog``, PE/bank/DRAM
    ``_ledger``/``_fault`` slots, MSHR fault gates).  The pre-hook
    engine is not runnable from this tree, so the <3% bound is computed
    instead of raced: a micro-benchmark prices one disabled gate, a
    checks-on run of a small BFS point counts the tokens (and therefore
    bounds the gate executions), and the implied overhead is

        gate_executions * gate_cost / checks-off wall clock.

    The measured checks-on wall is recorded alongside so the *enabled*
    cost stays visible in BENCH_sim.json, and cycle counts are asserted
    identical between the two runs -- checks observe, never perturb.
    """
    os.environ["REPRO_ENGINE"] = "demand"
    graph = web_graph(600, 3000, seed=9)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "bfs", n_channels=2),
        **SCALED_DEFAULTS,
    )

    def run_once(checks):
        system = AcceleratorSystem(graph, "bfs", config, checks=checks)
        start = time.perf_counter()
        result = system.run()
        return system, result, time.perf_counter() - start

    off_walls = []
    for _ in range(repeats):
        _, off_result, wall = run_once(checks=False)
        off_walls.append(wall)
    on_walls = []
    for _ in range(repeats):
        system_on, on_result, wall = run_once(checks=True)
        on_walls.append(wall)
    assert on_result.cycles == off_result.cycles, (
        "enabling checks changed the model: "
        f"{on_result.cycles} != {off_result.cycles}"
    )

    tokens = sum(
        scope["issued"] for scope in system_on.ledger.snapshot().values()
    )
    gate_ns = _gate_cost_ns()
    wall_off = min(off_walls)
    gate_sites = _GATE_SITES_PER_TOKEN * tokens
    implied = gate_sites * gate_ns * 1e-9 / wall_off
    assert implied < 0.03, (
        f"disabled checks imply {implied * 100:.2f}% demand-engine "
        f"overhead ({gate_sites} gates x {gate_ns:.1f}ns over "
        f"{wall_off:.3f}s); budget is 3%"
    )
    return {
        "point": "BFS / web_graph(600, 3000) / two-level 4x4",
        "cycles": off_result.cycles,
        "wall_off_s": round(wall_off, 3),
        "wall_on_s": round(min(on_walls), 3),
        "checks_on_slowdown": round(min(on_walls) / wall_off, 3),
        "ledger_tokens": tokens,
        "gate_sites": gate_sites,
        "gate_ns": round(gate_ns, 2),
        "implied_off_overhead_pct": round(implied * 100, 4),
        "budget_pct": 3.0,
    }


def bench_telemetry_overhead(repeats=3):
    """Zero-cost-when-disabled gate for the telemetry hooks.

    Same methodology as :func:`bench_checks_overhead`: telemetry's
    disabled hooks are ``is None`` tests on class attributes
    (``Engine.sampler``, PE/bank/DRAM ``_tele`` slots), so the bound is
    computed from a priced gate and a counted number of gate
    executions.  The disabled-path sites are one sampler gate per
    simulated cycle, a handful of ``_tele`` gates per component tick
    (tick-start plus the in-tick issue/retire/phase sites), and one
    per DRAM beat delivered.  A telemetry-on run is raced alongside and
    its cycle count asserted identical -- telemetry observes, never
    perturbs.
    """
    from repro.telemetry import TelemetryConfig

    os.environ["REPRO_ENGINE"] = "demand"
    graph = web_graph(600, 3000, seed=9)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "bfs", n_channels=2),
        **SCALED_DEFAULTS,
    )

    def run_once(telemetry):
        system = AcceleratorSystem(graph, "bfs", config,
                                   telemetry=telemetry)
        start = time.perf_counter()
        result = system.run()
        return system, result, time.perf_counter() - start

    off_walls = []
    for _ in range(repeats):
        system_off, off_result, wall = run_once(telemetry=None)
        off_walls.append(wall)
    on_walls = []
    for _ in range(repeats):
        system_on, on_result, wall = run_once(
            telemetry=TelemetryConfig(sample_interval=64)
        )
        on_walls.append(wall)
    assert on_result.cycles == off_result.cycles, (
        "enabling telemetry changed the model: "
        f"{on_result.cycles} != {off_result.cycles}"
    )

    engine = system_off.engine
    beats = sum(
        ch.stats.total_beats for ch in system_off.mem.channels
    )
    gate_sites = (
        engine.cycles_simulated        # Engine.run sampler gate
        + 4 * engine.component_ticks   # tick-start + in-tick _tele gates
        + beats                        # DRAM per-beat delivery gate
    )
    gate_ns = _gate_cost_ns()
    wall_off = min(off_walls)
    implied = gate_sites * gate_ns * 1e-9 / wall_off
    assert implied < 0.03, (
        f"disabled telemetry implies {implied * 100:.2f}% overhead "
        f"({gate_sites} gates x {gate_ns:.1f}ns over {wall_off:.3f}s); "
        f"budget is 3%"
    )
    summary = system_on.telemetry.summary()
    return {
        "point": "BFS / web_graph(600, 3000) / two-level 4x4",
        "cycles": off_result.cycles,
        "wall_off_s": round(wall_off, 3),
        "wall_on_s": round(min(on_walls), 3),
        "telemetry_on_slowdown": round(min(on_walls) / wall_off, 3),
        "gate_sites": gate_sites,
        "gate_ns": round(gate_ns, 2),
        "implied_off_overhead_pct": round(implied * 100, 4),
        "budget_pct": 3.0,
        "samples": summary["samples"],
        "mshr_peak": summary["mshr_peak"],
    }


def bench_checkpoint_overhead(repeats=3):
    """Zero-cost-when-disabled gate for the checkpointer hook.

    Same methodology as :func:`bench_checks_overhead`: with no
    checkpointer attached the engine pays one ``is None`` gate per
    simulated step, so the implied disabled cost is priced from the
    micro-benchmarked gate and the step count.  A checkpointing-on run
    (short interval, snapshots to a tmpdir) is raced alongside: its
    cycle count must be identical -- snapshots observe, never perturb
    -- and its wall clock plus the checkpointer's own write accounting
    record what periodic snapshots actually cost.
    """
    os.environ["REPRO_ENGINE"] = "demand"
    graph = web_graph(600, 3000, seed=9)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "bfs", n_channels=2),
        **SCALED_DEFAULTS,
    )

    def run_once(checkpoint):
        system = AcceleratorSystem(graph, "bfs", config,
                                   checkpoint=checkpoint)
        start = time.perf_counter()
        result = system.run()
        return system, result, time.perf_counter() - start

    off_walls = []
    for _ in range(repeats):
        system_off, off_result, wall = run_once(checkpoint=None)
        off_walls.append(wall)
    snap_dir = tempfile.mkdtemp(prefix="bench-checkpoint-")
    snap = os.path.join(snap_dir, "bench.snap")
    on_walls = []
    for _ in range(repeats):
        system_on, on_result, wall = run_once(checkpoint=f"{snap}:5000")
        on_walls.append(wall)
    assert on_result.cycles == off_result.cycles, (
        "enabling checkpointing changed the model: "
        f"{on_result.cycles} != {off_result.cycles}"
    )

    checkpointer = system_on.checkpointer
    gate_sites = system_off.engine.cycles_simulated  # one gate per step
    gate_ns = _gate_cost_ns()
    wall_off = min(off_walls)
    implied = gate_sites * gate_ns * 1e-9 / wall_off
    assert implied < 0.03, (
        f"disabled checkpointing implies {implied * 100:.2f}% overhead "
        f"({gate_sites} gates x {gate_ns:.1f}ns over {wall_off:.3f}s); "
        f"budget is 3%"
    )
    return {
        "point": "BFS / web_graph(600, 3000) / two-level 4x4",
        "cycles": off_result.cycles,
        "wall_off_s": round(wall_off, 3),
        "wall_on_s": round(min(on_walls), 3),
        "checkpoint_on_slowdown": round(min(on_walls) / wall_off, 3),
        "gate_sites": gate_sites,
        "gate_ns": round(gate_ns, 2),
        "implied_off_overhead_pct": round(implied * 100, 4),
        "budget_pct": 3.0,
        "interval": 5000,
        "snapshots_written": checkpointer.writes,
        "snapshot_bytes": checkpointer.last_write_bytes,
        "write_wall_s": round(checkpointer.write_seconds, 3),
        "write_ms_each": round(
            checkpointer.write_seconds / max(1, checkpointer.writes)
            * 1000, 2
        ),
    }


def bench_tracing_overhead(repeats=3):
    """Zero-cost-when-disabled gate for the span-tracer hooks.

    Same methodology as :func:`bench_checks_overhead`: with no tracer
    attached every hook site is an ``is None`` test on a class
    attribute (PE/bank/crossbar/DRAM ``_trace`` slots), so the implied
    disabled cost is priced from the micro-benchmarked gate and a
    generous bound on gate executions counted from the off run's own
    event counters (PE issue/retire, bank outcome/drain/replay,
    crossbar hops, DRAM accept/deliver).  A spans-on run is raced
    alongside and its cycle count asserted identical -- the tracer
    observes, never perturbs.
    """
    from repro.tracing import SpansConfig

    os.environ["REPRO_ENGINE"] = "demand"
    graph = web_graph(600, 3000, seed=9)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "bfs", n_channels=2),
        **SCALED_DEFAULTS,
    )

    def run_once(spans):
        system = AcceleratorSystem(graph, "bfs", config, spans=spans)
        start = time.perf_counter()
        result = system.run()
        return system, result, time.perf_counter() - start

    off_walls = []
    for _ in range(repeats):
        system_off, off_result, wall = run_once(spans=None)
        off_walls.append(wall)
    on_walls = []
    for _ in range(repeats):
        system_on, on_result, wall = run_once(
            spans=SpansConfig(sample_rate=16)
        )
        on_walls.append(wall)
    assert on_result.cycles == off_result.cycles, (
        "enabling span tracing changed the model: "
        f"{on_result.cycles} != {off_result.cycles}"
    )

    banks = system_off.hierarchy.banks
    requests = sum(pe.stats.moms_reads for pe in system_off.pes)
    bank_requests = sum(b.stats.requests for b in banks)
    replays = sum(
        b.stats.primary_misses + b.stats.secondary_misses for b in banks
    )
    drains = sum(b.stats.lines_returned for b in banks)
    beats = sum(ch.stats.total_beats for ch in system_off.mem.channels)
    lines = sum(ch.stats.lines_total for ch in system_off.mem.channels)
    gate_sites = (
        2 * requests                       # PE issue + retire gates
        + bank_requests + replays + drains  # bank outcome/replay/drain
        + 2 * (bank_requests + drains)      # crossbar hop gates (bound)
        + lines + beats                     # DRAM accept + deliver gates
    )
    gate_ns = _gate_cost_ns()
    wall_off = min(off_walls)
    implied = gate_sites * gate_ns * 1e-9 / wall_off
    assert implied < 0.03, (
        f"disabled span tracing implies {implied * 100:.2f}% overhead "
        f"({gate_sites} gates x {gate_ns:.1f}ns over {wall_off:.3f}s); "
        f"budget is 3%"
    )
    summary = system_on.tracer.summary()
    return {
        "point": "BFS / web_graph(600, 3000) / two-level 4x4",
        "cycles": off_result.cycles,
        "wall_off_s": round(wall_off, 3),
        "wall_on_s": round(min(on_walls), 3),
        "tracing_on_slowdown": round(min(on_walls) / wall_off, 3),
        "gate_sites": gate_sites,
        "gate_ns": round(gate_ns, 2),
        "implied_off_overhead_pct": round(implied * 100, 4),
        "budget_pct": 3.0,
        "requests_seen": summary["requests_seen"],
        "spans_completed": summary["spans_completed"],
        "recorder_events": summary["recorder"]["recorded"],
    }


def main(argv=None):
    global _SCALE
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_sim.json"),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller graph + one-iteration budget (CI perf-smoke)",
    )
    parser.add_argument(
        "--scale", type=int, default=_DEEP["rmat_scale"],
        metavar="RMAT_SCALE",
        help="RMAT scale (log2 nodes) of the deep-queue pass graph "
             f"(default {_DEEP['rmat_scale']}; the deep DRAM/MSHR "
             "queue depths are fixed -- see _DEEP)",
    )
    args = parser.parse_args(argv)
    _SCALE = _QUICK if args.quick else _FULL
    jobs = default_jobs()  # honours REPRO_JOBS, else the CPU count

    # Let parallel sweep workers share generated graphs on disk instead
    # of each rebuilding them (repro.graph.cache); respect an explicit
    # operator setting.
    cache_tmp = None
    if not os.environ.get("REPRO_GRAPH_CACHE", "").strip():
        cache_tmp = tempfile.mkdtemp(prefix="repro-graph-cache-")
        os.environ["REPRO_GRAPH_CACHE"] = cache_tmp

    print(f"baseline pass: legacy engine, scalar kernels, serial "
          f"({len(SUITE)} points)")
    baseline = run_pass("legacy", jobs=1, kernels="scalar")
    print(f"  wall {baseline['wall_s']:.2f}s")
    print("optimized pass (serial, scalar kernels): demand engine, jobs=1")
    demand_scalar = run_pass("demand", jobs=1, kernels="scalar")
    print(f"  wall {demand_scalar['wall_s']:.2f}s")
    print("optimized pass (serial, vector kernels): demand engine, jobs=1")
    optimized_serial = run_pass("demand", jobs=1, kernels="vector")
    print(f"  wall {optimized_serial['wall_s']:.2f}s")
    print(f"  {optimized_serial['summary']}")
    if jobs > 1:
        print(f"optimized pass (parallel): demand engine, jobs={jobs}")
        optimized_parallel = run_pass("demand", jobs=jobs, kernels="vector")
        print(f"  wall {optimized_parallel['wall_s']:.2f}s")
    else:
        # Record the skip instead of null, so the report distinguishes
        # "host cannot parallelize" from "pass silently missing" (the
        # CI gate treats this as pass-with-note).
        optimized_parallel = {
            "skipped": ("cpu_count=1" if os.cpu_count() == 1
                        else "jobs=1 (REPRO_JOBS)"),
            "cpu_count": os.cpu_count(),
            "jobs": jobs,
        }
        print("optimized pass (parallel): skipped "
              f"({optimized_parallel['skipped']}; set REPRO_JOBS to "
              "override)")

    passes = [demand_scalar, optimized_serial]
    if "skipped" not in optimized_parallel:
        passes.append(optimized_parallel)
    for optimized in passes:
        for before, after in zip(baseline["points"], optimized["points"]):
            assert before["cycles"] == after["cycles"], (before, after)
            assert before["gteps"] == after["gteps"], (before, after)

    print(f"deep-queue pass: rmat-{args.scale}, MSHR-starved shared "
          "1x1, scalar vs vector kernels")
    deep = run_deep_pass(args.scale)
    print(f"  scalar {deep['scalar']['wall_s']:.2f}s, vector "
          f"{deep['vector']['wall_s']:.2f}s -> "
          f"{deep['kernel_speedup_serial_deep']:.2f}x over "
          f"{deep['cycles']:,} cycles "
          f"({100 * deep['vector']['fused_cycle_fraction']:.0f}% fused, "
          f"{deep['vector']['fused_runs']} runs of mean "
          f"{deep['vector']['mean_run_len']:.0f})")

    print("pooling micro: allocations/cycle with freelists off vs on")
    pooling = bench_pooling_off(args.quick)
    print(f"  {pooling['allocs_per_cycle_unpooled']} -> "
          f"{pooling['allocs_per_cycle_pooled']} allocations/cycle "
          f"({pooling['allocation_reduction']}x fewer)")

    print("checks-overhead gate: implied checks-off cost vs 3% budget")
    checks = bench_checks_overhead()
    print(f"  implied {checks['implied_off_overhead_pct']}% "
          f"({checks['gate_sites']} gates x {checks['gate_ns']}ns over "
          f"{checks['wall_off_s']}s); checks-on slowdown "
          f"{checks['checks_on_slowdown']}x")

    print("telemetry-overhead gate: implied telemetry-off cost "
          "vs 3% budget")
    telemetry = bench_telemetry_overhead()
    print(f"  implied {telemetry['implied_off_overhead_pct']}% "
          f"({telemetry['gate_sites']} gates x {telemetry['gate_ns']}ns "
          f"over {telemetry['wall_off_s']}s); telemetry-on slowdown "
          f"{telemetry['telemetry_on_slowdown']}x")

    print("tracing-overhead gate: implied tracing-off cost vs 3% budget")
    tracing = bench_tracing_overhead()
    print(f"  implied {tracing['implied_off_overhead_pct']}% "
          f"({tracing['gate_sites']} gates x {tracing['gate_ns']}ns "
          f"over {tracing['wall_off_s']}s); tracing-on slowdown "
          f"{tracing['tracing_on_slowdown']}x, "
          f"{tracing['spans_completed']} spans over "
          f"{tracing['requests_seen']} requests")

    print("checkpoint-overhead gate: implied checkpoint-off cost "
          "vs 3% budget")
    checkpoint = bench_checkpoint_overhead()
    print(f"  implied {checkpoint['implied_off_overhead_pct']}% "
          f"({checkpoint['gate_sites']} gates x {checkpoint['gate_ns']}ns "
          f"over {checkpoint['wall_off_s']}s); checkpoint-on slowdown "
          f"{checkpoint['checkpoint_on_slowdown']}x, "
          f"{checkpoint['snapshots_written']} snapshots at "
          f"{checkpoint['write_ms_each']}ms / "
          f"{checkpoint['snapshot_bytes']} bytes each")

    vector_passes = [p for p in passes if p["kernels"] == "vector"]
    best_wall = min(p["wall_s"] for p in vector_passes)
    combined = baseline["wall_s"] / best_wall
    engine_speedup = baseline["wall_s"] / demand_scalar["wall_s"]
    kernel_speedup = demand_scalar["wall_s"] / optimized_serial["wall_s"]
    report = {
        "suite": f"PageRank/{_SCALE['graph']} quick suite "
                 "(shared, private, two-level, traditional)",
        "quick": args.quick,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "jobs": jobs,
        },
        "baseline_legacy_serial": baseline,
        "optimized_demand_scalar_serial": demand_scalar,
        "optimized_demand_serial": optimized_serial,
        "optimized_demand_parallel": optimized_parallel,
        "deep_pass": deep,
        "engine_speedup_serial": round(engine_speedup, 2),
        "kernel_speedup_serial": round(kernel_speedup, 2),
        "kernel_speedup_serial_deep": deep["kernel_speedup_serial_deep"],
        "combined_speedup": round(combined, 2),
        "cycles_identical": True,
        "pooling_micro": pooling,
        "push_many_micro": bench_push_many(),
        "checks_overhead": checks,
        "telemetry_overhead": telemetry,
        "tracing_overhead": tracing,
        "checkpoint_overhead": checkpoint,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"engine speedup {engine_speedup:.2f}x serial; kernel speedup "
          f"{kernel_speedup:.2f}x on top; deep-queue kernel speedup "
          f"{deep['kernel_speedup_serial_deep']:.2f}x; combined "
          f"{combined:.2f}x (best of serial/parallel, jobs={jobs} on "
          f"{os.cpu_count()} cpus)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
