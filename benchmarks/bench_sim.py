"""Quick simulator benchmark suite -> BENCH_sim.json.

Measures the wall-clock effect of the demand-driven engine and the
parallel sweep runner on a fixed four-point suite (PageRank on the RV
stand-in across the shared / private / two-level / traditional
organizations -- the same workload family as Fig. 1/11):

* **baseline**: the seed schedule -- all-tick legacy engine
  (``REPRO_ENGINE=legacy``), points run serially;
* **optimized**: demand-driven engine, points run through
  :func:`repro.experiments.common.run_points` with ``REPRO_JOBS``
  workers (so the combined speedup scales with the host's cores; on a
  single-core runner it measures the engine alone).

Cycle counts are asserted identical between the two passes -- the
speedup is free of model drift by construction.  A micro-benchmark of
``Channel.push_many`` against per-token ``push`` rounds out the file.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py [--output BENCH_sim.json]
"""

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.core.stats import EngineActivity
from repro.experiments.common import bench_graph, default_jobs, run_points
from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
)
from repro.sim import Channel
from repro.sim.engine import Engine

SUITE = (
    ("traditional", MOMS_TRADITIONAL),
    ("two-level", MOMS_TWO_LEVEL),
    ("shared", MOMS_SHARED),
    ("private", MOMS_PRIVATE),
)


def _point(label_org):
    label, organization = label_org
    graph = bench_graph("RV", True)
    config = ArchitectureConfig(
        _design(4, 4, organization, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    start = time.perf_counter()
    system = AcceleratorSystem(graph, "pagerank", config)
    result = system.run(max_iterations=2)
    wall = time.perf_counter() - start
    activity = EngineActivity.from_engine(system.engine)
    return {
        "organization": label,
        "cycles": result.cycles,
        "gteps": result.gteps,
        "wall_s": round(wall, 3),
        "tick_fraction": round(activity.tick_fraction, 4),
        "activity": activity.as_dict(),
    }


def run_pass(engine_kind, jobs):
    os.environ["REPRO_ENGINE"] = engine_kind
    start = time.perf_counter()
    rows = run_points(_point, list(SUITE), jobs=jobs)
    wall = time.perf_counter() - start
    activity = EngineActivity()
    for row in rows:
        activity.merge(row.pop("activity"))
    return {
        "engine": engine_kind,
        "jobs": jobs,
        "wall_s": round(wall, 3),
        "points": rows,
        "tick_fraction": round(activity.tick_fraction, 4),
        "summary": activity.summary_line(jobs=jobs),
    }


def bench_push_many(tokens=200_000, batch=16):
    """Per-token push versus one push_many call per batch."""

    def rounds(use_bulk):
        engine = Engine()
        channel = engine.add_channel(Channel(batch))
        start = time.perf_counter()
        for _ in range(tokens // batch):
            if use_bulk:
                channel.push_many(list(range(batch)))
            else:
                for item in range(batch):
                    channel.push(item)
            channel.commit()
            for _ in range(batch):
                channel.pop()
            channel.commit()
        return time.perf_counter() - start

    push_wall = rounds(use_bulk=False)
    bulk_wall = rounds(use_bulk=True)
    return {
        "tokens": tokens,
        "batch": batch,
        "push_wall_s": round(push_wall, 3),
        "push_many_wall_s": round(bulk_wall, 3),
        "speedup": round(push_wall / bulk_wall, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_sim.json"),
    )
    args = parser.parse_args(argv)
    jobs = default_jobs()

    print(f"baseline pass: legacy engine, serial ({len(SUITE)} points)")
    baseline = run_pass("legacy", jobs=1)
    print(f"  wall {baseline['wall_s']:.2f}s")
    print(f"optimized pass: demand engine, jobs={jobs}")
    optimized = run_pass("demand", jobs=jobs)
    print(f"  wall {optimized['wall_s']:.2f}s")
    print(f"  {optimized['summary']}")

    for before, after in zip(baseline["points"], optimized["points"]):
        assert before["cycles"] == after["cycles"], (before, after)
        assert before["gteps"] == after["gteps"], (before, after)

    combined = baseline["wall_s"] / optimized["wall_s"]
    report = {
        "suite": "PageRank/RV quick suite "
                 "(shared, private, two-level, traditional)",
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "jobs": jobs,
        },
        "baseline_legacy_serial": baseline,
        "optimized_demand_parallel": optimized,
        "combined_speedup": round(combined, 2),
        "cycles_identical": True,
        "push_many_micro": bench_push_many(),
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"combined speedup {combined:.2f}x "
          f"(engine + {jobs}-way sweeps on {os.cpu_count()} cpus)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
