"""Table II: benchmark suite properties."""

from conftest import run_experiment

from repro.experiments import table2_datasets


def test_table2_datasets(benchmark):
    rows = run_experiment(benchmark, table2_datasets)
    assert len(rows) == 12
    # Size ordering of the real-world graphs follows the paper.
    sizes = {r["key"]: r["N"] for r in rows}
    order = ["WT", "DB", "UK", "SK", "RV", "FR", "WB"]
    values = [sizes[k] for k in order]
    assert values == sorted(values)
