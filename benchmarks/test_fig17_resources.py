"""Fig. 17: resource utilization and frequency of the top designs."""

from conftest import run_experiment

from repro.experiments import fig17_resources


def test_fig17_resources(benchmark):
    rows = run_experiment(benchmark, fig17_resources)
    for row in rows:
        # Designs are mostly limited by LUTs and BRAM/URAM, DSPs are
        # underutilized (paper V-G), and all top designs meet timing.
        assert row["DSP %"] < row["LUT %"]
        assert row["meets timing"]
        assert 185 <= row["freq MHz"] <= 250
        assert row["LUT %"] < 120
