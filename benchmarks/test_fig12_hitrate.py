"""Fig. 12: SCC throughput vs cache hit rate; cache-less MOMSes."""

from conftest import run_experiment

from repro.experiments import fig12_hitrate
from repro.report import geomean


def test_fig12_hitrate(benchmark):
    rows = run_experiment(benchmark, fig12_hitrate)

    def geo(arch, caches):
        return geomean([
            r["GTEPS"] for r in rows
            if r["architecture"] == arch and r["caches"] == caches
        ])

    moms_with = geo("16/16 two-level", "with cache")
    moms_without = geo("16/16 two-level", "no cache")
    trad_with = geo("18/16 traditional", "with cache")
    trad_without = geo("18/16 traditional", "no cache")

    # The MOMS keeps most of its throughput without any cache array;
    # the traditional cache loses proportionally more (paper V-E).
    moms_drop = moms_with / moms_without
    trad_drop = trad_with / trad_without
    assert moms_drop < trad_drop
    assert moms_without > 0.6 * moms_with
    # A cache-less MOMS is competitive with the FULL traditional cache.
    assert moms_without > 0.8 * trad_with
    # MOMSes reach their throughput at much lower hit rates.
    moms_hits = [r["hit rate"] for r in rows
                 if r["architecture"] == "16/16 two-level"
                 and r["caches"] == "with cache"]
    trad_hits = [r["hit rate"] for r in rows
                 if r["architecture"] == "18/16 traditional"
                 and r["caches"] == "with cache"]
    assert max(moms_hits) < max(trad_hits)
