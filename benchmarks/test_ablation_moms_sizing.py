"""Ablation bench: MSHR count, DRAM latency, bank count."""

from conftest import run_experiment

from repro.experiments import ablation_moms_sizing


def test_ablation_moms_sizing(benchmark):
    rows = run_experiment(benchmark, ablation_moms_sizing)

    mshr_rows = [r for r in rows if r["sweep"] == "MSHRs/bank"]
    mshr_rows.sort(key=lambda r: r["value"])
    # Scaling MSHRs up increases throughput and reduces DRAM traffic
    # (more in-flight lines to coalesce onto), then saturates.
    assert mshr_rows[-1]["GTEPS"] >= mshr_rows[0]["GTEPS"]
    assert mshr_rows[-1]["DRAM lines"] <= mshr_rows[0]["DRAM lines"]

    latency_rows = [r for r in rows if "latency" in r["sweep"]]
    latency_rows.sort(key=lambda r: r["value"])
    # Latency-insensitivity: a 10x latency increase costs far less
    # than 10x throughput (longer window -> more coalescing).
    assert latency_rows[-1]["GTEPS"] > 0.5 * latency_rows[0]["GTEPS"]
    # More latency, more merging: line traffic does not grow.
    assert latency_rows[-1]["DRAM lines"] <= \
        latency_rows[0]["DRAM lines"] * 1.05

    bank_rows = [r for r in rows if r["sweep"] == "shared banks"]
    bank_rows.sort(key=lambda r: r["value"])
    # More banks relieve conflicts: throughput non-decreasing-ish.
    assert bank_rows[-1]["GTEPS"] >= 0.9 * bank_rows[0]["GTEPS"]
