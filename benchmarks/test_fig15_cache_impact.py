"""Fig. 15: cache-array ablation on the 20/8 two-level designs."""

from conftest import run_experiment

from repro.experiments import fig15_cache_impact


def test_fig15_cache_impact(benchmark):
    rows = run_experiment(benchmark, fig15_cache_impact)

    def geomean_of(arch, caches):
        return next(r["geomean"] for r in rows
                    if r["architecture"] == arch and r["caches"] == caches)

    moms_full = geomean_of("20/8 two-level MOMS", "full caches")
    moms_none = geomean_of("20/8 two-level MOMS", "no caches")
    trad_full = geomean_of("20/8 traditional", "full caches")
    trad_none = geomean_of("20/8 traditional", "no caches")

    moms_drop = moms_full / moms_none if moms_none else float("inf")
    trad_drop = trad_full / trad_none if trad_none else float("inf")
    # Paper: ~2.2x drop for traditional, ~10 % for the MOMS.
    assert trad_drop > moms_drop
    assert moms_drop < 1.5
    assert trad_drop > 1.2
    # The cache-less MOMS matches the FULL traditional cache.
    assert moms_none > 0.8 * trad_full
