"""Fig. 13: PageRank throughput by preprocessing technique."""

from conftest import run_experiment

from repro.experiments import fig13_preprocessing
from repro.graph.datasets import SCRAMBLED_LABELS
from repro.report import geomean


def test_fig13_preprocessing(benchmark):
    rows = run_experiment(benchmark, fig13_preprocessing)
    scarce = [r for r in rows if r["regime"] == "scarce jobs"]
    plentiful = [r for r in rows if r["regime"] == "plentiful jobs"]

    # The paper's mechanism: with jobs scarce relative to PEs, hashing
    # balances in-edges per interval and wins.
    assert geomean([r["hash speedup"] for r in scarce]) > 1.0
    # With plentiful jobs dynamic scheduling already balances; hashing
    # can reverse slightly (the paper's community-grouping exception)
    # but never collapses.
    assert geomean([r["hash speedup"] for r in plentiful]) > 0.7

    # DBG's reuse mechanism: fewer DRAM lines on community-destroyed
    # labelings (its throughput gain is partly offset at simulator
    # scale by hot-line bank serialization -- see EXPERIMENTS.md).
    for row in rows:
        if row["benchmark"] in SCRAMBLED_LABELS:
            assert row["dbg line ratio"] < 1.0
            assert row["dbg+hash"] > 0.5 * row["hash"]
        # DBG-only must never beat dbg+hash by much (balance).
        assert row["dbg+hash"] >= 0.75 * row["dbg"]
