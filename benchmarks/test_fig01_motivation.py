"""Fig. 1 motivation: DRAM lines per useful read across memory idioms."""

from conftest import run_experiment

from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark):
    rows = run_experiment(benchmark, fig01_motivation)
    by_name = {r["memory system"]: r for r in rows}
    ideal = by_name["ideal cache"]["lines/read"]
    moms = by_name["MOMS (two-level)"]["lines/read"]
    tiling = by_name["scratchpad tiling"]["lines/read"]
    # The MOMS sits between the ideal cache and scratchpad tiling, and
    # tiling moves redundant data (quadratic interval transfers).
    assert ideal <= moms
    assert moms < tiling
