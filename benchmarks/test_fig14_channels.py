"""Fig. 14: throughput scaling with DDR4 channel count vs FabGraph."""

from conftest import run_experiment

from repro.experiments import fig14_channels


def test_fig14_channels(benchmark):
    rows = run_experiment(benchmark, fig14_channels)
    scc_rows = [r for r in rows if r["algorithm"] == "scc"]
    pr_rows = [r for r in rows if r["algorithm"] == "pagerank"]
    for row in rows:
        # More channels never collapse throughput; small PageRank dips
        # on 4 channels are the paper's own frequency effect.
        assert row["4ch"] >= 0.8 * row["1ch"]
    # SCC exposes memory-bound scaling: someone gains from 1 -> 4.
    assert max(r["scaling 1->4"] for r in scc_rows) > 1.15
    # PageRank is throttled by RAW stalls, so it scales less than SCC.
    best_pr = max(r["scaling 1->4"] for r in pr_rows)
    best_scc = max(r["scaling 1->4"] for r in scc_rows)
    assert best_scc >= best_pr * 0.95
    # FabGraph's own scaling is sublinear (internal bandwidth cap).
    for row in pr_rows:
        if row.get("FabGraph 1ch"):
            assert row["FabGraph 4ch"] / row["FabGraph 1ch"] <= 4.0
