"""Table III: preprocessing wall times (partition / hash / DBG)."""

from conftest import run_experiment

from repro.experiments import table3_preprocessing_time


def test_table3_preprocessing_time(benchmark):
    rows = run_experiment(benchmark, table3_preprocessing_time)
    assert len(rows) == 12
    for row in rows:
        # All steps complete and stay lightweight (linear in M/N).
        assert row["partitioning (s)"] < 10
        assert row["hashing (s)"] < 10
        assert row["DBG (s)"] < 10
    # DBG (O(N)) is cheaper than partitioning (O(M)) on the densest graph.
    densest = max(rows, key=lambda r: r["M"])
    assert densest["DBG (s)"] <= densest["partitioning (s)"] * 2
