"""Fig. 16 + Table IV: comparison with CPU, GPU and FPGA baselines."""

from conftest import run_experiment

from repro.experiments import fig16_sota
from repro.report import format_table


def test_fig16_sota(benchmark):
    rows = run_experiment(benchmark, fig16_sota)
    print("\n" + format_table(fig16_sota.table4_rows(),
                              title="Table IV -- platforms"))
    # Gunrock capacity gate reproduces: exactly the five smallest
    # paper-scale benchmarks fit in 16 GB (on the full suite); on the
    # quick subset every listed verdict must be consistent per graph.
    fits = {r["benchmark"]: r["Gunrock fits"] for r in rows}
    assert fits.get("WT", True) is True
    assert fits.get("RV", False) in (False,)
    # Bandwidth efficiency: ours per GB/s beats the CPU model on the
    # skewed graphs (the paper's 1.1-5.8x claim).
    skewed = [r for r in rows if r["benchmark"] in ("RV", "24", "MP", "FR")]
    assert skewed, "expected at least one skewed benchmark in the sweep"
    wins = [r for r in skewed
            if r["ours GTEPS/GBps"] > r["Ligra GTEPS/GBps"]]
    assert len(wins) >= len(skewed) // 2
    # Power efficiency: the 23 W FPGA clearly beats the 224 W CPU.
    for r in rows:
        if r["ours GTEPS/W"] > 0:
            assert r["ours GTEPS/W"] > 0.5 * r["Ligra GTEPS/W"]
