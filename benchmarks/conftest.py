"""Shared helpers for the per-figure benchmark harness.

Each benchmark runs the corresponding experiment module once, prints
the paper-style table, saves the rows under ``results/``, and applies
loose *shape* assertions (who wins, roughly by how much) -- absolute
numbers are not expected to match the paper since the substrate is a
scaled simulator, but the qualitative conclusions must hold.

Quick mode (default) uses shrunken graphs and iteration caps; set
``REPRO_FULL_SUITE=1`` for the full scaled suite.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def run_experiment(benchmark, module, **kwargs):
    """Run one experiment module under pytest-benchmark and record it."""
    quick = os.environ.get("REPRO_FULL_SUITE", "") in ("", "0")
    holder = {}

    def once():
        holder["result"] = module.run(quick=quick, **kwargs)
        return holder["result"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    rows, text = holder["result"]
    print("\n" + text)
    from repro.report import engine_summary_line
    print(engine_summary_line())
    RESULTS_DIR.mkdir(exist_ok=True)
    name = module.__name__.rsplit(".", 1)[-1]
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(rows, fh, indent=2, default=str)
    with open(RESULTS_DIR / f"{name}.txt", "w") as fh:
        fh.write(text + "\n")
    return rows
