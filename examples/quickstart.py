#!/usr/bin/env python
"""Quickstart: run PageRank on the MOMS graph accelerator.

Builds a small power-law web graph, runs 5 PageRank iterations on the
paper's best general-purpose design (16/16 two-level MOMS), validates
the scores against the software reference, and prints the throughput
and memory statistics that the paper's evaluation revolves around.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import AcceleratorSystem, named_architectures
from repro.baselines.reference import reference_pagerank
from repro.graph import web_graph


def main():
    # 1. A graph in COO format -- any (src, dst[, weight]) edge list works.
    graph = web_graph(n_nodes=4_000, n_edges=24_000, seed=7)
    print(f"graph: {graph}")

    # 2. Pick an architecture: 16 PEs over a two-level MOMS
    #    (per-PE private banks in front of 16 shared banks), 2 DDR4
    #    channels.  See repro.accel.named_architectures for the full
    #    design-space of paper Fig. 11.
    config = named_architectures("pagerank", n_channels=2)["16/16 two-level"]

    # 3. Build the system.  Preprocessing (interval partitioning +
    #    cache-line hashing) happens here; it is O(M), never a sort.
    system = AcceleratorSystem(graph, "pagerank", config)
    print(f"design: {config.name}, modeled clock "
          f"{system.frequency_mhz:.0f} MHz")

    # 4. Run.  The simulator executes the full cycle-level system:
    #    DMA bursts, compressed edge decoding, thousands of in-flight
    #    MOMS reads, gather pipelines with RAW stalls, writeback.
    result = system.run(max_iterations=5)

    # 5. Results are functionally exact -- check against the reference.
    expected = reference_pagerank(graph, n_iterations=5)
    error = np.abs(result.values - expected).max() / expected.max()
    print(f"max relative error vs software reference: {error:.2e}")

    top = np.argsort(result.values)[-5:][::-1]
    print("top-5 nodes by PageRank:",
          ", ".join(f"{n} ({result.values[n]:.5f})" for n in top))

    print(f"\niterations:        {result.iterations}")
    print(f"cycles:            {result.cycles:,}")
    print(f"throughput:        {result.gteps:.3f} GTEPS")
    print(f"DRAM read:         {result.dram_bytes_read / 1e6:.1f} MB "
          f"({result.bandwidth_gb_s:.1f} GB/s sustained)")
    print(f"cache hit rate:    {result.hit_rate:.1%} "
          "(low is fine -- MSHRs do the heavy lifting)")
    print(f"irregular reads:   {result.stats['moms_reads']:,} "
          f"served by {result.stats['dram_lines_single']:,} DRAM lines")


if __name__ == "__main__":
    main()
