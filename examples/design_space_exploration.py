#!/usr/bin/env python
"""Design-space exploration, the way the paper's Section V-B does it.

Sweeps MOMS organizations on one workload, applies the frequency model
(discarding designs below 185 MHz, like the paper's DSE), and prints a
ranked table of throughput, DRAM traffic, hit rate, and modeled area --
the data behind a Fig. 11-style architecture choice.

Run:  python examples/design_space_exploration.py
"""

from repro.accel import AcceleratorSystem, named_architectures
from repro.fabric import AreaModel, FrequencyModel
from repro.graph.datasets import load_benchmark
from repro.report import format_table


def main():
    graph = load_benchmark("24", shrink=6)  # RMAT stand-in
    print(f"workload: SCC on {graph}\n")

    area = AreaModel()
    frequency = FrequencyModel(area)
    rows = []
    for name, config in named_architectures("scc", n_channels=2).items():
        if not frequency.meets_timing(config.design):
            print(f"  {name}: discarded "
                  f"({frequency.frequency_mhz(config.design):.0f} MHz "
                  "< 185 MHz)")
            continue
        system = AcceleratorSystem(graph, "scc", config)
        result = system.run(max_iterations=4)
        utilization = area.utilization(config.design)
        rows.append({
            "architecture": name,
            "GTEPS": result.gteps,
            "freq MHz": system.frequency_mhz,
            "hit rate": result.hit_rate,
            "DRAM lines": result.stats["dram_lines_single"],
            "LUT %": 100 * utilization["LUT"],
            "URAM %": 100 * utilization["URAM"],
        })

    rows.sort(key=lambda r: r["GTEPS"], reverse=True)
    print(format_table(rows, title="design-space exploration (SCC, RMAT)"))
    best = rows[0]
    print(f"\nwinner: {best['architecture']} at {best['GTEPS']:.3f} GTEPS "
          f"with a {best['hit rate']:.0%} hit rate -- "
          "throughput does not come from the cache array.")


if __name__ == "__main__":
    main()
