#!/usr/bin/env python
"""Weighted shortest paths (SSSP) for a navigation-style workload.

Builds a clustered, weighted graph (think road segments with travel
times), computes single-source shortest paths on the accelerator, and
validates against the Bellman-Ford reference.  SSSP exercises the
weighted datapath: 64-bit edges, the free-ID queue and state memory of
the MOMS interface (paper Fig. 10a), and asynchronous execution with
active-source tracking -- later sweeps stream only the shards whose
sources changed.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro.accel import AcceleratorSystem, named_architectures
from repro.accel.algorithms import INFINITY
from repro.baselines.reference import reference_sssp
from repro.graph import web_graph


def main():
    rng = np.random.default_rng(17)
    graph = web_graph(n_nodes=5_000, n_edges=26_000, locality=0.9,
                      seed=23, name="roads").with_weights(rng)
    source = 0
    print(f"road network: {graph}, source node {source}")

    config = named_architectures("sssp", n_channels=2)["20/8 two-level"]
    system = AcceleratorSystem(graph, "sssp", config, source=source)
    result = system.run()

    distances = result.values.astype(np.int64)
    expected, sweeps = reference_sssp(graph, source)
    assert np.array_equal(distances, expected), "distances diverged!"

    reachable = distances < INFINITY
    print(f"\nconverged in {result.iterations} sweeps "
          f"(reference fixpoint: {sweeps})")
    print(f"reachable nodes:  {reachable.sum():,} / {graph.n_nodes:,}")
    print(f"median distance:  {np.median(distances[reachable]):.0f}")
    print(f"farthest node:    {int(np.argmax(np.where(reachable, distances, -1)))} "
          f"at distance {distances[reachable].max()}")
    print(f"throughput:       {result.gteps:.3f} GTEPS")
    print(f"ID-pool stalls:   {result.stats['id_stalls']:,} "
          "(free-ID queue backpressure, paper Fig. 10a)")
    print(f"local BRAM reads: {result.stats['local_reads']:,} "
          "(use_local_src short-circuits same-interval sources)")

    # Active-source tracking means later sweeps stream fewer edges.
    total_possible = graph.n_edges * result.iterations
    print(f"edges processed:  {result.edges_processed:,} of "
          f"{total_possible:,} worst-case "
          f"({result.edges_processed / total_possible:.0%})")


if __name__ == "__main__":
    main()
