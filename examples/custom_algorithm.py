#!/usr/bin/env python
"""Defining a custom algorithm with the public Template 1 API.

The accelerator is adaptable: any algorithm expressible as
init/gather/apply over edges runs unmodified (paper Section III-B).
Here we build **weakly-connected components** from scratch -- min-label
propagation over the symmetrized edge set -- as an `AlgorithmSpec`, run
it on the cycle-level system, and verify against networkx.

Run:  python examples/custom_algorithm.py
"""

import networkx as nx
import numpy as np

from repro.accel import AcceleratorSystem, named_architectures
from repro.accel.template import AlgorithmSpec
from repro.graph import Graph
from repro.graph.generators import social_graph


def weakly_connected_spec():
    """Min-label propagation; pair with a symmetrized graph for WCC."""
    return AlgorithmSpec(
        name="wcc",
        weighted=False,
        use_local_src=True,    # BRAM and DRAM share the uint32 format
        always_active=False,   # converge via active-source tracking
        synchronous=False,     # asynchronous: updates visible in-iteration
        gather_latency=1,      # combinational integer min
        use_const=False,
        node_bytes=4,
        init=lambda c, v: v,
        gather=lambda u, v, w: min(u, v),
        apply=lambda v, c, base: v,
        decode=int,
        encode=int,
        initial_values=lambda g: np.arange(g.n_nodes, dtype=np.uint32),
        finalize=lambda words, g: words.copy(),
    )


def symmetrize(graph):
    """Duplicate each edge in both directions (paper Section III)."""
    return Graph(
        graph.n_nodes,
        np.concatenate([graph.src, graph.dst]),
        np.concatenate([graph.dst, graph.src]),
        name=f"{graph.name}+sym",
    )


def main():
    directed = social_graph(3_000, 12_000, seed=41, name="collab")
    graph = symmetrize(directed)
    print(f"custom algorithm 'wcc' on {graph}")

    config = named_architectures("scc", n_channels=2)["16/16 two-level"]
    system = AcceleratorSystem(graph, weakly_connected_spec(), config)
    result = system.run()
    labels = result.values.astype(np.int64)

    nxg = nx.Graph()
    nxg.add_nodes_from(range(directed.n_nodes))
    nxg.add_edges_from(zip(directed.src.tolist(), directed.dst.tolist()))
    expected_components = list(nx.connected_components(nxg))

    # Same partition: every networkx component maps to exactly one label.
    for component in expected_components:
        component_labels = {int(labels[v]) for v in component}
        assert len(component_labels) == 1, "component split!"
    assert len(np.unique(labels)) == len(expected_components)

    print(f"converged in {result.iterations} sweeps at "
          f"{result.gteps:.3f} GTEPS")
    print(f"components: {len(expected_components)} "
          "(matches networkx exactly)")
    sizes = np.bincount(labels)
    sizes = np.sort(sizes[sizes > 0])[::-1]
    print(f"largest components: {sizes[:5].tolist()}")


if __name__ == "__main__":
    main()
