#!/usr/bin/env python
"""Social-network analysis on the accelerator.

The scenario from the paper's introduction: a large, skewed,
badly-labeled social graph (a scaled twitter_rv stand-in) on which
classic caches thrash.  We:

1. find influence communities with min-label propagation (the paper's
   SCC kernel),
2. rank users with PageRank,
3. show what DBG reordering buys on a graph whose labeling destroys
   communities (paper Fig. 13's point),

validating every result against software references.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.accel import AcceleratorSystem, named_architectures
from repro.baselines.reference import reference_min_label, reference_pagerank
from repro.graph.datasets import load_benchmark


def main():
    graph = load_benchmark("RV", shrink=6)  # twitter_rv stand-in
    print(f"social graph: {graph}")
    degrees = graph.out_degrees()
    print(f"degree skew: max={degrees.max()}, mean={degrees.mean():.1f} "
          "(hubs get coalesced by the MOMS)")

    config = named_architectures("scc", n_channels=2)["16/16 two-level"]

    # -- communities via min-label propagation ---------------------------
    system = AcceleratorSystem(graph, "scc", config)
    result = system.run()
    labels = result.values.astype(np.int64)
    expected, _ = reference_min_label(graph)
    assert np.array_equal(labels, expected), "accelerator diverged!"
    n_components = len(np.unique(labels))
    largest = np.bincount(labels).max()
    print(f"\nlabel propagation converged in {result.iterations} sweeps "
          f"({result.gteps:.3f} GTEPS)")
    print(f"components: {n_components}, largest holds "
          f"{largest / graph.n_nodes:.1%} of users")

    # -- influencer ranking ----------------------------------------------
    pr_config = named_architectures("pagerank", n_channels=2)[
        "16/16 two-level"
    ]
    pr_system = AcceleratorSystem(graph, "pagerank", pr_config)
    pr_result = pr_system.run(max_iterations=5)
    reference = reference_pagerank(graph, 5)
    error = np.abs(pr_result.values - reference).max() / reference.max()
    assert error < 1e-3
    influencers = np.argsort(pr_result.values)[-3:][::-1]
    print(f"\nPageRank ({pr_result.gteps:.3f} GTEPS), top influencers: "
          f"{list(influencers)}")

    # -- what DBG reordering buys on scrambled labels ---------------------
    plain = AcceleratorSystem(graph, "pagerank", pr_config,
                              use_hashing=True, use_dbg=False)
    r_plain = plain.run(max_iterations=2)
    dbg = AcceleratorSystem(graph, "pagerank", pr_config,
                            use_hashing=True, use_dbg=True)
    r_dbg = dbg.run(max_iterations=2)
    assert np.allclose(r_plain.values, r_dbg.values, rtol=1e-4)
    saved = 1 - r_dbg.stats["dram_lines_single"] / \
        r_plain.stats["dram_lines_single"]
    print(f"\nDBG reordering packs hubs into shared cache lines: "
          f"{r_plain.stats['dram_lines_single']:,} -> "
          f"{r_dbg.stats['dram_lines_single']:,} DRAM lines "
          f"({saved:.0%} less traffic; throughput "
          f"{r_plain.gteps:.3f} -> {r_dbg.gteps:.3f} GTEPS)")


if __name__ == "__main__":
    main()
