"""Tests for arbiters and crossbars (bank-conflict behaviour)."""

from repro.fabric import Crossbar, RoundRobinArbiter
from repro.sim import Channel, Engine


def run_cycles(engine, n):
    for _ in range(n):
        engine._step()


class TestRoundRobinArbiter:
    def test_merges_all_tokens(self):
        engine = Engine()
        inputs = [engine.add_channel(Channel(8)) for _ in range(3)]
        output = engine.add_channel(Channel(8))
        engine.add_component(RoundRobinArbiter(inputs, output))
        for i, ch in enumerate(inputs):
            ch.push(("src", i))
        received = []
        for _ in range(10):
            engine._step()
            while output.can_pop():
                received.append(output.pop())
        assert sorted(received) == [("src", 0), ("src", 1), ("src", 2)]

    def test_one_grant_per_cycle(self):
        engine = Engine()
        inputs = [engine.add_channel(Channel(8)) for _ in range(4)]
        output = engine.add_channel(Channel(16))
        engine.add_component(RoundRobinArbiter(inputs, output))
        for ch in inputs:
            for _ in range(4):
                ch.push("t")
        run_cycles(engine, 8)
        # 16 tokens at 1/cycle: not all through after 8 cycles.
        assert output.total_pushed <= 8

    def test_fairness_under_saturation(self):
        """No input starves: grants spread evenly."""
        engine = Engine()
        inputs = [engine.add_channel(Channel(64)) for _ in range(4)]
        output = engine.add_channel(Channel(4))
        arbiter = engine.add_component(RoundRobinArbiter(inputs, output))
        for _ in range(200):
            for ch in inputs:
                if ch.can_push():
                    ch.push("t")
            while output.can_pop():
                output.pop()
            engine._step()
        assert max(arbiter.grants) - min(arbiter.grants) <= 2


class TestCrossbar:
    def build(self, n_in, n_out, route):
        engine = Engine()
        inputs = [engine.add_channel(Channel(16)) for _ in range(n_in)]
        outputs = [engine.add_channel(Channel(16)) for _ in range(n_out)]
        xbar = engine.add_component(Crossbar(inputs, outputs, route))
        return engine, inputs, outputs, xbar

    def test_routes_by_function(self):
        engine, inputs, outputs, _ = self.build(2, 2, route=lambda t: t % 2)
        inputs[0].push(4)  # -> output 0
        inputs[1].push(7)  # -> output 1
        run_cycles(engine, 3)
        assert outputs[0].pop() == 4
        assert outputs[1].pop() == 7

    def test_bank_conflict_serializes(self):
        """Two inputs aimed at one output take two cycles."""
        engine, inputs, outputs, xbar = self.build(2, 2, route=lambda t: 0)
        inputs[0].push("a")
        inputs[1].push("b")
        run_cycles(engine, 2)
        assert len(outputs[0]) == 1
        run_cycles(engine, 2)
        assert len(outputs[0]) == 2
        assert xbar.conflict_cycles >= 1

    def test_parallel_transfers_when_no_conflict(self):
        """Distinct outputs move tokens in the same cycle."""
        engine, inputs, outputs, xbar = self.build(4, 4, route=lambda t: t)
        for i in range(4):
            inputs[i].push(i)
        run_cycles(engine, 2)
        assert all(len(outputs[i]) == 1 for i in range(4))

    def test_input_port_limit(self):
        """One input cannot feed two outputs in the same cycle."""
        engine, inputs, outputs, _ = self.build(1, 2, route=lambda t: t)
        inputs[0].push(0)
        inputs[0].push(1)
        run_cycles(engine, 2)
        total = len(outputs[0]) + len(outputs[1])
        assert total == 1  # second token needs another cycle
        run_cycles(engine, 1)
        assert len(outputs[0]) == 1 and len(outputs[1]) == 1

    def test_head_of_line_blocking(self):
        """A blocked head token stalls the tokens behind it (FIFO port)."""
        engine, inputs, outputs, _ = self.build(1, 2, route=lambda t: t)
        # Fill output 0 so it cannot accept.
        for _ in range(16):
            outputs[0].push("fill")
        inputs[0].push(0)  # blocked: output 0 full
        inputs[0].push(1)  # would go to output 1, but behind token 0
        run_cycles(engine, 4)
        assert len(outputs[1]) == 0

    def test_throughput_counts(self):
        engine, inputs, outputs, xbar = self.build(2, 2, route=lambda t: t % 2)
        for i in range(8):
            inputs[i % 2].push(i % 2)
        run_cycles(engine, 10)
        assert xbar.transfers == 8
