"""Tests for die-crossing logic (paper Fig. 5 semantics)."""

import pytest

from repro.fabric import DieCrossing
from repro.fabric.crossing import cross_link
from repro.sim import Channel, Engine


def build(hops=1, out_capacity=4):
    engine = Engine()
    inp = engine.add_channel(Channel(8, name="in"))
    out = engine.add_channel(Channel(out_capacity, name="out"))
    crossing = DieCrossing(engine, inp, out, hops=hops)
    return engine, inp, out, crossing


class TestDieCrossing:
    def test_rejects_small_receive_queue(self):
        engine = Engine()
        inp = engine.add_channel(Channel(8))
        out = engine.add_channel(Channel(2))
        with pytest.raises(ValueError):
            DieCrossing(engine, inp, out)

    def test_rejects_zero_hops(self):
        engine = Engine()
        inp = engine.add_channel(Channel(8))
        out = engine.add_channel(Channel(8))
        with pytest.raises(ValueError):
            DieCrossing(engine, inp, out, hops=0)

    def test_adds_two_cycles_per_hop(self):
        for hops, minimum in [(1, 3), (2, 5)]:
            engine, inp, out, _ = build(hops=hops, out_capacity=8)
            inp.push("x")
            engine.run(done=lambda: out.can_pop(), max_cycles=50)
            # push visible (1) + 2*hops register stages + out commit (1)
            assert engine.now >= 2 * hops + 1
            assert out.pop() == "x"

    def test_sustains_full_throughput(self):
        """A registered crossing still moves one token per cycle."""
        engine, inp, out, _ = build(out_capacity=8)
        sent = 0
        received = 0
        for cycle in range(120):
            if sent < 100 and inp.can_push():
                inp.push(sent)
                sent += 1
            while out.can_pop():
                out.pop()
                received += 1
            engine._step()
        assert received >= 95

    def test_never_overflows_receive_queue(self):
        """Tokens in flight always fit: nothing is lost if consumer stalls."""
        engine, inp, out, crossing = build(out_capacity=4)
        pushed = 0
        for _ in range(30):
            if inp.can_push():
                inp.push(pushed)
                pushed += 1
            engine._step()
        # Consumer never popped; everything must be queued, none dropped.
        in_flight = len(crossing._line) + out.pending + inp.pending
        assert in_flight == pushed
        # Now drain and verify order.
        received = []
        for _ in range(60):
            while out.can_pop():
                received.append(out.pop())
            engine._step()
        assert received == list(range(pushed))

    def test_preserves_order(self):
        engine, inp, out, _ = build(out_capacity=16)
        items = list(range(10))
        received = []
        to_send = list(items)
        for _ in range(60):
            if to_send and inp.can_push():
                inp.push(to_send.pop(0))
            while out.can_pop():
                received.append(out.pop())
            engine._step()
        assert received == items


class TestCrossLink:
    def test_zero_hops_is_plain_channel(self):
        engine = Engine()
        a, b = cross_link(engine, 4, hops=0)
        assert a is b

    def test_one_hop_builds_crossing(self):
        engine = Engine()
        a, b = cross_link(engine, 4, hops=1)
        assert a is not b
        a.push("t")
        engine.run(done=lambda: b.can_pop(), max_cycles=20)
        assert b.pop() == "t"
