"""Tests for floorplan, area and frequency models."""

import pytest

from repro.fabric import AWS_F1_FLOORPLAN, AreaModel, Floorplan, FrequencyModel
from repro.fabric.design import (
    MOMS_PRIVATE,
    MOMS_SHARED,
    MOMS_TRADITIONAL,
    MOMS_TWO_LEVEL,
    DesignDescription,
)
from repro.fabric.frequency import MIN_FREQ_MHZ, TARGET_FREQ_MHZ


def design(**kwargs):
    defaults = dict(n_pes=16, n_banks=16, organization=MOMS_TWO_LEVEL)
    defaults.update(kwargs)
    return DesignDescription(**defaults)


class TestFloorplan:
    def test_aws_f1_channel_placement(self):
        plan = AWS_F1_FLOORPLAN
        assert [plan.die_of_channel(c) for c in range(4)] == [0, 1, 1, 2]

    def test_pe_assignment_respects_fractions(self):
        plan = AWS_F1_FLOORPLAN
        dies = plan.assign_pes(20)
        counts = [dies.count(d) for d in range(3)]
        assert sum(counts) == 20
        # 30/15/55 split of 20 -> 6/3/11.
        assert counts == [6, 3, 11]

    def test_assignment_always_complete(self):
        plan = AWS_F1_FLOORPLAN
        for n in range(1, 33):
            dies = plan.assign_pes(n)
            assert len(dies) == n
            assert all(0 <= d < 3 for d in dies)

    def test_hops_linear_stack(self):
        plan = AWS_F1_FLOORPLAN
        assert plan.hops(0, 2) == 2
        assert plan.hops(1, 1) == 0

    def test_bank_to_channel_die(self):
        plan = AWS_F1_FLOORPLAN
        # 16 banks over 4 channels: 4 banks per channel.
        assert plan.die_of_bank(0, 16, 4) == 0
        assert plan.die_of_bank(15, 16, 4) == 2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            Floorplan(pe_fraction=(0.5, 0.5, 0.5))


class TestDesignDescription:
    def test_label_formats(self):
        d = design(n_pes=16, n_banks=16, organization=MOMS_TWO_LEVEL,
                   private_cache_kib=64)
        assert d.label == "16/16 64k two-level"

    def test_private_only_has_no_shared_level(self):
        d = design(organization=MOMS_PRIVATE, n_banks=0)
        assert d.has_private_level and not d.has_shared_level

    def test_invalid_organization_rejected(self):
        with pytest.raises(ValueError):
            design(organization="magic")

    def test_shared_needs_banks(self):
        with pytest.raises(ValueError):
            design(organization=MOMS_SHARED, n_banks=0)


class TestAreaModel:
    def test_more_pes_use_more_area(self):
        model = AreaModel()
        small = model.design_total(design(n_pes=4, n_banks=4))
        big = model.design_total(design(n_pes=20, n_banks=16))
        assert big.lut > small.lut
        assert big.uram > small.uram

    def test_cacheless_bank_uses_less_uram(self):
        model = AreaModel()
        with_cache = model.moms_bank(4096, 32768, 256)
        without = model.moms_bank(4096, 32768, 0)
        assert without.uram < with_cache.uram

    def test_pagerank_uses_dsps(self):
        model = AreaModel()
        pr = model.pe(design(algorithm="pagerank", node_bits=64))
        scc = model.pe(design(algorithm="scc"))
        assert pr.dsp > 0 and scc.dsp == 0

    def test_weighted_pe_has_state_memory(self):
        model = AreaModel()
        sssp = model.pe(design(algorithm="sssp", weighted=True))
        scc = model.pe(design(algorithm="scc", weighted=False))
        assert sssp.bram > scc.bram

    def test_utilization_fractions_sane(self):
        model = AreaModel()
        util = model.utilization(design(n_pes=16, n_banks=16))
        assert set(util) == {"LUT", "FF", "BRAM", "URAM", "DSP"}
        assert all(0.0 <= v <= 1.2 for v in util.values())
        # LUT-heavy interconnect + BRAM-heavy MOMS per Fig. 17.
        assert util["DSP"] < util["LUT"]

    def test_crossing_kbits_grow_with_channels(self):
        model = AreaModel()
        few = model.crossing_kbits(design(n_channels=1))
        many = model.crossing_kbits(design(n_channels=4))
        assert many > few


class TestFrequencyModel:
    def test_small_design_hits_target(self):
        model = FrequencyModel()
        d = design(n_pes=2, n_banks=2, n_channels=1)
        assert model.frequency_mhz(d) == pytest.approx(TARGET_FREQ_MHZ, abs=30)

    def test_large_design_degrades_but_meets_timing(self):
        model = FrequencyModel()
        d = design(n_pes=16, n_banks=16, n_channels=4)
        freq = model.frequency_mhz(d)
        assert MIN_FREQ_MHZ <= freq < TARGET_FREQ_MHZ

    def test_weighted_runs_slower(self):
        model = FrequencyModel()
        base = design(n_pes=16, n_banks=16, algorithm="scc")
        weighted = design(n_pes=16, n_banks=16, algorithm="sssp",
                          weighted=True)
        assert model.frequency_mhz(weighted) < model.frequency_mhz(base)

    def test_more_channels_more_crossings_lower_freq(self):
        """Paper: 4-channel systems clock below 2-channel ones."""
        model = FrequencyModel()
        two = design(n_pes=16, n_banks=16, n_channels=2)
        four = design(n_pes=16, n_banks=16, n_channels=4)
        assert model.frequency_mhz(four) <= model.frequency_mhz(two)

    def test_monotone_in_pe_count(self):
        model = FrequencyModel()
        freqs = [
            model.frequency_mhz(design(n_pes=n, n_banks=8))
            for n in (4, 12, 24)
        ]
        assert freqs[0] >= freqs[1] >= freqs[2]
