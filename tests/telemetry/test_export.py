"""Export round-trips: every writer's output passes its validator,
and corrupted files are rejected with a useful error.
"""

import json

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.telemetry import (
    TelemetryConfig,
    validate_chrome_trace,
    validate_timeline_jsonl,
    write_chrome_trace,
    write_summary_json,
    write_timeline_csv,
    write_timeline_jsonl,
)


@pytest.fixture(scope="module")
def telemetry():
    graph = web_graph(600, 3000, seed=3)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "bfs", n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(
        graph, "bfs", config,
        telemetry=TelemetryConfig(sample_interval=32),
    )
    system.run(max_iterations=3)
    return system.telemetry


class TestChromeTrace:
    def test_written_trace_validates(self, telemetry, tmp_path):
        path = tmp_path / "run.trace.json"
        events = write_chrome_trace(telemetry, path)
        counts = validate_chrome_trace(path)
        assert events == sum(counts.values())
        assert counts.get("C", 0) > 0, "no counter events exported"
        assert counts.get("X", 0) > 0, "no span events exported"

    def test_trace_is_plain_json_with_trace_events(self, telemetry,
                                                   tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(telemetry, path)
        with open(path) as fh:
            doc = json.load(fh)
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert "ph" in event and "name" in event

    def test_rejects_event_without_phase(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"traceEvents": [{"name": "orphan"}]}
        ))
        with pytest.raises(ValueError, match="ph"):
            validate_chrome_trace(path)

    def test_rejects_span_with_negative_duration(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{
            "ph": "X", "name": "s", "ts": 5, "dur": -1,
            "pid": 1, "tid": 1,
        }]}))
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(path)


class TestTimelineJsonl:
    def test_written_timeline_validates(self, telemetry, tmp_path):
        path = tmp_path / "run.timeline.jsonl"
        rows = write_timeline_jsonl(telemetry, path)
        info = validate_timeline_jsonl(path)
        assert info["samples"] == rows == len(telemetry.samples)
        assert "mshr_total" in info["meta"]["series"]

    def test_rejects_missing_meta_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "sample", "cycle": 1}) + "\n"
        )
        with pytest.raises(ValueError, match="meta"):
            validate_timeline_jsonl(path)

    def test_rejects_non_monotonic_cycles(self, telemetry, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_timeline_jsonl(telemetry, path)
        lines = path.read_text().splitlines()
        lines.append(lines[1])  # replay an old cycle
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="cycle"):
            validate_timeline_jsonl(path)

    def test_rejects_unknown_series(self, telemetry, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_timeline_jsonl(telemetry, path)
        lines = path.read_text().splitlines()
        rogue = json.loads(lines[-1])
        rogue["cycle"] += 1
        rogue["not_a_series"] = 1
        lines.append(json.dumps(rogue))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="series"):
            validate_timeline_jsonl(path)


class TestCsvAndSummary:
    def test_csv_has_header_and_all_rows(self, telemetry, tmp_path):
        path = tmp_path / "run.timeline.csv"
        write_timeline_csv(telemetry, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("cycle,")
        assert len(lines) == 1 + len(telemetry.samples)

    def test_summary_json_contents(self, telemetry, tmp_path):
        path = tmp_path / "run.summary.json"
        write_summary_json(telemetry, path, extra={"graph": "unit"})
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["graph"] == "unit"
        assert doc["cycles"] == telemetry.cycles
        assert doc["pe_stall_table"]
        assert doc["bank_stall_table"]
        assert doc["moms_latency_per_pe"]
