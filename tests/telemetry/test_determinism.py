"""Telemetry must observe, never perturb.

The collector hangs off ``is None``-gated hooks in the engine, PEs,
banks, and DRAM channels; these tests pin the contract that enabling
it changes *nothing* the model computes -- bit-identical cycles,
throughput, traffic, and result vectors -- under both the demand-driven
and the all-tick legacy engines.
"""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.telemetry import TelemetryConfig

GRAPH = web_graph(900, 4500, seed=11)


def _run(engine_env, telemetry, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", engine_env)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(
        GRAPH, "pagerank", config, telemetry=telemetry
    )
    result = system.run(max_iterations=2)
    return system, result


def _fingerprint(system, result):
    return {
        "cycles": result.cycles,
        "gteps": result.gteps,
        "edges": result.edges_processed,
        "hit_rate": result.hit_rate,
        "dram_bytes_read": result.dram_bytes_read,
        "dram_lines_single": result.stats["dram_lines_single"],
        "values": result.values.tobytes(),
    }


class TestTelemetryDeterminism:
    @pytest.mark.parametrize("engine_env", ["demand", "legacy"])
    def test_telemetry_on_matches_off(self, engine_env, monkeypatch):
        off = _fingerprint(*_run(engine_env, None, monkeypatch))
        on_sys, on_res = _run(
            engine_env, TelemetryConfig(sample_interval=64), monkeypatch
        )
        assert _fingerprint(on_sys, on_res) == off
        # Not vacuous: the instrumented run actually collected data.
        assert on_sys.telemetry is not None
        assert on_sys.telemetry.summary()["samples"] > 0

    def test_telemetry_identical_across_engines(self, monkeypatch):
        """The *telemetry* itself is engine-invariant where it must be.

        Stall accounting and occupancy peaks are functions of the
        simulated schedule, which both engines produce identically.
        """
        cfg = TelemetryConfig(sample_interval=64)
        demand_sys, _ = _run("demand", cfg, monkeypatch)
        legacy_sys, _ = _run("legacy", cfg, monkeypatch)
        d = demand_sys.telemetry.summary()
        l = legacy_sys.telemetry.summary()
        assert d["cycles"] == l["cycles"]
        assert d["pe_stalls"] == l["pe_stalls"]
        assert d["bank_stalls"] == l["bank_stalls"]
        assert d["mshr_peak"] == l["mshr_peak"]
        assert d["cache"] == l["cache"]
