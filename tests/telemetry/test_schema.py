"""Schema-versioned, tolerant parsing for journals and activity dicts.

``--resume`` must survive code changes: journal rows written by an
older (or newer) build, and activity dicts carrying fields this build
does not know, are degraded to "re-run the point" instead of crashing
the sweep.
"""

import json
import os

from repro.core.stats import ACTIVITY_SCHEMA_VERSION, EngineActivity
from repro.experiments.common import (
    JOURNAL_SCHEMA,
    SweepPolicy,
    _decode_payload,
    run_points,
)


def _double(x):
    return x * 2


class TestActivitySchema:
    def test_as_dict_is_versioned(self):
        data = EngineActivity(cycles_simulated=10).as_dict()
        assert data["version"] == ACTIVITY_SCHEMA_VERSION

    def test_round_trip(self):
        activity = EngineActivity(
            cycles_simulated=100, component_ticks=40,
            by_kind={"Pe": {"count": 4, "ticks": 30, "wakes": 20}},
        )
        clone = EngineActivity.from_dict(activity.as_dict())
        assert clone.cycles_simulated == 100
        assert clone.by_kind == activity.by_kind

    def test_from_dict_ignores_unknown_fields(self):
        """A dict from a *newer* build parses instead of raising."""
        data = EngineActivity(cycles_simulated=5).as_dict()
        data["version"] = ACTIVITY_SCHEMA_VERSION + 7
        data["field_from_the_future"] = {"x": 1}
        clone = EngineActivity.from_dict(data)
        assert clone.cycles_simulated == 5

    def test_from_dict_accepts_pre_version_dicts(self):
        """A dict from an *older* build (no version, no by_kind)."""
        clone = EngineActivity.from_dict(
            {"cycles_simulated": 3, "component_ticks": 2}
        )
        assert clone.cycles_simulated == 3
        assert clone.by_kind == {}

    def test_merge_sums_by_kind(self):
        a = EngineActivity(by_kind={"Pe": {"count": 1, "ticks": 5,
                                           "wakes": 2}})
        b = EngineActivity(by_kind={"Pe": {"count": 1, "ticks": 7,
                                           "wakes": 1},
                                    "Bank": {"count": 2, "ticks": 3,
                                             "wakes": 3}})
        a.merge(b)
        assert a.by_kind["Pe"] == {"count": 2, "ticks": 12, "wakes": 3}
        assert a.by_kind["Bank"]["count"] == 2


class TestJournalSchema:
    def test_rows_carry_schema_version(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        run_points(_double, [1], jobs=1,
                   policy=SweepPolicy(journal=journal))
        row = json.loads(open(journal).readline())
        assert row["schema"] == JOURNAL_SCHEMA

    def test_decode_rejects_newer_schema(self):
        assert _decode_payload(
            {"schema": JOURNAL_SCHEMA + 1, "payload": "AAAA"}
        ) is None

    def test_decode_rejects_corrupt_payload(self):
        assert _decode_payload(
            {"schema": JOURNAL_SCHEMA, "payload": "not-base64!!"}
        ) is None

    def test_resume_reruns_undecodable_points(self, tmp_path):
        """A journal row whose payload no longer decodes is treated as
        missing: the point re-runs and the sweep still completes."""
        journal = str(tmp_path / "resume.jsonl")
        run_points(_double, [1, 2, 3], jobs=1,
                   policy=SweepPolicy(journal=journal))

        rows = [json.loads(line) for line in open(journal)]
        rows[1]["payload"] = "corrupt//data"
        with open(journal, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")

        results = run_points(
            _double, [1, 2, 3], jobs=1,
            policy=SweepPolicy(journal=journal, resume=True),
        )
        assert results == [2, 4, 6]

    def test_resume_reruns_rows_from_newer_schema(self, tmp_path):
        journal = str(tmp_path / "newer.jsonl")
        run_points(_double, [4], jobs=1,
                   policy=SweepPolicy(journal=journal))
        rows = [json.loads(line) for line in open(journal)]
        rows[0]["schema"] = JOURNAL_SCHEMA + 5
        with open(journal, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        results = run_points(
            _double, [4], jobs=1,
            policy=SweepPolicy(journal=journal, resume=True),
        )
        assert results == [8]


class TestTelemetryEnvWiring:
    def test_sweep_env_enables_telemetry(self, monkeypatch):
        from repro.experiments.common import telemetry_from_env

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_from_env() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert telemetry_from_env() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_INTERVAL", "128")
        config = telemetry_from_env()
        assert config is not None
        assert config.sample_interval == 128
