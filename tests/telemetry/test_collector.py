"""Acceptance tests for the telemetry collector on a real run.

Pins the ISSUE acceptance criteria: the stall-attribution table sums
exactly to ``cycles x PEs`` (and per bank), the MSHR-occupancy
timeline is non-empty with a sensible peak, the latency histograms
carry real data, and the summary exposes the cache hit / primary-miss
/ secondary-miss breakdown and the DRAM burst-vs-single split.
"""

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.accel.system import AcceleratorSystem
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph
from repro.telemetry import LatencyHistogram, TelemetryConfig
from repro.telemetry.collector import BANK_REASONS, PE_REASONS


@pytest.fixture(scope="module")
def traced_run():
    graph = web_graph(900, 4500, seed=5)
    config = ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, "pagerank", n_channels=2),
        **SCALED_DEFAULTS,
    )
    system = AcceleratorSystem(
        graph, "pagerank", config,
        telemetry=TelemetryConfig(sample_interval=64),
    )
    result = system.run(max_iterations=2)
    return system, result


class TestStallAttribution:
    def test_pe_rows_sum_to_cycles(self, traced_run):
        system, result = traced_run
        table = system.telemetry.pe_stall_table()
        assert len(table) == len(system.pes)
        for row in table:
            assert row["total"] == result.cycles, row
            assert sum(row[r] for r in PE_REASONS) == result.cycles
        grand = sum(row["total"] for row in table)
        assert grand == result.cycles * len(system.pes)

    def test_bank_rows_sum_to_cycles(self, traced_run):
        system, result = traced_run
        for row in system.telemetry.bank_stall_table():
            assert row["total"] == result.cycles, row
            assert sum(row[r] for r in BANK_REASONS) == result.cycles

    def test_stalls_are_not_all_idle(self, traced_run):
        system, _ = traced_run
        stalls = system.telemetry.summary()["pe_stalls"]
        assert stalls["busy"] > 0
        assert stalls["waiting-on-mem"] > 0


class TestTimelines:
    def test_mshr_timeline_nonempty_with_real_peak(self, traced_run):
        system, _ = traced_run
        timeline = system.telemetry.mshr_timeline()
        assert timeline, "sampler produced no MSHR occupancy points"
        peak = max(v for _, v in timeline)
        mean = sum(v for _, v in timeline) / len(timeline)
        assert peak > 0
        assert peak >= mean
        summary = system.telemetry.summary()
        assert summary["mshr_peak"] == peak

    def test_samples_cover_run_and_are_monotonic(self, traced_run):
        system, result = traced_run
        cycles = [row["cycle"] for row in system.telemetry.samples]
        assert cycles == sorted(cycles)
        assert len(cycles) == len(set(cycles))
        assert cycles[-1] <= system.telemetry.end_cycle

    def test_sample_rows_expose_dram_and_pe_series(self, traced_run):
        system, _ = traced_run
        row = system.telemetry.samples[-1]
        assert "mshr_total" in row
        assert any(k.startswith("dram.") for k in row)
        assert any(k.startswith("pe.") for k in row)
        assert any(k.startswith("bank.") for k in row)


class TestLatencyHistograms:
    def test_log2_bucketing(self):
        hist = LatencyHistogram()
        for latency in (0, 1, 2, 3, 4, 255, 256):
            hist.record(latency)
        d = hist.as_dict()
        assert d["count"] == 7
        assert d["max"] == 256
        assert hist.percentile(0.5) >= 1

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10)
        b.record(1000)
        a.merge(b)
        assert a.total == 2
        assert a.max == 1000

    def test_run_populates_all_families(self, traced_run):
        system, _ = traced_run
        summary = system.telemetry.summary()
        assert summary["moms_latency"]["count"] > 0
        assert summary["miss_latency"]["count"] > 0
        assert summary["dram_latency"]["count"] > 0
        assert summary["dram_latency"]["p99"] >= \
            summary["dram_latency"]["p50"]


class TestSummaryBreakdowns:
    def test_cache_breakdown(self, traced_run):
        system, _ = traced_run
        cache = system.telemetry.summary()["cache"]
        assert cache["requests"] > 0
        assert cache["hits"] + cache["primary_misses"] \
            + cache["secondary_misses"] <= cache["requests"]
        assert cache["primary_misses"] > 0

    def test_dram_split(self, traced_run):
        system, _ = traced_run
        dram = system.telemetry.summary()["dram"]
        assert 0.0 <= dram["single_line_fraction"] <= 1.0
        assert 0.0 < dram["effective_bw_ratio"] <= 1.0

    def test_summary_is_versioned(self, traced_run):
        from repro.telemetry import TELEMETRY_SCHEMA_VERSION

        system, _ = traced_run
        assert system.telemetry.summary()["version"] == \
            TELEMETRY_SCHEMA_VERSION

    def test_summary_rides_in_run_stats(self, traced_run):
        system, result = traced_run
        assert "telemetry" in result.stats
        assert result.stats["telemetry"]["cycles"] == result.cycles
