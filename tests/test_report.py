"""Tests for the table renderer and geomean helper."""

import pytest

from repro.report import format_table, geomean


class TestFormatTable:
    def test_renders_aligned_columns(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20.25}]
        text = format_table(rows, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in text and "20.250" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_render_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows)
        assert "x" in text


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([3, 3, 3]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([0.0, 2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0
        assert geomean([0.0]) == 0.0
