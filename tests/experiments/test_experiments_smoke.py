"""Smoke tests for the experiment harness: well-formed rows, cheaply.

The heavy sweeps live in benchmarks/; here we check each experiment
module produces consistent, schema-stable output on minimal inputs.
"""

from repro.experiments import (
    fig01_motivation,
    fig17_resources,
    table2_datasets,
    table3_preprocessing_time,
)
from repro.experiments.common import (
    bench_graph,
    iteration_budget,
    quick_benchmarks,
    quick_channels,
)
from repro.experiments.fig16_sota import table4_rows


class TestCommon:
    def test_quick_benchmarks_subset_of_suite(self):
        from repro.graph.datasets import BENCHMARKS
        assert set(quick_benchmarks(True)) <= set(BENCHMARKS)
        assert set(quick_benchmarks(False)) == set(BENCHMARKS)

    def test_bench_graph_quick_is_smaller(self):
        quick = bench_graph("WT", True)
        full = bench_graph("WT", False)
        assert quick.n_edges < full.n_edges

    def test_iteration_budget(self):
        assert iteration_budget("pagerank", True) < iteration_budget(
            "pagerank", False
        )
        assert iteration_budget("scc", False) is None

    def test_quick_channels(self):
        assert quick_channels(True) == 2
        assert quick_channels(False) == 4


class TestCheapExperiments:
    def test_table2_rows_schema(self):
        rows, text = table2_datasets.run(quick=True)
        assert len(rows) == 12
        assert {"key", "N", "M", "avg deg"} <= set(rows[0])
        assert "Table II" in text

    def test_table3_rows_schema(self):
        rows, text = table3_preprocessing_time.run(quick=True)
        assert len(rows) == 12
        for row in rows:
            assert row["partitioning (s)"] >= 0

    def test_fig17_rows_schema(self):
        rows, text = fig17_resources.run()
        assert len(rows) == 6
        for row in rows:
            assert 0 < row["LUT %"] < 150
            assert isinstance(row["meets timing"], bool)

    def test_fig01_ordering(self):
        rows, _ = fig01_motivation.run(quick=True, graph_key="WT")
        by_name = {r["memory system"]: r["lines/read"] for r in rows}
        assert by_name["ideal cache"] <= by_name["MOMS (two-level)"]

    def test_table4_constants(self):
        rows = table4_rows()
        assert len(rows) == 3
        assert any("64 GB/s" in r["ext. bandwidth"] for r in rows)
