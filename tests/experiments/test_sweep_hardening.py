"""Hardened sweep runner: validation, crash isolation, journal resume."""

import json
import os

import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.experiments.common import (
    SweepFailure,
    SweepPoint,
    SweepPolicy,
    _load_journal,
    run_points,
)
from repro.fabric.design import MOMS_TWO_LEVEL


def _config(algorithm="bfs"):
    return ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )


class TestSweepPointValidation:
    def test_valid_point_builds(self):
        point = SweepPoint("WT", "bfs", _config())
        assert point.graph_key == "WT"

    def test_unknown_graph_key_fails_eagerly(self):
        with pytest.raises(ValueError, match="unknown benchmark graph key"):
            SweepPoint("NOPE", "bfs", _config())

    def test_unknown_algorithm_fails_eagerly(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            SweepPoint("WT", "dijkstra", _config())

    def test_error_lists_known_keys(self):
        with pytest.raises(ValueError, match="WT"):
            SweepPoint("XX", "bfs", _config())


# Module-level workers (plain functions; the hardened runner forks, so
# closures would work too, but module level matches the fast path's
# pickling requirement).

def _double(x):
    return x * 2


def _flaky(x):
    if x == "crash":
        os._exit(9)
    if x == "raise":
        raise ValueError("injected failure")
    return x * 2


_RETRY_MARKER = None  # path of a marker file; set per test


def _fails_once(x):
    # Fails on the first attempt only, using a marker file visible
    # across the forked worker processes.
    if x == 5 and not os.path.exists(_RETRY_MARKER):
        open(_RETRY_MARKER, "w").close()
        os._exit(7)
    return x * 2


class TestHardenedRunner:
    def test_inert_policy_keeps_fast_path(self):
        assert not SweepPolicy().active
        assert run_points(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_crash_and_exception_are_isolated(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        policy = SweepPolicy(journal=journal, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            run_points(_flaky, [1, "crash", 2, "raise", 3], jobs=2,
                       policy=policy)
        failure = excinfo.value
        assert sorted(failure.failures) == [1, 3]
        assert failure.completed == 3
        assert "exit code 9" in failure.failures[1]
        assert "injected failure" in failure.failures[3]

    def test_retry_recovers_transient_crash(self, tmp_path):
        global _RETRY_MARKER
        _RETRY_MARKER = str(tmp_path / "fail.marker")
        policy = SweepPolicy(retries=1, backoff=0.01)
        results = run_points(_fails_once, [1, 5, 9], jobs=2, policy=policy)
        assert results == [2, 10, 18]
        assert os.path.exists(_RETRY_MARKER)  # first attempt did crash

    def test_timeout_kills_hung_worker(self, tmp_path):
        def hang(x):
            if x == "hang":
                import time
                time.sleep(120)
            return x

        policy = SweepPolicy(timeout=1.0, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            run_points(hang, ["ok", "hang"], jobs=2, policy=policy)
        assert "timed out" in excinfo.value.failures[1]
        assert excinfo.value.completed == 1

    def test_kill_then_resume_completes_identical_rows(self, tmp_path):
        """The acceptance scenario: a sweep dies partway; --resume
        finishes it and the rows match an uninterrupted run exactly."""
        journal = str(tmp_path / "resume.jsonl")
        points = list(range(8))
        expected = [x * 2 for x in points]

        # "Killed" run: point 5 hard-crashes the worker (no retries),
        # everything else completes and is journaled.
        global _RETRY_MARKER
        _RETRY_MARKER = str(tmp_path / "never-created.marker")

        def crash_on_5(x):
            if x == 5:
                os._exit(11)
            return x * 2

        policy = SweepPolicy(journal=journal, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            run_points(crash_on_5, points, jobs=3, policy=policy)
        assert excinfo.value.completed == len(points) - 1

        # Resume with a healthy worker: only the lost point re-runs.
        ran = str(tmp_path / "reran.log")

        def logging_worker(x):
            with open(ran, "a") as handle:
                handle.write(f"{x}\n")
            return x * 2

        resume = SweepPolicy(journal=journal, resume=True, backoff=0.01)
        results = run_points(logging_worker, points, jobs=3, policy=resume)
        assert results == expected
        reran = [int(line) for line in open(ran).read().split()]
        assert reran == [5]  # at most the in-flight point was lost

    def test_journal_tolerates_truncated_tail(self, tmp_path):
        journal = str(tmp_path / "trunc.jsonl")
        policy = SweepPolicy(journal=journal)
        run_points(_double, [1, 2], jobs=2, policy=policy)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "status": "ok", "payl')  # cut off
        entries = _load_journal(journal)
        assert len(entries) == 2

    def test_journal_records_are_json_lines(self, tmp_path):
        journal = str(tmp_path / "fmt.jsonl")
        run_points(_double, [3], jobs=1,
                   policy=SweepPolicy(journal=journal))
        lines = [json.loads(line) for line in open(journal)]
        assert lines[0]["status"] == "ok"
        assert lines[0]["index"] == 0
        assert "fingerprint" in lines[0] and "payload" in lines[0]
