"""Hardened sweep runner: validation, crash isolation, journal resume."""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.accel.config import ArchitectureConfig, SCALED_DEFAULTS, _design
from repro.experiments.common import (
    SweepFailure,
    SweepPoint,
    SweepPolicy,
    _fingerprint,
    _load_journal,
    run_point,
    run_points,
)
from repro.fabric.design import MOMS_TWO_LEVEL
from repro.graph import web_graph


def _config(algorithm="bfs"):
    return ArchitectureConfig(
        _design(4, 4, MOMS_TWO_LEVEL, algorithm, n_channels=2),
        **SCALED_DEFAULTS,
    )


class TestSweepPointValidation:
    def test_valid_point_builds(self):
        point = SweepPoint("WT", "bfs", _config())
        assert point.graph_key == "WT"

    def test_unknown_graph_key_fails_eagerly(self):
        with pytest.raises(ValueError, match="unknown benchmark graph key"):
            SweepPoint("NOPE", "bfs", _config())

    def test_unknown_algorithm_fails_eagerly(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            SweepPoint("WT", "dijkstra", _config())

    def test_error_lists_known_keys(self):
        with pytest.raises(ValueError, match="WT"):
            SweepPoint("XX", "bfs", _config())


# Module-level workers (plain functions; the hardened runner forks, so
# closures would work too, but module level matches the fast path's
# pickling requirement).

def _double(x):
    return x * 2


def _flaky(x):
    if x == "crash":
        os._exit(9)
    if x == "raise":
        raise ValueError("injected failure")
    return x * 2


_RETRY_MARKER = None  # path of a marker file; set per test


def _fails_once(x):
    # Fails on the first attempt only, using a marker file visible
    # across the forked worker processes.
    if x == 5 and not os.path.exists(_RETRY_MARKER):
        open(_RETRY_MARKER, "w").close()
        os._exit(7)
    return x * 2


class TestHardenedRunner:
    def test_inert_policy_keeps_fast_path(self):
        assert not SweepPolicy().active
        assert run_points(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_crash_and_exception_are_isolated(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        policy = SweepPolicy(journal=journal, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            run_points(_flaky, [1, "crash", 2, "raise", 3], jobs=2,
                       policy=policy)
        failure = excinfo.value
        assert sorted(failure.failures) == [1, 3]
        assert failure.completed == 3
        assert "exit code 9" in failure.failures[1]
        assert "injected failure" in failure.failures[3]

    def test_retry_recovers_transient_crash(self, tmp_path):
        global _RETRY_MARKER
        _RETRY_MARKER = str(tmp_path / "fail.marker")
        policy = SweepPolicy(retries=1, backoff=0.01)
        results = run_points(_fails_once, [1, 5, 9], jobs=2, policy=policy)
        assert results == [2, 10, 18]
        assert os.path.exists(_RETRY_MARKER)  # first attempt did crash

    def test_timeout_kills_hung_worker(self, tmp_path):
        def hang(x):
            if x == "hang":
                import time
                time.sleep(120)
            return x

        policy = SweepPolicy(timeout=1.0, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            run_points(hang, ["ok", "hang"], jobs=2, policy=policy)
        assert "timed out" in excinfo.value.failures[1]
        assert excinfo.value.completed == 1

    def test_kill_then_resume_completes_identical_rows(self, tmp_path):
        """The acceptance scenario: a sweep dies partway; --resume
        finishes it and the rows match an uninterrupted run exactly."""
        journal = str(tmp_path / "resume.jsonl")
        points = list(range(8))
        expected = [x * 2 for x in points]

        # "Killed" run: point 5 hard-crashes the worker (no retries),
        # everything else completes and is journaled.
        global _RETRY_MARKER
        _RETRY_MARKER = str(tmp_path / "never-created.marker")

        def crash_on_5(x):
            if x == 5:
                os._exit(11)
            return x * 2

        policy = SweepPolicy(journal=journal, backoff=0.01)
        with pytest.raises(SweepFailure) as excinfo:
            run_points(crash_on_5, points, jobs=3, policy=policy)
        assert excinfo.value.completed == len(points) - 1

        # Resume with a healthy worker: only the lost point re-runs.
        ran = str(tmp_path / "reran.log")

        def logging_worker(x):
            with open(ran, "a") as handle:
                handle.write(f"{x}\n")
            return x * 2

        resume = SweepPolicy(journal=journal, resume=True, backoff=0.01)
        results = run_points(logging_worker, points, jobs=3, policy=resume)
        assert results == expected
        reran = [int(line) for line in open(ran).read().split()]
        assert reran == [5]  # at most the in-flight point was lost

    def test_journal_tolerates_truncated_tail(self, tmp_path):
        journal = str(tmp_path / "trunc.jsonl")
        policy = SweepPolicy(journal=journal)
        run_points(_double, [1, 2], jobs=2, policy=policy)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "status": "ok", "payl')  # cut off
        with pytest.warns(RuntimeWarning, match="unparseable journal"):
            entries = _load_journal(journal)
        assert len(entries) == 2

    def test_resume_warns_on_mid_record_truncation(self, tmp_path):
        """A sweep SIGKILLed mid-append leaves a partial trailing JSONL
        record; --resume must skip it with a warning naming the line,
        keep every complete record, and re-run the lost point."""
        journal = str(tmp_path / "midcut.jsonl")
        run_points(_double, [1, 2, 3], jobs=1,
                   policy=SweepPolicy(journal=journal))
        with open(journal, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 3
        # Cut the last record in half, mid-payload -- exactly what a
        # kill during the final write leaves behind.
        truncated = lines[2][: len(lines[2]) // 2]
        with open(journal, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:2] + [truncated])
        with pytest.warns(RuntimeWarning, match=r"midcut\.jsonl:3"):
            entries = _load_journal(journal)
        assert len(entries) == 2
        # Resume re-runs only the point whose record was lost.
        results = run_points(
            _double, [1, 2, 3], jobs=1,
            policy=SweepPolicy(journal=journal, resume=True),
        )
        assert results == [2, 4, 6]

    def test_journal_records_are_json_lines(self, tmp_path):
        journal = str(tmp_path / "fmt.jsonl")
        run_points(_double, [3], jobs=1,
                   policy=SweepPolicy(journal=journal))
        lines = [json.loads(line) for line in open(journal)]
        assert lines[0]["status"] == "ok"
        assert lines[0]["index"] == 0
        assert "fingerprint" in lines[0] and "payload" in lines[0]


# Simulation worker for the checkpoint/kill tests: a real sweep point
# (module level so the forked child can run it) whose result is a
# fingerprintable plain dict.

_KILL_GRAPH = (600, 3000, 7)


def _sim_algorithm(algorithm):
    graph = web_graph(*_KILL_GRAPH[:2], seed=_KILL_GRAPH[2])
    _system, result = run_point(graph, algorithm, _config(algorithm),
                                quick=True)
    return {
        "algorithm": algorithm,
        "cycles": result.cycles,
        "iterations": result.iterations,
        "values_sha": hashlib.sha256(
            np.ascontiguousarray(result.values).tobytes()
        ).hexdigest(),
    }


class TestCheckpointedSweep:
    """Satellite of the checkpoint/replay work: a SIGKILLed sweep
    worker resumes mid-point from its snapshot on retry, and the
    resumed sweep's rows are identical to an uninterrupted sweep."""

    ALGORITHMS = ["pagerank", "bfs", "sssp", "scc"]

    def test_sigkill_mid_point_resumes_identical(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "demand")
        # Uninterrupted reference rows (fast path, in-process).
        expected = [_sim_algorithm(a) for a in self.ALGORITHMS]

        # Chaos hook: the first worker to reach cycle 6000 takes a real
        # SIGKILL (the marker makes it one-shot, so with jobs=1 exactly
        # the first point dies; later points see the marker and disarm).
        marker = str(tmp_path / "kill.marker")
        monkeypatch.setenv("REPRO_CHAOS_KILL_AT", f"6000:{marker}")
        checkpoint_dir = str(tmp_path / "snaps")
        policy = SweepPolicy(retries=1, backoff=0.01,
                             checkpoint_dir=checkpoint_dir,
                             checkpoint_interval=2000)
        results = run_points(_sim_algorithm, self.ALGORITHMS, jobs=1,
                             policy=policy)
        assert results == expected
        assert os.path.exists(marker)  # the kill really fired

        # The killed point's retry went through the resume path: its
        # snapshot carries the .resumed sentinel written by run_point.
        snap = os.path.join(
            checkpoint_dir, _fingerprint(self.ALGORITHMS[0]) + ".snap"
        )
        assert os.path.exists(snap)
        sentinel = json.load(open(snap + ".resumed"))
        assert 0 < sentinel["from_cycle"] < sentinel["final_cycles"]
        assert sentinel["final_cycles"] == expected[0]["cycles"]
