"""The parallel sweep runner and its engine-activity accounting."""

import pytest

from repro.core.stats import EngineActivity, component_breakdown
from repro.experiments.common import default_jobs, run_points
from repro.report import engine_summary_line
from repro.sim import Channel
from repro.sim.engine import Engine


def _square(x):
    return x * x


class TestRunPoints:
    def test_preserves_order_serial(self):
        assert run_points(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_preserves_order_parallel(self):
        assert run_points(_square, [4, 2, 5, 3], jobs=2) == [16, 4, 25, 9]

    def test_single_point_stays_in_process(self):
        # One point never pays process-pool startup (worker identity is
        # observable through a non-picklable closure).
        seen = []

        def local_worker(x):
            seen.append(x)
            return x

        assert run_points(local_worker, [7], jobs=8) == [7]
        assert seen == [7]

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1


class TestEngineActivity:
    def test_merge_and_fraction(self):
        total = EngineActivity()
        total.merge(EngineActivity(
            cycles_simulated=100, cycles_skipped=10,
            component_ticks=40, component_wakes=42,
            all_tick_equivalent=400, runs=1,
        ))
        total.merge({
            "cycles_simulated": 50, "cycles_skipped": 0,
            "component_ticks": 60, "component_wakes": 61,
            "all_tick_equivalent": 100, "runs": 1,
        })
        assert total.cycles_total == 160
        assert total.component_ticks == 100
        assert total.tick_fraction == pytest.approx(0.2)
        assert total.ticks_avoided == 400
        assert total.runs == 2

    def test_round_trips_through_dict(self):
        activity = EngineActivity(cycles_simulated=5, component_ticks=3,
                                  all_tick_equivalent=15, runs=1)
        clone = EngineActivity.from_dict(activity.as_dict())
        assert clone == activity

    def test_from_engine_counts_components(self):
        engine = Engine()
        engine.add_channel(Channel(2))
        engine._step()
        activity = EngineActivity.from_engine(engine)
        assert activity.cycles_simulated == 1
        assert activity.runs == 1

    def test_summary_line_mentions_jobs(self):
        activity = EngineActivity(cycles_simulated=1000, cycles_skipped=20,
                                  component_ticks=300, component_wakes=310,
                                  all_tick_equivalent=3000, runs=2)
        line = activity.summary_line(jobs=4)
        assert "10.0% of all-tick" in line
        assert "jobs=4" in line
        assert "2 runs" in line

    def test_report_summary_accepts_dict(self):
        line = engine_summary_line(
            {"cycles_simulated": 10, "cycles_skipped": 0,
             "component_ticks": 4, "component_wakes": 4,
             "all_tick_equivalent": 20, "runs": 1},
            jobs=1,
        )
        assert "20.0% of all-tick" in line


class TestComponentBreakdown:
    def test_groups_by_class(self):
        from repro.sim import Component

        engine = Engine()

        class Noop(Component):
            demand_driven = True

            def tick(self, eng):
                pass

        first = engine.add_component(Noop())
        second = engine.add_component(Noop())
        engine.wake(first)
        engine._step()
        engine.wake(second)
        engine._step()
        rows = component_breakdown(engine)
        assert len(rows) == 1
        assert rows[0].kind == "Noop"
        assert rows[0].count == 2
        assert rows[0].ticks == 2
        assert rows[0].wakes == 2
