"""Tests for the DRAM channel timing model and the memory system."""

import numpy as np
import pytest

from repro.mem import (
    LINE_BYTES,
    DramTimings,
    MemRequest,
    MemResponse,
    MemorySystem,
)
from repro.sim import Channel, Engine


def make_system(n_channels=1, latency=10, size=1 << 16):
    engine = Engine()
    timings = DramTimings(latency=latency)
    mem = MemorySystem(engine, size, n_channels=n_channels, timings=timings)
    return engine, mem


def drain(engine, resp, count, max_cycles=100_000):
    got = []
    engine.run(done=lambda: len(resp) >= count or engine.now > max_cycles)
    while resp.can_pop():
        got.append(resp.pop())
    return got


class TestMemRequest:
    def test_beats_rounds_up(self):
        r = MemRequest(addr=0, nbytes=65)
        assert r.beats == 2

    def test_write_needs_data(self):
        with pytest.raises(ValueError):
            MemRequest(addr=0, nbytes=64, is_write=True)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            MemRequest(addr=0, nbytes=64, kind="banana")


class TestDramChannel:
    def test_read_returns_store_contents(self):
        engine, mem = make_system()
        mem.view_u32(128, 4)[:] = [1, 2, 3, 4]
        resp = engine.add_channel(Channel(8))
        mem.channels[0].req.push(
            MemRequest(addr=128, nbytes=64, kind="single", tag="t",
                       respond_to=resp)
        )
        (beat,) = drain(engine, resp, 1)
        assert beat.tag == "t"
        assert beat.last
        assert list(beat.data[:16].view(np.uint32)) == [1, 2, 3, 4]

    def test_read_latency(self):
        engine, mem = make_system(latency=25)
        resp = engine.add_channel(Channel(8))
        mem.channels[0].req.push(
            MemRequest(addr=0, nbytes=64, kind="single", respond_to=resp)
        )
        engine.run(done=lambda: len(resp) >= 1)
        # 1 cycle to pop request + 2 cycles single-beat service + latency,
        # +1 for channel commit visibility.
        assert 25 <= engine.now <= 31

    def test_burst_beats_arrive_in_order(self):
        engine, mem = make_system()
        for i in range(32):
            mem.view_u32(i * 64, 1)[0] = i
        resp = engine.add_channel(Channel(64))
        mem.channels[0].req.push(
            MemRequest(addr=0, nbytes=32 * 64, kind="burst", respond_to=resp)
        )
        beats = drain(engine, resp, 32)
        assert [b.beat for b in beats] == list(range(32))
        assert [b.data[:4].view(np.uint32)[0] for b in beats] == list(range(32))
        assert beats[-1].last and not beats[0].last

    def test_single_reads_half_bandwidth(self):
        """Single random reads take ~2 cycles/line; bursts ~1 cycle/line."""
        n_lines = 128

        def run(kind):
            engine, mem = make_system(latency=5)
            resp = engine.add_channel(Channel(256))
            received = []

            if kind == "single":
                requests = [
                    MemRequest(addr=i * 64, nbytes=64, kind="single",
                               respond_to=resp)
                    for i in range(n_lines)
                ]
            else:
                requests = [
                    MemRequest(addr=0, nbytes=n_lines * 64, kind="burst",
                               respond_to=resp)
                ]
            pending = list(requests)

            while len(received) < n_lines:
                while pending and mem.channels[0].req.can_push():
                    mem.channels[0].req.push(pending.pop(0))
                engine._step()
                while resp.can_pop():
                    received.append(resp.pop())
            return engine.now

        t_single = run("single")
        t_burst = run("burst")
        ratio = t_single / t_burst
        assert 1.6 <= ratio <= 2.4

    def test_write_updates_store_and_acks(self):
        engine, mem = make_system()
        resp = engine.add_channel(Channel(4))
        payload = np.arange(64, dtype=np.uint8)
        mem.channels[0].req.push(
            MemRequest(addr=256, nbytes=64, is_write=True, data=payload,
                       tag="w", respond_to=resp)
        )
        (ack,) = drain(engine, resp, 1)
        assert ack.is_write_ack and ack.tag == "w"
        assert np.array_equal(mem.read_bytes(256, 64), payload)

    def test_stats_accumulate(self):
        engine, mem = make_system()
        resp = engine.add_channel(Channel(64))
        mem.channels[0].req.push(
            MemRequest(addr=0, nbytes=4 * 64, kind="burst", respond_to=resp)
        )
        drain(engine, resp, 4)
        stats = mem.channels[0].stats
        assert stats.bytes_read == 256
        assert stats.reads_burst == 1
        assert stats.lines_burst == 4

    def test_head_of_line_blocking_on_full_response_channel(self):
        engine, mem = make_system(latency=2)
        resp = engine.add_channel(Channel(1))
        mem.channels[0].req.push(
            MemRequest(addr=0, nbytes=4 * 64, kind="burst", respond_to=resp)
        )
        # Never pop: the channel fills and the DRAM must hold responses.
        engine.run(done=lambda: len(resp) == 1, max_cycles=100)
        for _ in range(20):
            engine._step()
        assert len(resp) == 1
        assert mem.channels[0].pending == 3


class TestMemorySystem:
    def test_functional_views_alias_store(self):
        _, mem = make_system()
        mem.view_u32(0, 2)[:] = [7, 9]
        assert list(mem.read_bytes(0, 4).view(np.uint32)) == [7]
        mem.view_f32(8, 1)[0] = 1.5
        assert mem.view_f32(8, 1)[0] == 1.5

    def test_unaligned_view_rejected(self):
        _, mem = make_system()
        with pytest.raises(ValueError):
            mem.view_u32(2, 1)

    def test_split_burst_routes_by_granule(self):
        engine, mem = make_system(n_channels=2, size=1 << 16)
        req = MemRequest(addr=2048 - 64, nbytes=128, kind="burst")
        pieces = mem.split_burst(req)
        assert [channel for channel, _ in pieces] == [0, 1]
        assert pieces[0][1].nbytes == 64
        assert pieces[1][1].addr == 2048

    def test_split_burst_write_slices_data(self):
        engine, mem = make_system(n_channels=2, size=1 << 16)
        data = np.arange(128, dtype=np.uint8)
        req = MemRequest(addr=2048 - 64, nbytes=128, kind="burst",
                         is_write=True, data=data)
        pieces = mem.split_burst(req)
        assert np.array_equal(pieces[0][1].data, data[:64])
        assert np.array_equal(pieces[1][1].data, data[64:])

    def test_multi_channel_interleaved_read(self):
        """A burst spanning two granules is served by two channels."""
        engine, mem = make_system(n_channels=2, size=1 << 16)
        resp = engine.add_channel(Channel(128))
        req = MemRequest(addr=0, nbytes=4096, kind="burst", tag="x",
                         respond_to=resp)
        for channel, piece in mem.split_burst(req):
            mem.channels[channel].req.push(piece)
        beats = drain(engine, resp, 64)
        assert len(beats) == 64
        addrs = sorted(b.addr for b in beats)
        assert addrs == [i * 64 for i in range(64)]
        assert mem.total_bytes_read() == 4096
        assert mem.channels[0].stats.bytes_read == 2048
        assert mem.channels[1].stats.bytes_read == 2048

    def test_reset_stats(self):
        engine, mem = make_system()
        resp = engine.add_channel(Channel(8))
        mem.channels[0].req.push(
            MemRequest(addr=0, nbytes=64, kind="single", respond_to=resp)
        )
        drain(engine, resp, 1)
        assert mem.total_bytes_read() == 64
        mem.reset_stats()
        assert mem.total_bytes_read() == 0
