"""Edge-case tests for the memory system and DRAM model."""

import numpy as np
import pytest

from repro.mem import DramTimings, MemRequest, MemorySystem
from repro.sim import Channel, Engine


class TestMemorySystemEdges:
    def test_rejects_unaligned_size(self):
        engine = Engine()
        with pytest.raises(ValueError):
            MemorySystem(engine, 100, n_channels=1)

    def test_u64_view_alignment(self):
        engine = Engine()
        mem = MemorySystem(engine, 1 << 12, n_channels=1)
        mem.view_u64(8, 1)[0] = np.uint64(0xDEADBEEFCAFEBABE)
        assert mem.view_u64(8, 1)[0] == np.uint64(0xDEADBEEFCAFEBABE)
        with pytest.raises(ValueError):
            mem.view_u64(4, 1)

    def test_write_bytes_clips_to_nbytes(self):
        engine = Engine()
        mem = MemorySystem(engine, 1 << 12, n_channels=1)
        mem.write_bytes(0, np.arange(16, dtype=np.uint8), nbytes=8)
        assert list(mem.read_bytes(0, 10)) == list(range(8)) + [0, 0]

    def test_channel_of_matches_interleaver(self):
        engine = Engine()
        mem = MemorySystem(engine, 1 << 14, n_channels=4)
        for addr in (0, 2047, 2048, 8191, 8192):
            assert mem.channel_of(addr) == mem.interleaver.channel_of(addr)


class TestDramOrdering:
    def test_per_channel_responses_in_order(self):
        """Each channel responds strictly in request order."""
        engine = Engine()
        mem = MemorySystem(engine, 1 << 14, n_channels=1,
                           timings=DramTimings(latency=7))
        resp = engine.add_channel(Channel(64))
        for i in range(10):
            mem.channels[0].req.push(
                MemRequest(addr=i * 64, nbytes=64, kind="single",
                           tag=i, respond_to=resp)
            )
        received = []
        engine.run(done=lambda: len(resp) >= 10, max_cycles=10_000)
        while resp.can_pop():
            received.append(resp.pop().tag)
        assert received == list(range(10))

    def test_mixed_reads_and_writes_serialize_on_bus(self):
        engine = Engine()
        mem = MemorySystem(engine, 1 << 14, n_channels=1,
                           timings=DramTimings(latency=5))
        resp = engine.add_channel(Channel(64))
        payload = np.zeros(64, dtype=np.uint8)
        mem.channels[0].req.push(
            MemRequest(addr=0, nbytes=64, is_write=True, data=payload,
                       tag="w", respond_to=resp)
        )
        mem.channels[0].req.push(
            MemRequest(addr=64, nbytes=64, kind="single", tag="r",
                       respond_to=resp)
        )
        tags = []
        engine.run(done=lambda: len(resp) >= 2, max_cycles=1000)
        while resp.can_pop():
            tags.append(resp.pop().tag)
        assert tags == ["w", "r"]
        stats = mem.channels[0].stats
        assert stats.writes == 1 and stats.reads_single == 1
