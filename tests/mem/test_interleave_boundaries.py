"""Boundary-case coverage for the 2,048 B channel interleaving.

The PE burst path and the MOMS downstream both lean on
``AddressInterleaver.split`` for requests that straddle channel
granule edges; these tests pin the exact piece layout at the edges.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.interleave import DEFAULT_GRANULE, AddressInterleaver


class TestGranuleEdges:
    def test_request_ending_exactly_at_edge_is_one_piece(self):
        inter = AddressInterleaver(4)
        addr = DEFAULT_GRANULE - 64
        pieces = inter.split(addr, 64)
        assert pieces == [(0, addr, 64, addr)]

    def test_request_starting_exactly_at_edge_lands_on_next_channel(self):
        inter = AddressInterleaver(4)
        pieces = inter.split(DEFAULT_GRANULE, 64)
        assert pieces == [(1, 0, 64, DEFAULT_GRANULE)]

    def test_straddling_request_splits_at_the_edge(self):
        inter = AddressInterleaver(4)
        addr = DEFAULT_GRANULE - 4
        pieces = inter.split(addr, 8)
        assert len(pieces) == 2
        (ch0, local0, n0, g0), (ch1, local1, n1, g1) = pieces
        assert (ch0, n0, g0) == (0, 4, addr)
        assert (ch1, n1, g1) == (1, 4, DEFAULT_GRANULE)
        assert local0 == addr
        assert local1 == 0

    def test_last_channel_wraps_to_first(self):
        inter = AddressInterleaver(2)
        addr = 2 * DEFAULT_GRANULE - 4  # owned by channel 1, next is 0
        pieces = inter.split(addr, 8)
        assert [piece[0] for piece in pieces] == [1, 0]
        # The wrap lands in channel 0's *second* granule.
        assert pieces[1][1] == DEFAULT_GRANULE

    def test_single_byte_on_each_side_of_the_edge(self):
        inter = AddressInterleaver(4)
        before = inter.split(DEFAULT_GRANULE - 1, 1)
        after = inter.split(DEFAULT_GRANULE, 1)
        assert before == [(0, DEFAULT_GRANULE - 1, 1, DEFAULT_GRANULE - 1)]
        assert after == [(1, 0, 1, DEFAULT_GRANULE)]

    def test_multi_granule_burst_visits_consecutive_channels(self):
        inter = AddressInterleaver(4)
        pieces = inter.split(0, 3 * DEFAULT_GRANULE)
        assert [piece[0] for piece in pieces] == [0, 1, 2]
        assert all(piece[2] == DEFAULT_GRANULE for piece in pieces)

    def test_burst_longer_than_one_round_reuses_channels(self):
        inter = AddressInterleaver(2)
        pieces = inter.split(0, 5 * DEFAULT_GRANULE)
        assert [piece[0] for piece in pieces] == [0, 1, 0, 1, 0]
        # Second visit to channel 0 continues at its next local granule.
        assert pieces[2][1] == DEFAULT_GRANULE

    def test_misaligned_multi_granule_straddle(self):
        inter = AddressInterleaver(4)
        addr = DEFAULT_GRANULE // 2
        pieces = inter.split(addr, 2 * DEFAULT_GRANULE)
        sizes = [piece[2] for piece in pieces]
        assert sizes == [
            DEFAULT_GRANULE // 2, DEFAULT_GRANULE, DEFAULT_GRANULE // 2,
        ]
        assert [piece[0] for piece in pieces] == [0, 1, 2]


class TestSplitConsistency:
    @given(
        addr=st.integers(min_value=0, max_value=10 * DEFAULT_GRANULE),
        nbytes=st.integers(min_value=1, max_value=3 * DEFAULT_GRANULE),
        n_channels=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_pieces_agree_with_to_local_and_to_global(
        self, addr, nbytes, n_channels
    ):
        inter = AddressInterleaver(n_channels)
        pieces = inter.split(addr, nbytes)
        cursor = addr
        for channel, local, piece_bytes, global_addr in pieces:
            assert global_addr == cursor
            assert (channel, local) == inter.to_local(global_addr)
            assert inter.to_global(channel, local) == global_addr
            # A piece never crosses a granule edge.
            assert (global_addr // DEFAULT_GRANULE
                    == (global_addr + piece_bytes - 1) // DEFAULT_GRANULE)
            cursor += piece_bytes
        assert cursor == addr + nbytes

    def test_zero_or_negative_sizes_rejected(self):
        inter = AddressInterleaver(2)
        with pytest.raises(ValueError):
            inter.split(0, 0)
        with pytest.raises(ValueError):
            inter.split(0, -8)
