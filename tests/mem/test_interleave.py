"""Tests for 2,048-byte channel interleaving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import AddressInterleaver


class TestAddressInterleaver:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AddressInterleaver(0)
        with pytest.raises(ValueError):
            AddressInterleaver(2, granule=1000)  # not a power of two

    def test_round_robin_granules(self):
        inter = AddressInterleaver(4, granule=2048)
        assert inter.channel_of(0) == 0
        assert inter.channel_of(2047) == 0
        assert inter.channel_of(2048) == 1
        assert inter.channel_of(4096) == 2
        assert inter.channel_of(6144) == 3
        assert inter.channel_of(8192) == 0

    def test_single_channel_is_identity(self):
        inter = AddressInterleaver(1)
        for addr in (0, 5, 2048, 100_000):
            assert inter.to_local(addr) == (0, addr)

    def test_local_addresses_are_dense(self):
        """Per-channel local addresses cover [0, size/n) with no holes."""
        inter = AddressInterleaver(2, granule=2048)
        _, local0 = inter.to_local(0)
        _, local1 = inter.to_local(4096)  # second granule on channel 0
        assert local0 == 0
        assert local1 == 2048

    @given(st.integers(min_value=0, max_value=2**40),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_to_local_round_trips(self, addr, n_channels):
        inter = AddressInterleaver(n_channels)
        channel, local = inter.to_local(addr)
        assert 0 <= channel < n_channels
        assert inter.to_global(channel, local) == addr

    def test_split_within_granule(self):
        inter = AddressInterleaver(4)
        pieces = inter.split(100, 64)
        assert pieces == [(0, 100, 64, 100)]

    def test_split_across_granules(self):
        inter = AddressInterleaver(2, granule=2048)
        pieces = inter.split(2048 - 64, 128)
        assert len(pieces) == 2
        (ch0, _, n0, a0), (ch1, _, n1, a1) = pieces
        assert (ch0, n0, a0) == (0, 64, 2048 - 64)
        assert (ch1, n1, a1) == (1, 64, 2048)

    @given(st.integers(min_value=0, max_value=2**30),
           st.integers(min_value=1, max_value=8192),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_split_is_a_partition(self, addr, nbytes, n_channels):
        """Pieces tile [addr, addr+nbytes) exactly, in order."""
        inter = AddressInterleaver(n_channels)
        pieces = inter.split(addr, nbytes)
        cursor = addr
        for channel, local, piece_bytes, global_addr in pieces:
            assert global_addr == cursor
            assert inter.to_local(global_addr) == (channel, local)
            # A piece never crosses a granule boundary.
            assert (global_addr % inter.granule) + piece_bytes <= inter.granule
            cursor += piece_bytes
        assert cursor == addr + nbytes
