"""Disk graph/partition cache (repro.graph.cache)."""

import os

import numpy as np
import pytest

from repro.graph import cache as graph_cache
from repro.graph.datasets import BENCHMARKS, load_benchmark
from repro.graph.generators import web_graph
from repro.graph.partition import partition_edges


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
    return tmp_path


def _graphs_equal(a, b):
    return (
        a.n_nodes == b.n_nodes
        and np.array_equal(a.src, b.src)
        and np.array_equal(a.dst, b.dst)
        and ((a.weights is None and b.weights is None)
             or np.array_equal(a.weights, b.weights))
    )


class TestCacheGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH_CACHE", raising=False)
        assert graph_cache.cache_dir() is None

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no"])
    def test_explicit_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_GRAPH_CACHE", value)
        assert graph_cache.cache_dir() is None

    def test_load_and_store_are_noops_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH_CACHE", raising=False)
        spec = BENCHMARKS["WT"]
        assert graph_cache.load_cached_graph(spec, 0, 6) is None
        graph = web_graph(64, 256, seed=3)
        graph_cache.store_cached_graph(spec, 0, 6, graph)  # no crash


class TestGraphRoundTrip:
    def test_store_then_load_is_identical(self, cache_env):
        spec = BENCHMARKS["WT"]
        graph = spec.generate(shrink=6)
        graph_cache.store_cached_graph(spec, 0, 6, graph)
        loaded = graph_cache.load_cached_graph(spec, 0, 6)
        assert loaded is not None
        assert _graphs_equal(graph, loaded)
        assert os.listdir(cache_env)  # something actually hit the disk

    def test_weighted_graph_round_trips(self, cache_env):
        spec = BENCHMARKS["WT"]
        graph = spec.generate(shrink=6).with_weights()
        graph_cache.store_cached_graph(spec, 1, 6, graph)
        loaded = graph_cache.load_cached_graph(spec, 1, 6)
        assert loaded.weighted
        assert _graphs_equal(graph, loaded)

    def test_different_recipes_do_not_collide(self, cache_env):
        spec = BENCHMARKS["WT"]
        graph = spec.generate(shrink=6)
        graph_cache.store_cached_graph(spec, 0, 6, graph)
        assert graph_cache.load_cached_graph(spec, 0, 12) is None
        assert graph_cache.load_cached_graph(spec, 5, 6) is None
        assert graph_cache.load_cached_graph(BENCHMARKS["RV"], 0, 6) is None

    def test_corrupt_entry_degrades_to_miss(self, cache_env):
        spec = BENCHMARKS["WT"]
        graph = spec.generate(shrink=6)
        graph_cache.store_cached_graph(spec, 0, 6, graph)
        (entry,) = [
            name for name in os.listdir(cache_env)
            if name.startswith("graph-")
        ]
        with open(os.path.join(cache_env, entry), "wb") as fh:
            fh.write(b"not an npz file")
        assert graph_cache.load_cached_graph(spec, 0, 6) is None

    def test_load_benchmark_populates_and_reuses_disk(self, cache_env):
        # Fresh in-memory cache so the disk path is actually exercised.
        from repro.graph import datasets

        datasets._cache.clear()
        first = load_benchmark("WT", shrink=6)
        assert any(
            name.startswith("graph-") for name in os.listdir(cache_env)
        )
        datasets._cache.clear()
        second = load_benchmark("WT", shrink=6)
        assert _graphs_equal(first, second)
        datasets._cache.clear()


class TestPartitionCache:
    def test_partition_round_trip_matches_fresh_compute(self, cache_env):
        graph = web_graph(500, 2500, seed=7)
        part = partition_edges(graph, 64, 128)  # miss: computes + stores
        assert any(
            name.startswith("part-") for name in os.listdir(cache_env)
        )
        again = partition_edges(graph, 64, 128)  # hit: loads from disk
        assert np.array_equal(part._order, again._order)
        assert np.array_equal(part._offsets, again._offsets)
        assert part.shard_sizes().sum() == graph.n_edges

    def test_relabeled_graph_gets_its_own_entry(self, cache_env):
        graph = web_graph(300, 1200, seed=11)
        permutation = np.arange(graph.n_nodes)[::-1].copy()
        relabeled = graph.relabel(permutation)
        part_a = partition_edges(graph, 32, 32)
        part_b = partition_edges(relabeled, 32, 32)
        entries = [
            name for name in os.listdir(cache_env)
            if name.startswith("part-")
        ]
        assert len(entries) == 2
        assert part_a.shard_sizes().sum() == part_b.shard_sizes().sum()

    def test_cached_partition_equals_uncached(self, cache_env, monkeypatch):
        graph = web_graph(400, 1600, seed=13)
        cached = partition_edges(graph, 64, 64)
        cached_again = partition_edges(graph, 64, 64)
        monkeypatch.setenv("REPRO_GRAPH_CACHE", "0")
        fresh = partition_edges(graph, 64, 64)
        assert np.array_equal(cached._order, fresh._order)
        assert np.array_equal(cached_again._offsets, fresh._offsets)
