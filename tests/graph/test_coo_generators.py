"""Tests for the COO graph type and the synthetic generators."""

import numpy as np
import pytest

from repro.graph import Graph, rmat_graph, social_graph, web_graph
from repro.graph.generators import uniform_random_graph


class TestGraph:
    def test_basic_properties(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3])
        assert g.n_nodes == 4
        assert g.n_edges == 3
        assert not g.weighted

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 5], [1, 2])
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1, -1])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1])
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1, 2], weights=[5])

    def test_degrees(self):
        g = Graph(4, [0, 0, 1], [1, 2, 2])
        assert list(g.out_degrees()) == [2, 1, 0, 0]
        assert list(g.in_degrees()) == [0, 1, 2, 0]

    def test_with_weights_deterministic(self):
        g = Graph(4, [0, 1], [1, 2])
        w1 = g.with_weights(np.random.default_rng(9))
        w2 = g.with_weights(np.random.default_rng(9))
        assert w1.weighted
        assert np.array_equal(w1.weights, w2.weights)
        assert w1.weights.max() <= 255 and w1.weights.min() >= 0

    def test_relabel_is_isomorphism(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3])
        perm = np.array([3, 2, 1, 0])
        h = g.relabel(perm)
        # Edge (u,v) becomes (perm[u], perm[v]).
        assert list(h.src) == [3, 2, 1]
        assert list(h.dst) == [2, 1, 0]
        # Degree multiset preserved.
        assert sorted(g.out_degrees()) == sorted(h.out_degrees())

    def test_relabel_rejects_non_permutation(self):
        g = Graph(3, [0], [1])
        with pytest.raises(ValueError):
            g.relabel([0, 0, 1])
        with pytest.raises(ValueError):
            g.relabel([0, 1])


class TestGenerators:
    def test_web_graph_shape_and_determinism(self):
        g1 = web_graph(1000, 5000, seed=5)
        g2 = web_graph(1000, 5000, seed=5)
        assert g1.n_nodes == 1000 and g1.n_edges == 5000
        assert np.array_equal(g1.src, g2.src)
        assert np.array_equal(g1.dst, g2.dst)

    def test_web_graph_has_label_locality(self):
        """Most edges connect nearby labels (crawl-order communities)."""
        g = web_graph(10_000, 50_000, locality=0.9, community_span=64,
                      seed=6)
        near = np.abs(g.src - g.dst) <= 64
        assert near.mean() > 0.8

    def test_social_graph_destroys_locality(self):
        g = social_graph(10_000, 50_000, seed=7)
        near = np.abs(g.src - g.dst) <= 64
        assert near.mean() < 0.2

    def test_power_law_degree_skew(self):
        """A few hubs collect a large share of out-edges."""
        g = web_graph(10_000, 100_000, alpha=0.8, seed=8)
        degrees = np.sort(g.out_degrees())[::-1]
        top_share = degrees[:100].sum() / g.n_edges
        assert top_share > 0.15  # top 1% of nodes, >15% of edges

    def test_rmat_shape(self):
        g = rmat_graph(10, edge_factor=8, seed=9)
        assert g.n_nodes == 1024
        assert g.n_edges == 8192

    def test_rmat_is_skewed(self):
        g = rmat_graph(12, edge_factor=16, seed=10)
        degrees = np.sort(g.out_degrees())[::-1]
        uniform_share = 16 * 40 / g.n_edges
        top_share = degrees[:40].sum() / g.n_edges
        assert top_share > 3 * uniform_share

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(8, a=0.6, b=0.3, c=0.2)

    def test_uniform_graph_not_skewed(self):
        g = uniform_random_graph(4096, 65536, seed=11)
        degrees = g.out_degrees()
        assert degrees.max() < 10 * degrees.mean()

    def test_generators_deterministic_across_kinds(self):
        for maker in (lambda: social_graph(500, 2000, seed=3),
                      lambda: rmat_graph(9, seed=3)):
            a, b = maker(), maker()
            assert np.array_equal(a.src, b.src)
            assert np.array_equal(a.dst, b.dst)
