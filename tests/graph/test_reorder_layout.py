"""Tests for node reordering, the memory layout, and the dataset suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    BENCHMARKS,
    Graph,
    GraphLayout,
    dbg_reorder,
    hash_cache_lines,
    identity_order,
    load_benchmark,
    partition_edges,
    web_graph,
)
from repro.graph.datasets import DEFAULT_SUITE, SCRAMBLED_LABELS
from repro.graph.reorder import compose
from repro.mem import MemorySystem
from repro.sim import Engine


def is_permutation(perm, n):
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    return seen.all() and len(perm) == n


class TestReorder:
    def test_identity(self):
        assert np.array_equal(identity_order(5), np.arange(5))

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_hash_cache_lines_is_permutation(self, n):
        perm = hash_cache_lines(n, nodes_per_dst_interval=64,
                                nodes_per_line=16)
        assert is_permutation(perm, n)

    def test_hash_keeps_lines_together(self):
        """Nodes of one cache line stay adjacent and in order."""
        perm = hash_cache_lines(1024, nodes_per_dst_interval=256,
                                nodes_per_line=16)
        for line_start in range(0, 1024, 16):
            block = perm[line_start:line_start + 16]
            assert np.array_equal(block, np.arange(block[0], block[0] + 16))

    def test_hash_balances_in_edges(self):
        """A clustered graph gets balanced per-interval edge counts."""
        g = web_graph(4096, 40_000, locality=0.95, seed=12)
        nd = 256
        unhashed = partition_edges(g, 1024, nd).dst_interval_edge_counts()
        perm = hash_cache_lines(g.n_nodes, nd)
        hashed = partition_edges(
            g.relabel(perm), 1024, nd
        ).dst_interval_edge_counts()
        assert hashed.std() < unhashed.std()

    def test_hash_rejects_misaligned_interval(self):
        with pytest.raises(ValueError):
            hash_cache_lines(100, nodes_per_dst_interval=40,
                             nodes_per_line=16)

    def test_dbg_is_permutation(self):
        g = web_graph(2048, 20_000, seed=13)
        assert is_permutation(dbg_reorder(g), g.n_nodes)

    def test_dbg_groups_hubs_first(self):
        """After DBG, low node ids have higher out-degree groups."""
        g = web_graph(4096, 60_000, alpha=0.9, seed=14)
        perm = dbg_reorder(g)
        relabeled = g.relabel(perm)
        degrees = relabeled.out_degrees()
        first_half = degrees[: len(degrees) // 2].mean()
        second_half = degrees[len(degrees) // 2:].mean()
        assert first_half > second_half

    def test_dbg_stable_within_group(self):
        """Equal-degree nodes keep their relative order (locality kept)."""
        g = Graph(6, [0, 1, 2, 3, 4, 5], [1, 2, 3, 4, 5, 0])  # all degree 1
        perm = dbg_reorder(g)
        assert np.array_equal(perm, np.arange(6))

    def test_compose(self):
        p1 = np.array([1, 2, 0])
        p2 = np.array([2, 0, 1])
        composed = compose(p1, p2)
        # node i -> p1[i] -> p2[p1[i]]
        assert list(composed) == [0, 1, 2]


class TestGraphLayout:
    def make(self, synchronous=True, weighted=False, node_bytes=4,
             use_const=False):
        g = web_graph(512, 4000, seed=15)
        if weighted:
            g = g.with_weights(np.random.default_rng(2))
        part = partition_edges(g, 256, 128)
        layout = GraphLayout(part, node_bytes=node_bytes,
                             use_const=use_const, synchronous=synchronous)
        engine = Engine()
        mem = MemorySystem(engine, 1 << 21, n_channels=1)
        return g, part, layout, mem

    def test_sections_do_not_overlap(self):
        _, part, layout, _ = self.make(use_const=True)
        n_bytes = 512 * 4
        assert layout.v_in_addr + n_bytes <= layout.v_const_addr
        assert layout.v_const_addr + n_bytes <= layout.v_out_addr
        assert layout.v_out_addr + n_bytes <= layout.edges_addr
        assert layout.edges_addr < layout.edge_ptrs_addr <= layout.end_addr

    def test_async_aliases_in_out(self):
        _, _, layout, _ = self.make(synchronous=False)
        assert layout.v_out_addr == layout.v_in_addr

    def test_shards_are_line_aligned(self):
        _, part, layout, _ = self.make()
        for d in range(part.q_dst):
            for s in range(part.q_src):
                assert layout.shard_addr(s, d) % 64 == 0

    def test_materialize_round_trips_shards(self):
        g, part, layout, mem = self.make()
        layout.materialize(mem, np.zeros(512, dtype=np.uint32))
        for d in range(part.q_dst):
            for s in range(part.q_src):
                addr, count, active = layout.read_pointer(mem, d, s)
                assert active
                assert count == part.shard_size(s, d)
                words = mem.read_bytes(
                    addr, layout.codec.shard_bytes(count)
                ).view(np.uint32)
                src_off, dst_off = layout.codec.decode_shard(words)
                exp_src, exp_dst = part.shard(s, d)
                assert np.array_equal(src_off, exp_src - s * 256)
                assert np.array_equal(dst_off, exp_dst - d * 128)

    def test_materialize_weighted(self):
        g, part, layout, mem = self.make(weighted=True)
        layout.materialize(mem, np.zeros(512, dtype=np.uint32))
        addr, count, _ = layout.read_pointer(mem, 0, 0)
        words = mem.read_bytes(addr, layout.codec.shard_bytes(count)).view(
            np.uint32
        )
        decoded = layout.codec.decode_shard(words)
        exp = part.shard(0, 0)
        assert np.array_equal(decoded[2], exp[2])

    def test_node_values_round_trip(self):
        g, part, layout, mem = self.make()
        values = np.arange(512, dtype=np.uint32)
        layout.materialize(mem, values)
        assert np.array_equal(layout.read_values(mem, "in"), values)
        # Synchronous: out starts as a copy of in.
        assert np.array_equal(layout.read_values(mem, "out"), values)

    def test_float_values(self):
        g, part, layout, mem = self.make()
        values = np.linspace(0, 1, 512, dtype=np.float32)
        layout.materialize(mem, values)
        out = layout.read_values(mem, "in", dtype=np.float32)
        assert np.allclose(out, values)

    def test_set_active_flag(self):
        g, part, layout, mem = self.make()
        layout.materialize(mem, np.zeros(512, dtype=np.uint32))
        layout.set_active(mem, 0, 1, False)
        _, _, active = layout.read_pointer(mem, 0, 1)
        assert not active
        layout.set_active(mem, 0, 1, True)
        assert layout.read_pointer(mem, 0, 1)[2]

    def test_swap_in_out(self):
        g, part, layout, mem = self.make()
        a, b = layout.v_in_addr, layout.v_out_addr
        layout.swap_in_out()
        assert (layout.v_in_addr, layout.v_out_addr) == (b, a)

    def test_swap_rejected_for_async(self):
        _, _, layout, _ = self.make(synchronous=False)
        with pytest.raises(ValueError):
            layout.swap_in_out()

    def test_too_small_memory_rejected(self):
        g = web_graph(512, 4000, seed=15)
        part = partition_edges(g, 256, 128)
        layout = GraphLayout(part)
        engine = Engine()
        mem = MemorySystem(engine, 1 << 12, n_channels=1)
        with pytest.raises(ValueError):
            layout.materialize(mem, np.zeros(512, dtype=np.uint32))


class TestDatasets:
    def test_suite_covers_table2(self):
        assert set(BENCHMARKS) == {
            "WT", "DB", "UK", "IT", "SK", "MP", "RV", "FR", "WB",
            "24", "25", "26",
        }
        assert set(DEFAULT_SUITE) <= set(BENCHMARKS)
        assert set(SCRAMBLED_LABELS) <= set(BENCHMARKS)

    def test_size_ordering_matches_paper(self):
        """Node counts keep the paper's relative ordering (Table II)."""
        order = ["WT", "DB", "UK", "IT", "SK", "MP", "RV", "FR", "WB"]
        sizes = [BENCHMARKS[k].n_nodes for k in order]
        assert sizes == sorted(sizes)

    def test_load_benchmark_memoizes_and_is_deterministic(self):
        g1 = load_benchmark("WT")
        g2 = load_benchmark("WT")
        assert g1 is g2
        fresh = BENCHMARKS["WT"].generate()
        assert np.array_equal(g1.src, fresh.src)

    def test_web_benchmarks_have_locality(self):
        g = load_benchmark("UK")
        near = np.abs(g.src - g.dst) <= 64
        assert near.mean() > 0.7

    def test_social_benchmarks_lack_locality(self):
        g = load_benchmark("RV")
        near = np.abs(g.src - g.dst) <= 64
        assert near.mean() < 0.2
